"""Unit tests for dataset containers and splits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader, stratified_indices, train_validation_split


def _dataset(rng, n=60, k=3, name="toy"):
    images = rng.random((n, 1, 4, 4)).astype(np.float32)
    labels = np.arange(n) % k
    return ArrayDataset(images, labels, k, name)


class TestArrayDataset:
    def test_basic_properties(self, rng):
        ds = _dataset(rng)
        assert len(ds) == 60
        assert ds.image_shape == (1, 4, 4)
        assert ds.class_counts().tolist() == [20, 20, 20]

    def test_one_hot(self, rng):
        ds = _dataset(rng, n=6, k=3)
        onehot = ds.one_hot_labels()
        assert onehot.shape == (6, 3)
        np.testing.assert_array_equal(onehot.argmax(axis=1), ds.labels)

    def test_validation_errors(self, rng):
        with pytest.raises(ValueError, match="images must be"):
            ArrayDataset(np.zeros((4, 16)), np.zeros(4), 2)
        with pytest.raises(ValueError, match="differ in length"):
            ArrayDataset(np.zeros((4, 1, 2, 2)), np.zeros(5), 2)
        with pytest.raises(ValueError, match="num_classes"):
            ArrayDataset(np.zeros((4, 1, 2, 2)), np.zeros(4), 1)
        with pytest.raises(ValueError, match="out of range"):
            ArrayDataset(np.zeros((4, 1, 2, 2)), np.array([0, 1, 2, 5]), 3)

    def test_subset_copies(self, rng):
        ds = _dataset(rng)
        sub = ds.subset(np.array([0, 1, 2]))
        sub.images[...] = -1.0
        assert not (ds.images[:3] == -1.0).any()
        assert sub.name.endswith("/subset")

    def test_copy_is_deep(self, rng):
        ds = _dataset(rng)
        dup = ds.copy()
        dup.labels[0] = (dup.labels[0] + 1) % 3
        assert ds.labels[0] != dup.labels[0]

    def test_split_clean_subset_stratified(self, rng):
        ds = _dataset(rng, n=90, k=3)
        clean, noisy = ds.split_clean_subset(0.2, rng)
        assert len(clean) + len(noisy) == 90
        assert len(clean) == pytest.approx(18, abs=3)
        # Each class represented in the clean subset.
        assert (clean.class_counts() > 0).all()

    def test_split_clean_subset_validates_fraction(self, rng):
        ds = _dataset(rng)
        with pytest.raises(ValueError):
            ds.split_clean_subset(0.0, rng)
        with pytest.raises(ValueError):
            ds.split_clean_subset(1.0, rng)


class TestStratifiedIndices:
    def test_respects_fraction_per_class(self, rng):
        labels = np.repeat(np.arange(4), 25)
        idx = stratified_indices(labels, 0.2, 4, rng)
        chosen = labels[idx]
        assert (np.bincount(chosen, minlength=4) == 5).all()

    def test_at_least_one_per_class(self, rng):
        labels = np.repeat(np.arange(5), 3)
        idx = stratified_indices(labels, 0.01, 5, rng)
        assert (np.bincount(labels[idx], minlength=5) >= 1).all()

    def test_sorted_unique(self, rng):
        labels = np.repeat(np.arange(3), 20)
        idx = stratified_indices(labels, 0.5, 3, rng)
        assert (np.diff(idx) > 0).all()

    def test_empty_class_skipped(self, rng):
        labels = np.zeros(10, dtype=np.int64)
        idx = stratified_indices(labels, 0.3, 2, rng)
        assert (labels[idx] == 0).all()


class TestTrainValidationSplit:
    def test_sizes_and_disjoint(self, rng):
        ds = _dataset(rng, n=100, k=4)
        train, val = train_validation_split(ds, 0.25, rng)
        assert len(train) + len(val) == 100
        assert len(val) == pytest.approx(25, abs=4)


class TestDataLoader:
    def test_covers_all_samples(self, rng):
        ds = _dataset(rng, n=23)
        loader = DataLoader(ds, batch_size=5, rng=rng)
        total = sum(len(x) for x, _ in loader)
        assert total == 23
        assert len(loader) == 5

    def test_drop_last(self, rng):
        ds = _dataset(rng, n=23)
        loader = DataLoader(ds, batch_size=5, drop_last=True, rng=rng)
        batches = list(loader)
        assert len(batches) == 4
        assert all(len(x) == 5 for x, _ in batches)

    def test_no_shuffle_is_ordered(self, rng):
        ds = _dataset(rng, n=10)
        loader = DataLoader(ds, batch_size=10, shuffle=False)
        x, y = next(iter(loader))
        np.testing.assert_array_equal(y, ds.labels)

    def test_shuffle_uses_rng(self, rng):
        ds = _dataset(rng, n=50)
        l1 = DataLoader(ds, batch_size=50, rng=np.random.default_rng(3))
        l2 = DataLoader(ds, batch_size=50, rng=np.random.default_rng(3))
        _, y1 = next(iter(l1))
        _, y2 = next(iter(l2))
        np.testing.assert_array_equal(y1, y2)

    def test_invalid_batch_size(self, rng):
        with pytest.raises(ValueError):
            DataLoader(_dataset(rng), batch_size=0)
