"""Unit tests for data augmentations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    Compose,
    GaussianNoise,
    RandomBrightness,
    RandomHorizontalFlip,
    RandomShift,
)


@pytest.fixture
def batch(rng):
    return rng.random((8, 3, 6, 6)).astype(np.float32)


class TestRandomHorizontalFlip:
    def test_p_zero_is_identity(self, batch, rng):
        out = RandomHorizontalFlip(p=0.0, rng=rng)(batch)
        np.testing.assert_array_equal(out, batch)

    def test_p_one_flips_all(self, batch, rng):
        out = RandomHorizontalFlip(p=1.0, rng=rng)(batch)
        np.testing.assert_array_equal(out, batch[:, :, :, ::-1])

    def test_does_not_mutate_input(self, batch, rng):
        before = batch.copy()
        RandomHorizontalFlip(p=1.0, rng=rng)(batch)
        np.testing.assert_array_equal(batch, before)

    def test_seeded_reproducibility(self, batch):
        a = RandomHorizontalFlip(p=0.5, rng=np.random.default_rng(1))(batch)
        b = RandomHorizontalFlip(p=0.5, rng=np.random.default_rng(1))(batch)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomHorizontalFlip(p=1.5)

    def test_rejects_non_4d(self, rng):
        with pytest.raises(ValueError):
            RandomHorizontalFlip(rng=rng)(np.zeros((3, 6, 6)))


class TestRandomShift:
    def test_zero_shift_identity(self, batch, rng):
        out = RandomShift(0, rng=rng)(batch)
        np.testing.assert_array_equal(out, batch)

    def test_shape_preserved_and_zero_padded(self, batch):
        out = RandomShift(2, rng=np.random.default_rng(0))(batch)
        assert out.shape == batch.shape
        # Total mass can only decrease (pixels shifted out, zeros shifted in).
        assert out.sum() <= batch.sum() + 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomShift(-1)


class TestRandomBrightness:
    def test_scales_within_bounds(self, batch, rng):
        out = RandomBrightness(delta=0.5, rng=rng)(batch)
        ratio = out.sum(axis=(1, 2, 3)) / batch.sum(axis=(1, 2, 3))
        assert (ratio >= 0.5 - 1e-5).all()
        assert (ratio <= 1.5 + 1e-5).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomBrightness(delta=1.0)


class TestGaussianNoise:
    def test_zero_std_identity(self, batch, rng):
        out = GaussianNoise(0.0, rng=rng)(batch)
        np.testing.assert_allclose(out, batch)

    def test_noise_magnitude(self, batch):
        out = GaussianNoise(0.1, rng=np.random.default_rng(0))(batch)
        residual = out - batch
        assert 0.05 < residual.std() < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianNoise(-0.1)


class TestCompose:
    def test_applies_in_order(self, batch, rng):
        double = lambda b: b * 2.0
        add_one = lambda b: b + 1.0
        out = Compose(double, add_one)(batch)
        np.testing.assert_allclose(out, batch * 2.0 + 1.0)

    def test_needs_transforms(self):
        with pytest.raises(ValueError):
            Compose()

    def test_repr(self, rng):
        text = repr(Compose(RandomHorizontalFlip(rng=rng), GaussianNoise(rng=rng)))
        assert "RandomHorizontalFlip" in text


class TestTrainerIntegration:
    def test_input_transform_applied_per_batch(self, rng):
        from repro.nn import SGD, CrossEntropy, Dense, Sequential, Trainer

        x = rng.random((16, 4)).astype(np.float32)
        y = np.eye(2, dtype=np.float32)[rng.integers(0, 2, 16)]
        model = Sequential(Dense(4, 2, rng=rng))
        calls = []

        def transform(batch):
            calls.append(len(batch))
            return batch

        trainer = Trainer(model, CrossEntropy(), SGD(model.parameters(), lr=0.01),
                          epochs=1, batch_size=8, rng=rng, input_transform=transform)
        trainer.fit(x, y)
        assert calls == [8, 8]
