"""Unit tests for the dataset registry (paper Table II)."""

from __future__ import annotations

import pytest

from repro.data import DATASETS, PAPER_TABLE2, dataset_names, load_dataset


class TestRegistryContents:
    def test_three_paper_datasets(self):
        assert dataset_names() == ["cifar10", "gtsrb", "pneumonia"]

    def test_class_counts_match_table2(self):
        assert DATASETS["cifar10"].num_classes == 10
        assert DATASETS["gtsrb"].num_classes == 43
        assert DATASETS["pneumonia"].num_classes == 2

    def test_paper_sizes_match_table2(self):
        assert DATASETS["cifar10"].paper_train_size == 50_000
        assert DATASETS["gtsrb"].paper_train_size == 39_209
        assert DATASETS["pneumonia"].paper_train_size == 5_239
        assert DATASETS["pneumonia"].paper_test_size == 624

    def test_pneumonia_keeps_one_tenth_ratio(self):
        # The paper stresses Pneumonia is ~1/10 the size of the others; the
        # scaled defaults preserve that ratio.
        pneumonia = DATASETS["pneumonia"].default_train_size
        cifar = DATASETS["cifar10"].default_train_size
        assert 5 <= cifar / pneumonia <= 15

    def test_table2_rows(self):
        names = [row[0] for row in PAPER_TABLE2]
        assert names == ["CIFAR-10", "GTSRB", "Pneumonia"]


class TestLoadDataset:
    def test_load_with_defaults(self):
        train, test = load_dataset("pneumonia")
        assert len(train) == DATASETS["pneumonia"].default_train_size
        assert len(test) == DATASETS["pneumonia"].default_test_size

    def test_load_with_overrides(self):
        train, test = load_dataset("cifar10", train_size=30, test_size=10, image_size=16)
        assert len(train) == 30
        assert len(test) == 10
        assert train.image_shape == (3, 16, 16)

    def test_seed_controls_content(self):
        a, _ = load_dataset("gtsrb", train_size=20, test_size=5, seed=1)
        b, _ = load_dataset("gtsrb", train_size=20, test_size=5, seed=2)
        assert not (a.images == b.images).all()

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("mnist")
