"""Unit tests for label/image transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    flatten_images,
    from_one_hot,
    normalize_images,
    one_hot,
    per_channel_standardize,
    smooth_labels,
)


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])
        assert out.dtype == np.float32

    def test_roundtrip(self, rng):
        labels = rng.integers(0, 7, 40)
        np.testing.assert_array_equal(from_one_hot(one_hot(labels, 7)), labels)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 3]), 3)
        with pytest.raises(ValueError):
            one_hot(np.array([-1]), 3)

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_from_one_hot_requires_2d(self):
        with pytest.raises(ValueError):
            from_one_hot(np.zeros(3))


class TestSmoothLabels:
    def test_paper_example(self):
        # The paper's own example: alpha=0.1 maps [0,1,0] to [0.033, 0.933, 0.033].
        out = smooth_labels(np.array([[0.0, 1.0, 0.0]], dtype=np.float32), 0.1)
        np.testing.assert_allclose(out, [[0.0333, 0.9333, 0.0333]], atol=1e-3)

    def test_rows_still_sum_to_one(self, rng):
        targets = one_hot(rng.integers(0, 5, 10), 5)
        out = smooth_labels(targets, 0.3)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(10), rtol=1e-5)

    def test_alpha_zero_is_identity(self, rng):
        targets = one_hot(rng.integers(0, 4, 6), 4)
        np.testing.assert_array_equal(smooth_labels(targets, 0.0), targets)

    def test_validation(self):
        with pytest.raises(ValueError):
            smooth_labels(np.eye(3, dtype=np.float32), 1.0)
        with pytest.raises(ValueError):
            smooth_labels(np.zeros(3), 0.1)


class TestImageTransforms:
    def test_normalize_to_unit_range(self, rng):
        images = rng.normal(5.0, 3.0, size=(4, 1, 3, 3)).astype(np.float32)
        out = normalize_images(images)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_normalize_constant_input(self):
        out = normalize_images(np.full((2, 1, 2, 2), 7.0))
        np.testing.assert_array_equal(out, np.zeros((2, 1, 2, 2)))

    def test_per_channel_standardize(self, rng):
        images = rng.normal(3.0, 2.0, size=(50, 3, 4, 4)).astype(np.float32)
        out = per_channel_standardize(images)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), np.ones(3), atol=1e-3)

    def test_per_channel_standardize_requires_4d(self):
        with pytest.raises(ValueError):
            per_channel_standardize(np.zeros((3, 4)))

    def test_flatten(self, rng):
        images = rng.random((5, 2, 3, 3))
        assert flatten_images(images).shape == (5, 18)
