"""Unit tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    SyntheticConfig,
    make_cifar10_like,
    make_dataset_pair,
    make_gtsrb_like,
    make_pneumonia_like,
)

SMALL = SyntheticConfig(train_size=50, test_size=20, image_size=16, seed=3)


class TestGeneratorContracts:
    @pytest.mark.parametrize(
        ("maker", "classes", "channels"),
        [
            (make_cifar10_like, 10, 3),
            (make_gtsrb_like, 43, 3),
            (make_pneumonia_like, 2, 1),
        ],
        ids=["cifar10", "gtsrb", "pneumonia"],
    )
    def test_shapes_ranges_and_classes(self, maker, classes, channels):
        train, test = maker(SMALL)
        assert len(train) == 50
        assert len(test) == 20
        assert train.num_classes == classes
        assert train.image_shape == (channels, 16, 16)
        assert train.images.min() >= 0.0
        assert train.images.max() <= 1.0
        assert train.images.dtype == np.float32

    @pytest.mark.parametrize(
        "maker", [make_cifar10_like, make_gtsrb_like, make_pneumonia_like],
        ids=["cifar10", "gtsrb", "pneumonia"],
    )
    def test_deterministic_given_seed(self, maker):
        a_train, a_test = maker(SMALL)
        b_train, b_test = maker(SMALL)
        np.testing.assert_array_equal(a_train.images, b_train.images)
        np.testing.assert_array_equal(a_train.labels, b_train.labels)
        np.testing.assert_array_equal(a_test.images, b_test.images)

    @pytest.mark.parametrize(
        "maker", [make_cifar10_like, make_gtsrb_like, make_pneumonia_like],
        ids=["cifar10", "gtsrb", "pneumonia"],
    )
    def test_different_seed_different_data(self, maker):
        a, _ = maker(SMALL)
        b, _ = maker(SyntheticConfig(train_size=50, test_size=20, image_size=16, seed=4))
        assert not np.array_equal(a.images, b.images)

    @pytest.mark.parametrize(
        "maker", [make_cifar10_like, make_gtsrb_like, make_pneumonia_like],
        ids=["cifar10", "gtsrb", "pneumonia"],
    )
    def test_train_and_test_are_disjoint_draws(self, maker):
        train, test = maker(SMALL)
        # No identical image should appear in both splits.
        flat_train = train.images.reshape(len(train), -1)
        flat_test = test.images.reshape(len(test), -1)
        cross = (flat_train[:, None, :] == flat_test[None, :, :]).all(axis=2)
        assert not cross.any()

    def test_metadata_names_paper_dataset(self):
        train, _ = make_gtsrb_like(SMALL)
        assert train.metadata["paper_dataset"] == "GTSRB"
        assert "gtsrb" in train.name


class TestClassSignal:
    def test_gtsrb_same_class_images_are_similar(self):
        train, _ = make_gtsrb_like(SyntheticConfig(train_size=200, test_size=20, seed=1))
        # Mean pairwise distance within a class should be far below the
        # between-class distance: that's what makes the task learnable.
        images = train.images.reshape(len(train), -1)
        labels = train.labels
        cls = labels[0]
        same = images[labels == cls]
        other = images[labels != cls]
        d_same = np.linalg.norm(same[0] - same[1:], axis=1).mean()
        d_other = np.linalg.norm(same[0] - other[: len(same)], axis=1).mean()
        assert d_same < d_other

    def test_pneumonia_classes_differ_in_brightness(self):
        train, _ = make_pneumonia_like(SyntheticConfig(train_size=200, test_size=20, seed=1))
        normal = train.images[train.labels == 0]
        sick = train.images[train.labels == 1]
        # Opacities brighten the lung fields on average.
        assert sick.mean() > normal.mean()

    def test_labels_cover_many_classes(self):
        train, _ = make_gtsrb_like(SyntheticConfig(train_size=430, test_size=20, seed=1))
        assert len(np.unique(train.labels)) > 30


class TestSensorLike:
    """The tabular extension dataset (paper §V future work)."""

    def test_shape_and_classes(self):
        from repro.data import make_sensor_like

        train, test = make_sensor_like(SyntheticConfig(train_size=60, test_size=30, seed=2))
        assert train.image_shape == (1, 1, 24)
        assert train.num_classes == 6
        assert len(train) == 60
        assert train.images.min() >= 0.0
        assert train.images.max() <= 1.0

    def test_deterministic(self):
        from repro.data import make_sensor_like

        cfg = SyntheticConfig(train_size=40, test_size=10, seed=3)
        a, _ = make_sensor_like(cfg)
        b, _ = make_sensor_like(cfg)
        np.testing.assert_array_equal(a.images, b.images)

    def test_custom_dimensions(self):
        from repro.data import make_sensor_like

        train, _ = make_sensor_like(
            SyntheticConfig(train_size=40, test_size=10, seed=3),
            num_classes=4,
            num_features=10,
        )
        assert train.num_classes == 4
        assert train.image_shape == (1, 1, 10)

    def test_classes_are_separable(self):
        from repro.data import make_sensor_like

        train, _ = make_sensor_like(SyntheticConfig(train_size=200, test_size=10, seed=1))
        # Class means should differ measurably (the task is learnable).
        flat = train.images.reshape(len(train), -1)
        centroids = np.stack([flat[train.labels == c].mean(axis=0) for c in range(6)])
        distances = np.linalg.norm(centroids[:, None] - centroids[None, :], axis=2)
        off_diagonal = distances[~np.eye(6, dtype=bool)]
        assert off_diagonal.min() > 0.05

    def test_dispatch_by_family(self):
        train, _ = make_dataset_pair(
            "sensor-like", SyntheticConfig(train_size=20, test_size=10, seed=0)
        )
        assert train.metadata["family"] == "sensor-like"
        assert train.metadata["paper_dataset"] is None  # extension marker


class TestConfigValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            SyntheticConfig(train_size=0)
        with pytest.raises(ValueError):
            SyntheticConfig(image_size=4)
        with pytest.raises(ValueError):
            SyntheticConfig(noise_std=-0.1)


class TestFamilyDispatch:
    def test_by_name(self):
        train, _ = make_dataset_pair("pneumonia-like", SMALL)
        assert train.num_classes == 2

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="unknown dataset family"):
            make_dataset_pair("imagenet-like", SMALL)
