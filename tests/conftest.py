"""Shared pytest fixtures and numeric-gradient helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh seeded generator per test."""
    return np.random.default_rng(12345)


def numeric_gradient(func, array: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar ``func(array)`` w.r.t. ``array``.

    ``func`` must not capture stale state: it is called repeatedly with the
    perturbed array.
    """
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        f_plus = func(array)
        flat[i] = original - eps
        f_minus = func(array)
        flat[i] = original
        grad_flat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


def assert_grad_close(
    forward, value: np.ndarray, analytic: np.ndarray, atol: float = 2e-2, eps: float = 1e-3
) -> None:
    """Compare an analytic gradient against central differences.

    ``forward(arr)`` -> scalar float; ``value`` is the point; ``analytic`` the
    gradient produced by the tape.
    """
    numeric = numeric_gradient(forward, value.copy(), eps=eps)
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=5e-2)


def tape_gradient(op, x: np.ndarray) -> tuple[float, np.ndarray]:
    """Run ``loss = op(Tensor(x))`` and return ``(loss, dloss/dx)``."""
    t = Tensor(x.copy(), requires_grad=True)
    loss = op(t)
    loss.backward()
    return float(loss.item()), t.grad.copy()
