"""Unit tests for experiment-result archiving."""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    ExperimentConfig,
    append_results,
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.experiments.runner import ExperimentResult
from repro.metrics.overhead import RuntimeCost
from repro.metrics.reliability import ReliabilityResult


def _result(technique="baseline", ads=(0.3, 0.4)):
    config = ExperimentConfig(
        dataset="gtsrb",
        model="convnet",
        technique=technique,
        fault_label="mislabelling@30%",
        repeats=len(ads),
        scale="smoke",
    )
    result = ExperimentResult(config=config)
    for ad in ads:
        result.repetitions.append(
            ReliabilityResult(
                golden_accuracy=0.9,
                faulty_accuracy=0.6,
                accuracy_delta=ad,
                reverse_accuracy_delta=0.01,
                num_test=172,
            )
        )
        result.costs.append(RuntimeCost(training_s=2.5, inference_s=0.1))
    return result


class TestRoundtrip:
    def test_dict_roundtrip(self):
        original = _result()
        rebuilt = result_from_dict(result_to_dict(original))
        assert rebuilt.config == original.config
        assert rebuilt.ad_values() == original.ad_values()
        assert rebuilt.mean_training_s == original.mean_training_s

    def test_file_roundtrip(self, tmp_path):
        results = [_result("baseline"), _result("ensemble", ads=(0.1,))]
        path = tmp_path / "archive" / "study.json"
        save_results(results, path)
        loaded = load_results(path)
        assert len(loaded) == 2
        assert loaded[1].config.technique == "ensemble"
        assert loaded[0].accuracy_delta.mean == pytest.approx(0.35)

    def test_archive_is_plain_json(self, tmp_path):
        path = tmp_path / "study.json"
        save_results([_result()], path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-results"
        assert payload["version"] == 1

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"something": 1}))
        with pytest.raises(ValueError, match="not a repro results archive"):
            load_results(path)

    def test_rejects_future_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"format": "repro-results", "version": 99, "results": []}))
        with pytest.raises(ValueError, match="unsupported archive version"):
            load_results(path)


class TestCrashSafety:
    def test_save_is_atomic_under_simulated_crash(self, tmp_path, monkeypatch):
        import os

        path = tmp_path / "study.json"
        save_results([_result("baseline")], path)

        def exploding_replace(src, dst):
            raise OSError("simulated kill between write and rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            save_results([_result("ensemble")], path)
        monkeypatch.undo()
        # Old archive untouched, no temp file left behind.
        loaded = load_results(path)
        assert loaded[0].config.technique == "baseline"
        assert not list(tmp_path.glob("*.tmp"))

    def test_append_creates_then_extends(self, tmp_path):
        path = tmp_path / "incremental.json"
        append_results(_result("baseline"), path)
        assert len(load_results(path)) == 1
        append_results([_result("ensemble", ads=(0.1,))], path)
        loaded = load_results(path)
        assert [r.config.technique for r in loaded] == ["baseline", "ensemble"]

    def test_append_tolerates_empty_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.touch()
        append_results(_result(), path)
        assert len(load_results(path)) == 1
