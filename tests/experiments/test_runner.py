"""Tests for the experiment runner (Fig. 2 workflow) at a micro scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentRunner, ScaleSettings
from repro.experiments.runner import prepare_faulty_train
from repro.faults import mislabelling, removal


@pytest.fixture(scope="module")
def runner():
    """A micro-scale runner so each test cell trains in a second or two."""
    scale = ScaleSettings(
        name="micro",
        dataset_sizes={"cifar10": (40, 20), "gtsrb": (86, 43), "pneumonia": (30, 16)},
        epochs=3,
        batch_size=16,
        repeats=1,
        seed=7,
    )
    return ExperimentRunner(scale)


class TestDatasetCache:
    def test_same_object_returned(self, runner):
        a = runner.dataset("pneumonia")
        b = runner.dataset("pneumonia")
        assert a[0] is b[0]

    def test_sizes_follow_scale(self, runner):
        train, test = runner.dataset("pneumonia")
        assert len(train) == 30
        assert len(test) == 16


class TestGoldenCache:
    def test_predictions_cached(self, runner):
        a = runner.golden_predictions("pneumonia", "convnet", 0)
        b = runner.golden_predictions("pneumonia", "convnet", 0)
        assert a is b

    def test_different_repetitions_different_models(self, runner):
        a = runner.golden_predictions("pneumonia", "convnet", 0)
        b = runner.golden_predictions("pneumonia", "convnet", 1)
        assert a is not b

    def test_repetition_seed_stable(self, runner):
        assert runner._repetition_seed("gtsrb", "convnet", 0) == runner._repetition_seed(
            "gtsrb", "convnet", 0
        )
        assert runner._repetition_seed("gtsrb", "convnet", 0) != runner._repetition_seed(
            "gtsrb", "convnet", 1
        )


class TestRun:
    def test_clean_run_reports_accuracy(self, runner):
        result = runner.run("pneumonia", "convnet", "baseline", fault=None)
        assert result.config.fault_label == "none"
        assert len(result.repetitions) == 1
        assert 0.0 <= result.faulty_accuracy.mean <= 1.0
        assert result.mean_training_s > 0

    def test_faulty_run_has_ad(self, runner):
        result = runner.run("pneumonia", "convnet", "baseline", mislabelling(0.3))
        assert 0.0 <= result.accuracy_delta.mean <= 1.0
        assert result.config.fault_label == "mislabelling@30%"

    def test_repeats_override(self, runner):
        result = runner.run("pneumonia", "convnet", "baseline", mislabelling(0.1), repeats=2)
        assert len(result.repetitions) == 2
        assert result.accuracy_delta.n == 2

    def test_runs_are_reproducible(self, runner):
        a = runner.run("pneumonia", "convnet", "baseline", mislabelling(0.3))
        b = runner.run("pneumonia", "convnet", "baseline", mislabelling(0.3))
        assert a.accuracy_delta.mean == b.accuracy_delta.mean

    def test_label_correction_gets_protected_clean_subset(self, runner):
        # The runner must reserve clean indices for LC and attach them.
        train, _ = runner.dataset("pneumonia")
        faulty = prepare_faulty_train(
            train, mislabelling(0.5), "label_correction", 0.2, np.random.default_rng(0)
        )
        clean = faulty.metadata["clean_indices"]
        assert len(clean) > 0
        np.testing.assert_array_equal(faulty.labels[clean], train.labels[clean])

    def test_other_techniques_get_no_clean_subset(self, runner):
        train, _ = runner.dataset("pneumonia")
        faulty = prepare_faulty_train(
            train, mislabelling(0.5), "baseline", 0.2, np.random.default_rng(0)
        )
        assert "clean_indices" not in faulty.metadata

    def test_no_fault_passes_original_data(self, runner):
        train, _ = runner.dataset("pneumonia")
        same = prepare_faulty_train(
            train, None, "baseline", 0.2, np.random.default_rng(0)
        )
        assert same is train

    def test_removal_fault_shrinks_training_data(self, runner):
        result = runner.run("pneumonia", "convnet", "baseline", removal(0.5))
        assert result.config.fault_label == "removal@50%"

    def test_result_string(self, runner):
        result = runner.run("pneumonia", "convnet", "baseline", mislabelling(0.1))
        assert "AD=" in str(result)
