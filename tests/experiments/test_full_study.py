"""Tests for the full-study driver at micro scale."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentRunner,
    ScaleSettings,
    full_study,
    load_results,
    save_results,
)
from repro.faults import FaultType


@pytest.fixture(scope="module")
def runner():
    scale = ScaleSettings(
        name="micro",
        dataset_sizes={"cifar10": (40, 20), "gtsrb": (86, 43), "pneumonia": (30, 16)},
        epochs=2,
        batch_size=16,
        repeats=1,
        seed=5,
    )
    return ExperimentRunner(scale)


def test_full_study_covers_grid(runner):
    seen = []
    results = full_study(
        runner,
        models=("convnet",),
        datasets=("pneumonia",),
        fault_types=(FaultType.MISLABELLING, FaultType.REMOVAL),
        rates=(0.3,),
        techniques=["baseline", "label_correction"],
        progress=seen.append,
    )
    # mislabelling: baseline + LC; removal: baseline only (LC skipped).
    assert len(results) == 3
    assert seen == results
    labels = {(r.config.technique, r.config.fault_label) for r in results}
    assert ("label_correction", "mislabelling@30%") in labels
    assert ("label_correction", "removal@30%") not in labels


def test_full_study_roundtrips_through_archive(runner, tmp_path):
    results = full_study(
        runner,
        models=("convnet",),
        datasets=("pneumonia",),
        fault_types=(FaultType.REPETITION,),
        rates=(0.1,),
        techniques=["baseline"],
    )
    path = tmp_path / "study.json"
    save_results(results, path)
    loaded = load_results(path)
    assert len(loaded) == len(results)
    assert loaded[0].accuracy_delta.mean == results[0].accuracy_delta.mean
