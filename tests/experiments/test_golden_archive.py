"""Golden-archive regression: a checked-in micro-study must reproduce exactly.

``tests/experiments/fixtures/micro_study.json`` is a results archive written
by this file's ``__main__`` block (``PYTHONPATH=src python
tests/experiments/test_golden_archive.py`` regenerates it).  The test re-runs
the identical micro plan from scratch and asserts
:func:`~repro.experiments.persistence.results_equivalent` against the
archive — exact float equality on every accuracy and delta.

This pins the *whole* deterministic pipeline at once: dataset synthesis,
derived seeding, fault injection, technique fitting, and metric computation.
Any unintentional behaviour change anywhere in that chain shows up here as a
diff against the archive, not as a silent drift in study numbers.

The plan uses an explicit :class:`ScaleSettings` (never ``resolve_scale``),
so ``REPRO_SCALE``/``REPRO_EPOCHS``/``REPRO_SEED`` in the environment cannot
change what this test runs.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import ExperimentRunner, ScaleSettings
from repro.experiments.persistence import (
    load_results,
    results_equivalent,
    save_results,
)
from repro.faults import mislabelling, removal

FIXTURE = Path(__file__).parent / "fixtures" / "micro_study.json"

#: The archived plan.  Small enough to re-run in a few seconds, but wide
#: enough to exercise clean + faulty cells and two techniques.
SCALE = ScaleSettings(
    name="golden-fixture",
    dataset_sizes={"pneumonia": (40, 24)},
    image_size=16,
    epochs=2,
    batch_size=8,
    repeats=1,
    seed=7,
)
CELLS = [
    ("pneumonia", "convnet", "baseline", None),
    ("pneumonia", "convnet", "baseline", mislabelling(0.3)),
    ("pneumonia", "convnet", "label_smoothing", mislabelling(0.3)),
    ("pneumonia", "convnet", "baseline", removal(0.3)),
]


def run_micro_study():
    """Train the archived plan from scratch (fresh runner, no caches)."""
    runner = ExperimentRunner(SCALE)
    return [
        runner.run(dataset, model, technique, fault)
        for dataset, model, technique, fault in CELLS
    ]


def test_micro_study_matches_archive():
    assert FIXTURE.exists(), (
        f"missing fixture {FIXTURE}; regenerate with "
        f"'PYTHONPATH=src python {Path(__file__).relative_to(Path.cwd())}'"
    )
    archived = load_results(FIXTURE)
    assert len(archived) == len(CELLS)
    fresh = run_micro_study()
    for fresh_result, archived_result in zip(fresh, archived):
        assert fresh_result.config == archived_result.config
    assert results_equivalent(fresh, archived), (
        "micro-study results diverged from the golden archive — a behaviour "
        "change in data synthesis, seeding, fault injection, training, or "
        "metrics; if intentional, regenerate the fixture"
    )


def test_archive_covers_the_declared_plan():
    """The fixture's configs are exactly the CELLS plan, in order."""
    archived = load_results(FIXTURE)
    expected = [
        (dataset, model, technique, fault.label if fault else "none")
        for dataset, model, technique, fault in CELLS
    ]
    actual = [
        (r.config.dataset, r.config.model, r.config.technique, r.config.fault_label)
        for r in archived
    ]
    assert actual == expected
    for result in archived:
        assert result.config.scale == SCALE.name
        assert len(result.repetitions) == SCALE.repeats


if __name__ == "__main__":
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    save_results(run_micro_study(), FIXTURE)
    print(f"regenerated {FIXTURE}")
