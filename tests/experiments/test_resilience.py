"""Tests for the fault-tolerant study engine (checkpoint/resume/retries)."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, ExperimentResult, full_study
from repro.experiments.resilience import (
    CellFailure,
    CheckpointError,
    RetryPolicy,
    StudyCheckpoint,
    cell_key,
    run_cell_with_retry,
    run_resilient_study,
)
from repro.faults import FaultType
from repro.metrics.overhead import RuntimeCost
from repro.metrics.reliability import ReliabilityResult
from repro.nn import DivergenceError


# ----------------------------------------------------------------------
# Stub runners: real ExperimentResults without any training
# ----------------------------------------------------------------------

def _make_result(dataset, model, technique, fault_label, scale="stub"):
    config = ExperimentConfig(
        dataset=dataset, model=model, technique=technique,
        fault_label=fault_label, repeats=1, scale=scale,
    )
    result = ExperimentResult(config=config)
    result.repetitions.append(
        ReliabilityResult(
            golden_accuracy=0.9, faulty_accuracy=0.7, accuracy_delta=0.2,
            reverse_accuracy_delta=0.0, num_test=40,
        )
    )
    result.costs.append(RuntimeCost(training_s=1.0, inference_s=0.1))
    return result


class _StubScale:
    name = "stub"
    repeats = 1
    # Fingerprint inputs (scale_fingerprint works on any duck-typed scale).
    seed = 0
    epochs = 1
    batch_size = 1
    learning_rate = 1.0
    optimizer = "adam"
    image_size = 1
    dataset_sizes: dict = {}


class StubRunner:
    """Counts runs; optionally fails specific cells for N attempts."""

    def __init__(self, fail_plan=None):
        self.scale = _StubScale()
        self.calls = []
        #: {(dataset, model, technique, fault_label): [exc, exc, ...]} —
        #: exceptions raised on successive attempts before succeeding.
        self.fail_plan = dict(fail_plan or {})

    def _scale_fingerprint(self):
        return "stub-fingerprint"

    def run(self, dataset, model, technique, fault, lr_scale=1.0, seed_offset=0, **kw):
        fault_label = fault.label if fault is not None else "none"
        self.calls.append((dataset, model, technique, fault_label, lr_scale, seed_offset))
        pending = self.fail_plan.get((dataset, model, technique, fault_label))
        if pending:
            raise pending.pop(0)
        return _make_result(dataset, model, technique, fault_label)


GRID = dict(
    models=("convnet",),
    datasets=("pneumonia",),
    fault_types=(FaultType.MISLABELLING, FaultType.REMOVAL),
    rates=(0.1, 0.3),
    techniques=["baseline"],
)  # 4 cells


# ----------------------------------------------------------------------
# Journal round-trip
# ----------------------------------------------------------------------

class TestStudyCheckpoint:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "study.jsonl"
        ckpt = StudyCheckpoint(path, fingerprint="fp")
        result = _make_result("pneumonia", "convnet", "baseline", "mislabelling@10%")
        ckpt.record_success("k1", result)
        failure = CellFailure(
            key="k2", dataset="pneumonia", model="convnet", technique="baseline",
            fault_label="removal@30%", attempts=2, error_type="DivergenceError",
            message="boom", chain=["DivergenceError('boom')"] * 2, last_traceback="tb",
        )
        ckpt.record_failure(failure)

        reloaded = StudyCheckpoint(path, fingerprint="fp")
        assert set(reloaded.completed) == {"k1"}
        assert reloaded.completed["k1"].accuracy_delta.mean == pytest.approx(0.2)
        assert reloaded.completed["k1"].config.dataset == "pneumonia"
        assert set(reloaded.failures) == {"k2"}
        assert reloaded.failures["k2"].error_type == "DivergenceError"
        assert reloaded.corrupt_lines == 0

    def test_journal_is_jsonl(self, tmp_path):
        path = tmp_path / "study.jsonl"
        ckpt = StudyCheckpoint(path)
        ckpt.record_success("k", _make_result("pneumonia", "convnet", "baseline", "none"))
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + one cell
        assert json.loads(lines[0])["kind"] == "header"
        assert json.loads(lines[1])["kind"] == "cell"

    def test_success_supersedes_failure(self, tmp_path):
        path = tmp_path / "study.jsonl"
        ckpt = StudyCheckpoint(path)
        failure = CellFailure(
            key="k", dataset="d", model="m", technique="t", fault_label="f",
            attempts=1, error_type="ValueError", message="x",
        )
        ckpt.record_failure(failure)
        ckpt.record_success("k", _make_result("d", "m", "t", "f"))
        reloaded = StudyCheckpoint(path)
        assert "k" in reloaded.completed
        assert not reloaded.failures

    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "study.jsonl"
        ckpt = StudyCheckpoint(path)
        ckpt.record_success("k", _make_result("d", "m", "t", "f"))
        # Simulate a non-atomic writer killed mid-line.
        with open(path, "a") as fh:
            fh.write('{"kind": "cell", "key": "k2", "resu')
        reloaded = StudyCheckpoint(path)
        assert set(reloaded.completed) == {"k"}
        assert reloaded.corrupt_lines == 1

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = tmp_path / "study.jsonl"
        StudyCheckpoint(path, fingerprint="run-A")
        with pytest.raises(CheckpointError, match="fingerprint"):
            StudyCheckpoint(path, fingerprint="run-B")

    def test_resume_false_refuses_existing(self, tmp_path):
        path = tmp_path / "study.jsonl"
        StudyCheckpoint(path)
        with pytest.raises(CheckpointError, match="already exists"):
            StudyCheckpoint(path, resume=False)

    def test_non_journal_file_refused(self, tmp_path):
        path = tmp_path / "study.jsonl"
        path.write_text('{"not": "a journal"}\n')
        with pytest.raises(CheckpointError, match="not a study checkpoint"):
            StudyCheckpoint(path)

    def test_leftover_tmp_file_is_ignored(self, tmp_path):
        path = tmp_path / "study.jsonl"
        ckpt = StudyCheckpoint(path)
        ckpt.record_success("k", _make_result("d", "m", "t", "f"))
        # A crash between write and rename leaves a *.tmp sibling behind.
        (tmp_path / "study.jsonl.tmp").write_text("torn half-written journal")
        reloaded = StudyCheckpoint(path)
        assert set(reloaded.completed) == {"k"}

    def test_flush_crash_preserves_previous_journal(self, tmp_path, monkeypatch):
        path = tmp_path / "study.jsonl"
        ckpt = StudyCheckpoint(path)
        ckpt.record_success("k1", _make_result("d", "m", "t", "f"))
        before = path.read_text()

        def exploding_replace(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            ckpt.record_success("k2", _make_result("d2", "m", "t", "f"))
        monkeypatch.undo()
        assert path.read_text() == before  # old journal intact, no torn state
        assert not path.with_name(path.name + ".tmp").exists()


# ----------------------------------------------------------------------
# Advisory locking: one writer per journal
# ----------------------------------------------------------------------

fcntl = pytest.importorskip("fcntl")


class TestCheckpointLock:
    def test_foreign_lock_holder_is_refused(self, tmp_path):
        from repro.experiments import CheckpointLockError

        path = tmp_path / "study.jsonl"
        ckpt = StudyCheckpoint(path)
        ckpt.record_success("k", _make_result("d", "m", "t", "f"))
        ckpt.close()

        # Simulate another process: an independent fd's flock conflicts with
        # any later open, even within this process.
        fd = os.open(ckpt.lock_path, os.O_RDWR)
        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        try:
            with pytest.raises(CheckpointLockError, match="locked by another process"):
                StudyCheckpoint(path)
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

        # Lock released by the "other process": open works again, data intact.
        reopened = StudyCheckpoint(path)
        assert set(reopened.completed) == {"k"}
        reopened.close()

    def test_lock_error_is_a_checkpoint_error(self):
        from repro.experiments import CheckpointLockError

        assert issubclass(CheckpointLockError, CheckpointError)

    def test_same_process_may_reopen_its_journal(self, tmp_path):
        # Reload/resume within the owning process (the historical pattern)
        # must keep working; only *other* processes are locked out.
        path = tmp_path / "study.jsonl"
        first = StudyCheckpoint(path)
        first.record_success("k", _make_result("d", "m", "t", "f"))
        second = StudyCheckpoint(path)  # no close() in between
        assert set(second.completed) == {"k"}
        first.close()
        second.close()

    def test_context_manager_releases_lock(self, tmp_path):
        path = tmp_path / "study.jsonl"
        with StudyCheckpoint(path) as ckpt:
            ckpt.record_success("k", _make_result("d", "m", "t", "f"))
        # After close, a foreign flock succeeds — proof the lock was dropped.
        fd = os.open(ckpt.lock_path, os.O_RDWR)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def test_close_is_idempotent(self, tmp_path):
        ckpt = StudyCheckpoint(tmp_path / "study.jsonl")
        ckpt.close()
        ckpt.close()


# ----------------------------------------------------------------------
# Retry layer
# ----------------------------------------------------------------------

class TestRetry:
    def test_divergence_retry_reseeds_and_halves_lr(self):
        cell = ("pneumonia", "convnet", "baseline", "mislabelling@10%")
        runner = StubRunner(fail_plan={cell: [DivergenceError(0, 3, float("nan"))]})
        from repro.faults import mislabelling

        outcome = run_cell_with_retry(
            runner, "pneumonia", "convnet", "baseline", mislabelling(0.1),
            RetryPolicy(max_attempts=3),
        )
        assert outcome.ok
        assert outcome.attempts == 2
        # First attempt canonical; second reseeded with the LR halved.
        assert runner.calls[0][4:] == (1.0, 0)
        assert runner.calls[1][4:] == (0.5, 1)

    def test_exhausted_retries_become_failure_with_chain(self):
        from repro.faults import mislabelling

        cell = ("pneumonia", "convnet", "baseline", "mislabelling@10%")
        runner = StubRunner(
            fail_plan={cell: [ValueError("first"), ValueError("second")]}
        )
        outcome = run_cell_with_retry(
            runner, "pneumonia", "convnet", "baseline", mislabelling(0.1),
            RetryPolicy(max_attempts=2),
        )
        assert not outcome.ok
        assert outcome.failure.attempts == 2
        assert outcome.failure.error_type == "ValueError"
        assert outcome.failure.chain == ["ValueError('first')", "ValueError('second')"]
        assert "ValueError: second" in outcome.failure.last_traceback

    def test_backoff_hook_called_exponentially(self):
        from repro.faults import mislabelling

        cell = ("pneumonia", "convnet", "baseline", "mislabelling@10%")
        runner = StubRunner(fail_plan={cell: [ValueError("a"), ValueError("b")]})
        delays = []
        policy = RetryPolicy(
            max_attempts=3, backoff_s=1.0, backoff_factor=2.0, sleep=delays.append
        )
        outcome = run_cell_with_retry(
            runner, "pneumonia", "convnet", "baseline", mislabelling(0.1), policy
        )
        assert outcome.ok
        assert delays == [1.0, 2.0]

    def test_backoff_jitter_stays_within_band_and_is_deterministic(self):
        policy = RetryPolicy(backoff_s=1.0, backoff_factor=2.0, jitter=0.25)
        for attempt in (1, 2, 3, 4):
            base = 1.0 * 2.0 ** (attempt - 1)
            delay = policy.backoff_for(attempt)
            assert base * 0.75 <= delay <= base * 1.25
            assert delay != base  # jitter actually perturbs the schedule
            # Same jitter_seed → same delays: retries replay identically.
            assert delay == RetryPolicy(
                backoff_s=1.0, backoff_factor=2.0, jitter=0.25
            ).backoff_for(attempt)
        other = RetryPolicy(
            backoff_s=1.0, backoff_factor=2.0, jitter=0.25, jitter_seed=1
        )
        assert any(
            other.backoff_for(a) != policy.backoff_for(a) for a in (1, 2, 3)
        )

    def test_max_backoff_caps_after_jitter(self):
        policy = RetryPolicy(
            backoff_s=1.0, backoff_factor=10.0, jitter=0.5, max_backoff_s=5.0
        )
        # Attempt 3 has base 100s; whatever jitter does, the cap is hard.
        assert policy.backoff_for(3) == 5.0
        assert policy.backoff_for(1) <= 5.0
        # Cap alone (no jitter) also clamps the exponential curve.
        capped = RetryPolicy(backoff_s=1.0, backoff_factor=2.0, max_backoff_s=3.0)
        assert [capped.backoff_for(a) for a in (1, 2, 3, 4)] == [1.0, 2.0, 3.0, 3.0]

    def test_keyboard_interrupt_propagates(self):
        from repro.faults import mislabelling

        cell = ("pneumonia", "convnet", "baseline", "mislabelling@10%")
        runner = StubRunner(fail_plan={cell: [KeyboardInterrupt()]})
        with pytest.raises(KeyboardInterrupt):
            run_cell_with_retry(
                runner, "pneumonia", "convnet", "baseline", mislabelling(0.1)
            )

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(lr_decay_on_divergence=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_backoff_s=-1.0)


# ----------------------------------------------------------------------
# The resilient sweep: resume-after-kill, graceful degradation
# ----------------------------------------------------------------------

class _KillAfter:
    """A progress callback that raises after K completed cells."""

    def __init__(self, k):
        self.k = k
        self.seen = 0

    def __call__(self, result):
        self.seen += 1
        if self.seen >= self.k:
            raise KeyboardInterrupt("simulated Ctrl-C")


class TestResilientStudy:
    def test_full_grid_no_checkpoint(self):
        runner = StubRunner()
        report = run_resilient_study(runner, **GRID)
        assert len(report.results) == 4
        assert report.executed == 4
        assert report.replayed == 0
        assert report.ok

    def test_resume_after_kill_retrains_nothing(self, tmp_path):
        path = tmp_path / "study.jsonl"
        runner = StubRunner()
        with pytest.raises(KeyboardInterrupt):
            run_resilient_study(
                runner, checkpoint=path, progress=_KillAfter(2), **GRID
            )
        assert len(runner.calls) == 2  # two cells done, then killed

        # A fresh process resumes from the journal.
        resumed = StubRunner()
        report = run_resilient_study(resumed, checkpoint=path, **GRID)
        assert len(report.results) == 4
        assert report.replayed == 2
        assert report.executed == 2
        # Zero re-runs of journaled cells: only the two missing cells ran.
        done_before = {c[:4] for c in runner.calls}
        assert all(c[:4] not in done_before for c in resumed.calls)
        assert len(resumed.calls) == 2

        # A third run replays everything and trains nothing.
        third = StubRunner()
        report = run_resilient_study(third, checkpoint=path, **GRID)
        assert report.replayed == 4
        assert third.calls == []

    def test_replayed_results_preserve_values_and_order(self, tmp_path):
        path = tmp_path / "study.jsonl"
        first = run_resilient_study(StubRunner(), checkpoint=path, **GRID)
        second = run_resilient_study(StubRunner(), checkpoint=path, **GRID)
        assert [r.config for r in second.results] == [r.config for r in first.results]
        assert [r.accuracy_delta.mean for r in second.results] == [
            r.accuracy_delta.mean for r in first.results
        ]

    def test_diverging_cell_is_retried_then_recorded_as_failure(self, tmp_path):
        # One cell diverges on every attempt; the sweep must finish anyway.
        path = tmp_path / "study.jsonl"
        bad = ("pneumonia", "convnet", "baseline", "mislabelling@30%")
        runner = StubRunner(
            fail_plan={bad: [DivergenceError(1, 0, float("inf"))] * 2}
        )
        failures = []
        report = run_resilient_study(
            runner, checkpoint=path, retry=RetryPolicy(max_attempts=2),
            on_failure=failures.append, **GRID
        )
        assert len(report.results) == 3
        assert len(report.failures) == 1
        assert report.failures[0].error_type == "DivergenceError"
        assert report.failures[0].fault_label == "mislabelling@30%"
        assert failures == report.failures
        assert not report.ok
        assert "FAILED" in report.summary()

        # Resuming retries the failed cell (now healthy) and completes the grid.
        healthy = StubRunner()
        report2 = run_resilient_study(healthy, checkpoint=path, **GRID)
        assert report2.ok
        assert report2.replayed == 3
        assert report2.executed == 1
        assert len(healthy.calls) == 1

    def test_transient_divergence_recovers_mid_sweep(self):
        bad = ("pneumonia", "convnet", "baseline", "removal@10%")
        runner = StubRunner(
            fail_plan={bad: [DivergenceError(0, 0, float("nan"))]}
        )
        report = run_resilient_study(runner, retry=RetryPolicy(max_attempts=2), **GRID)
        assert report.ok
        assert len(report.results) == 4
        retried = [c for c in runner.calls if c[:4] == bad]
        assert len(retried) == 2
        assert retried[1][4] == 0.5  # halved learning rate on the retry

    def test_full_study_delegates_when_checkpoint_given(self, tmp_path):
        path = tmp_path / "study.jsonl"
        runner = StubRunner()
        results = full_study(
            runner,
            models=GRID["models"],
            datasets=GRID["datasets"],
            fault_types=GRID["fault_types"],
            rates=GRID["rates"],
            techniques=GRID["techniques"],
            checkpoint=path,
        )
        assert len(results) == 4
        assert path.exists()
        again = full_study(
            StubRunner(),
            models=GRID["models"],
            datasets=GRID["datasets"],
            fault_types=GRID["fault_types"],
            rates=GRID["rates"],
            techniques=GRID["techniques"],
            checkpoint=path,
        )
        assert [r.accuracy_delta.mean for r in again] == [
            r.accuracy_delta.mean for r in results
        ]

    def test_cell_key_includes_scale_and_repeats(self):
        runner = StubRunner()
        key = cell_key(runner, "gtsrb", "convnet", "baseline", "mislabelling@10%")
        assert key == "gtsrb|convnet|baseline|mislabelling@10%|x1|stub"
