"""Live metrics through the study funnel: serial == --jobs N aggregation.

The registry rides the same outcome funnel as ``RecordingTelemetry``
(worker snapshots on ``CellOutcome.metrics``, merged by the collector), so
a parallel sweep must aggregate to the same counters a serial one does.
Wall-clock-valued histograms (``train_epoch_seconds``) keep equal *counts*
but not equal bucket vectors — durations differ run to run by design.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentRunner,
    ParallelExecutor,
    plan_study,
    run_resilient_study,
)
from repro.telemetry import (
    MetricsRegistry,
    NULL_METRICS,
    get_metrics,
    metrics_scope,
    read_trace,
    summarize_trace,
)

from .test_executors import MICRO, MICRO_GRID
from .test_resilience import GRID, StubRunner


def _sweep(executor=None, trace=None) -> dict:
    """One MICRO sweep under a fresh registry; returns its final snapshot."""
    with metrics_scope(MetricsRegistry()) as registry:
        report = run_resilient_study(
            ExperimentRunner(MICRO), executor=executor, trace=trace, **MICRO_GRID
        )
        assert report.ok
        return registry.snapshot()


class TestDisabledByDefault:
    def test_outcomes_carry_no_metrics_when_disabled(self):
        from repro.experiments.executors import execute_unit

        unit = plan_study(scale=StubRunner().scale, **GRID)[0]
        outcome = execute_unit(StubRunner(), unit)
        assert outcome.metrics is None

    def test_study_leaves_global_registry_null(self):
        report = run_resilient_study(StubRunner(), **GRID)
        assert report.ok
        assert get_metrics() is NULL_METRICS


class TestSerialSweepMetrics:
    @pytest.fixture(scope="class")
    def snapshot(self):
        return _sweep()

    def test_training_counters_present(self, snapshot):
        assert snapshot["train_epochs_total"]["value"] > 0
        assert snapshot["train_steps_total"]["value"] > 0
        assert snapshot["train_examples_total"]["value"] > 0

    def test_epoch_histogram_counts_match_counter(self, snapshot):
        hist = snapshot["train_epoch_seconds"]
        assert hist["type"] == "histogram"
        assert hist["count"] == snapshot["train_epochs_total"]["value"]
        assert hist["sum"] > 0.0


class TestSerialParallelEquivalence:
    @pytest.fixture(scope="class")
    def snapshots(self):
        return {
            "serial": _sweep(),
            "parallel": _sweep(executor=ParallelExecutor(jobs=2)),
        }

    def test_counters_identical(self, snapshots):
        serial, parallel = snapshots["serial"], snapshots["parallel"]
        assert set(serial) == set(parallel)
        for name, snap in serial.items():
            if snap["type"] == "counter":
                assert snap == parallel[name], name

    def test_histogram_totals_identical(self, snapshots):
        """Counts must agree; bucket vectors and sums are wall-clock-valued
        and legitimately differ between runs."""
        serial, parallel = snapshots["serial"], snapshots["parallel"]
        for name, snap in serial.items():
            if snap["type"] == "histogram":
                other = parallel[name]
                assert snap["count"] == other["count"], name
                assert snap["buckets"] == other["buckets"], name
                assert sum(snap["counts"]) == snap["count"], name


class TestMetricsInTrace:
    def test_traced_sweep_lands_metrics_snapshot(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        snapshot = _sweep(trace=path)
        events = read_trace(path)
        snapshots = [
            e for e in events
            if e["ev"] == "event" and e["name"] == "metrics_snapshot"
        ]
        assert snapshots, "traced+metered sweep must emit a metrics_snapshot"
        final = snapshots[-1]["metrics"]
        assert final["train_epochs_total"] == snapshot["train_epochs_total"]

    def test_summary_renders_metrics_section(self, tmp_path):
        from repro.telemetry.summary import render_trace_summary

        path = tmp_path / "trace.jsonl"
        _sweep(trace=path)
        summary = summarize_trace(path)
        assert summary.metrics
        text = render_trace_summary(summary)
        assert "metrics:" in text
        assert "train_epochs_total" in text
        assert "train_epoch_seconds" in text
        assert "p95=" in text
