"""End-to-end telemetry: traced sweeps, serial/parallel equivalence, hooks."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.experiments import (
    ExperimentRunner,
    ParallelExecutor,
    RetryPolicy,
    SerialExecutor,
    plan_study,
    results_equivalent,
    run_resilient_study,
    run_study_plan,
)
from repro.nn import DivergenceError
from repro.telemetry import (
    NULL,
    RecordingTelemetry,
    get_telemetry,
    hierarchy_signature,
    read_trace,
    span_tree,
    summarize_trace,
    validate_trace,
)

from .test_executors import MICRO, MICRO_GRID
from .test_resilience import GRID, StubRunner


def _counter_tally(events):
    tally: Counter = Counter()
    for event in events:
        if event["ev"] == "counter":
            tally[event["name"]] += int(event.get("value", 1))
    return dict(tally)


# ----------------------------------------------------------------------
# Stub-driven structure tests (no training)
# ----------------------------------------------------------------------

class TestTracedStubSweep:
    def test_trace_file_records_study_hierarchy(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        run_resilient_study(StubRunner(), trace=path, **GRID)
        events = read_trace(path)
        validate_trace(events)
        roots = span_tree(events)
        assert [r.name for r in roots] == ["study"]
        study = roots[0]
        assert study.attrs["cells"] == 4
        units = [n for n in study.walk() if n.name == "unit"]
        assert sorted(u.attrs["key"] for u in units) == sorted(
            u.key for u in plan_study(scale=StubRunner().scale, **GRID)
        )
        # Each unit ran exactly one attempt.
        assert all(
            [c.name for c in u.children] == ["attempt"] for u in units
        )

    def test_unit_spans_carry_grid_attrs(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        run_resilient_study(StubRunner(), trace=path, **GRID)
        unit = next(
            n for n in span_tree(read_trace(path))[0].walk() if n.name == "unit"
        )
        assert unit.attrs["dataset"] == "pneumonia"
        assert unit.attrs["model"] == "convnet"
        assert unit.attrs["technique"] == "baseline"
        assert unit.attrs["rate"] in (0.1, 0.3)

    def test_retry_and_divergence_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bad = ("pneumonia", "convnet", "baseline", "removal@10%")
        runner = StubRunner(fail_plan={bad: [DivergenceError(0, 2, float("nan"))]})
        run_resilient_study(
            runner, trace=path, retry=RetryPolicy(max_attempts=2), **GRID
        )
        events = read_trace(path)
        assert _counter_tally(events) == {"retry": 1}
        divergences = [e for e in events if e["ev"] == "event" and e["name"] == "divergence"]
        assert len(divergences) == 1
        assert divergences[0]["epoch"] == 0 and divergences[0]["batch"] == 2
        # The failed attempt's span is tagged, the retry attempt is clean.
        attempts = [
            n for n in span_tree(events)[0].walk()
            if n.name == "attempt" and bad[3] in n.attrs["key"]
        ]
        assert [a.attrs.get("outcome") for a in attempts] == ["error", None]

    def test_exhausted_cell_emits_cell_failure(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bad = ("pneumonia", "convnet", "baseline", "mislabelling@30%")
        runner = StubRunner(fail_plan={bad: [ValueError("a"), ValueError("b")]})
        run_resilient_study(
            runner, trace=path, retry=RetryPolicy(max_attempts=2), **GRID
        )
        events = read_trace(path)
        assert _counter_tally(events) == {"retry": 1, "cell_failure": 1}
        failed_unit = next(
            n for n in span_tree(events)[0].walk()
            if n.name == "unit" and "mislabelling@30%" in n.attrs["key"]
        )
        assert failed_unit.attrs["outcome"] == "failed"

    def test_checkpoint_replay_emits_skip_counters(self, tmp_path):
        ckpt = tmp_path / "study.jsonl"
        run_resilient_study(StubRunner(), checkpoint=ckpt, **GRID)
        path = tmp_path / "trace.jsonl"
        run_resilient_study(StubRunner(), checkpoint=ckpt, trace=path, **GRID)
        events = read_trace(path)
        assert _counter_tally(events) == {"checkpoint_skip": 4}
        # Replayed cells execute nothing, so no unit spans appear.
        assert not [n for n in span_tree(events)[0].walk() if n.name == "unit"]

    def test_on_outcome_fires_for_every_cell(self, tmp_path):
        ckpt = tmp_path / "study.jsonl"
        seen = []
        run_resilient_study(
            StubRunner(), checkpoint=ckpt,
            on_outcome=lambda i, unit, outcome: seen.append((i, unit.key, outcome.ok)),
            **GRID,
        )
        assert len(seen) == 4 and all(ok for _, _, ok in seen)
        # Replays fire the hook too (outcome.from_checkpoint set).
        replays = []
        run_resilient_study(
            StubRunner(), checkpoint=ckpt,
            on_outcome=lambda i, unit, outcome: replays.append(outcome.from_checkpoint),
            **GRID,
        )
        assert replays == [True] * 4

    def test_existing_handle_can_collect_a_sweep(self):
        tel = RecordingTelemetry()
        plan = plan_study(scale=StubRunner().scale, **GRID)
        run_study_plan(plan, executor=SerialExecutor(runner=StubRunner()), trace=tel)
        validate_trace(tel.events)
        assert tel.events  # caller-owned handle is not closed by the collector
        tel.counter("still-open")

    def test_tracing_off_leaves_no_events_and_null_handle(self):
        report = run_resilient_study(StubRunner(), **GRID)
        assert report.ok
        assert get_telemetry() is NULL

    def test_outcomes_do_not_carry_events_when_disabled(self):
        from repro.experiments.executors import ExecutionSettings, execute_unit

        unit = plan_study(scale=StubRunner().scale, **GRID)[0]
        outcome = execute_unit(StubRunner(), unit)
        assert outcome.events == []
        assert outcome.pid is not None


# ----------------------------------------------------------------------
# Real training: serial vs parallel traces agree
# ----------------------------------------------------------------------

class TestSerialParallelTraceEquivalence:
    @pytest.fixture(scope="class")
    def traces(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("traces")
        serial_path = base / "serial.jsonl"
        parallel_path = base / "parallel.jsonl"
        serial = run_resilient_study(
            ExperimentRunner(MICRO), trace=serial_path, **MICRO_GRID
        )
        parallel = run_resilient_study(
            ExperimentRunner(MICRO), trace=parallel_path,
            executor=ParallelExecutor(jobs=2), **MICRO_GRID,
        )
        return {
            "serial": (serial, read_trace(serial_path), serial_path),
            "parallel": (parallel, read_trace(parallel_path), parallel_path),
        }

    def test_both_traces_are_valid(self, traces):
        _, serial_events, _ = traces["serial"]
        _, parallel_events, _ = traces["parallel"]
        assert validate_trace(serial_events)["pids"] == 1
        assert validate_trace(parallel_events)["pids"] >= 2

    def test_span_hierarchies_identical(self, traces):
        _, serial_events, _ = traces["serial"]
        _, parallel_events, _ = traces["parallel"]
        assert hierarchy_signature(serial_events) == hierarchy_signature(parallel_events)

    def test_counter_tallies_agree(self, traces):
        _, serial_events, _ = traces["serial"]
        _, parallel_events, _ = traces["parallel"]
        serial_tally = _counter_tally(serial_events)
        parallel_tally = _counter_tally(parallel_events)
        # Golden-model cache traffic is schedule-dependent by design (memoized
        # per process) and deliberately named apart; everything else agrees.
        for tally in (serial_tally, parallel_tally):
            tally.pop("golden_cache_hit", None)
            tally.pop("golden_cache_miss", None)
        assert serial_tally == parallel_tally

    def test_results_agree_and_tracing_does_not_perturb_them(self, traces):
        serial_report, _, _ = traces["serial"]
        parallel_report, _, _ = traces["parallel"]
        assert results_equivalent(serial_report.results, parallel_report.results)
        untraced = run_resilient_study(ExperimentRunner(MICRO), **MICRO_GRID)
        assert results_equivalent(serial_report.results, untraced.results)

    def test_summary_covers_either_trace(self, traces):
        for name in ("serial", "parallel"):
            _, events, _ = traces[name]
            summary = summarize_trace(events)
            assert summary.phase_totals["unit"][0] == 2
            assert summary.phase_totals["epoch"][0] == 2 * MICRO.epochs
            assert len(summary.slowest_units) == 2
            assert set(summary.technique_dataset_s) == {("baseline", "pneumonia")}

    def test_cli_trace_command_renders_either_trace(self, traces, capsys):
        from repro.cli import main

        for name in ("serial", "parallel"):
            _, _, path = traces[name]
            assert main(["trace", str(path)]) == 0
            out = capsys.readouterr().out
            assert "per-phase wall-clock:" in out
            assert "slowest cells:" in out
