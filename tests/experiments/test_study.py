"""Tests for the study drivers and report rendering at micro scale."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentRunner,
    ScaleSettings,
    ad_panel,
    combined_fault_analysis,
    golden_accuracy_table,
    motivating_example,
    overhead_table,
    render_combined_verdicts,
    render_motivating_example,
    render_overheads,
    render_panel,
    render_table4,
)
from repro.faults import FaultType


@pytest.fixture(scope="module")
def runner():
    scale = ScaleSettings(
        name="micro",
        dataset_sizes={"cifar10": (40, 20), "gtsrb": (86, 43), "pneumonia": (30, 16)},
        epochs=3,
        batch_size=16,
        repeats=1,
        seed=3,
    )
    return ExperimentRunner(scale)


TECHS = ["baseline", "label_smoothing"]


class TestGoldenAccuracyTable:
    def test_shape_and_rendering(self, runner):
        table = golden_accuracy_table(
            runner, models=("convnet",), datasets=("pneumonia",), techniques=TECHS
        )
        assert set(table) == {("convnet", "pneumonia", t) for t in TECHS}
        text = render_table4(table, ("convnet",), ("pneumonia",), TECHS)
        assert "Base" in text
        assert "LS" in text
        assert "*" in text  # best-per-row marker


class TestADPanel:
    def test_panel_structure(self, runner):
        panel = ad_panel(
            runner,
            "pneumonia",
            "convnet",
            FaultType.MISLABELLING,
            rates=(0.1, 0.5),
            techniques=TECHS,
        )
        assert set(panel.series) == set(TECHS)
        for series in panel.series.values():
            assert series.rates == [0.1, 0.5]
            assert len(series.points) == 2
        assert panel.winner_at(0.5) in TECHS
        assert "pneumonia" in panel.title

    def test_label_correction_skipped_for_removal(self, runner):
        panel = ad_panel(
            runner,
            "pneumonia",
            "convnet",
            FaultType.REMOVAL,
            rates=(0.3,),
            techniques=["baseline", "label_correction"],
        )
        assert "label_correction" not in panel.series

    def test_label_correction_kept_for_mislabelling(self, runner):
        panel = ad_panel(
            runner,
            "pneumonia",
            "convnet",
            FaultType.MISLABELLING,
            rates=(0.3,),
            techniques=["baseline", "label_correction"],
        )
        assert "label_correction" in panel.series

    def test_series_at_unknown_rate(self, runner):
        panel = ad_panel(
            runner, "pneumonia", "convnet", FaultType.MISLABELLING, rates=(0.1,), techniques=TECHS
        )
        with pytest.raises(KeyError):
            panel.series["baseline"].at(0.9)

    def test_render_panel_text(self, runner):
        panel = ad_panel(
            runner, "pneumonia", "convnet", FaultType.MISLABELLING, rates=(0.1,), techniques=TECHS
        )
        text = render_panel(panel)
        assert "10%" in text
        assert "Base" in text


class TestOverheadTable:
    def test_structure_and_rendering(self, runner):
        overheads = overhead_table(
            runner, dataset="pneumonia", model="convnet", techniques=TECHS
        )
        assert "label_smoothing" in overheads
        assert "baseline" not in overheads  # baseline is the denominator
        ls = overheads["label_smoothing"]
        assert ls.training_overhead > 0
        text = render_overheads(overheads)
        assert "x" in text


class TestCombinedFaults:
    def test_verdicts_cover_three_combinations(self, runner):
        verdicts = combined_fault_analysis(
            runner, dataset="pneumonia", model="convnet", rate=0.3
        )
        assert len(verdicts) == 3
        labels = [v.combined_label for v in verdicts]
        assert "mislabelling@30%+removal@30%" in labels
        text = render_combined_verdicts(verdicts)
        assert "->" in text


class TestMotivatingExample:
    def test_structure(self, runner):
        result = motivating_example(
            runner, dataset="pneumonia", model="convnet", techniques=["label_smoothing"]
        )
        assert 0.0 <= result.golden_accuracy.mean <= 1.0
        assert "label_smoothing" in result.technique_ads
        ranked = result.ranked_techniques()
        assert ranked[0][0] == "label_smoothing"
        text = render_motivating_example(result)
        assert "golden accuracy" in text
