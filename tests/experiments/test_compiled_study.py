"""The golden micro-study must reproduce exactly under compiled kernels.

``tests/experiments/test_golden_archive.py`` pins the whole deterministic
experiment pipeline against a checked-in archive in the default (fast-eager)
kernel mode.  This file re-runs the identical plan with the compiled autodiff
tape (``--kernels compiled``): record-once/replay training must produce the
same accuracies and deltas float-for-float, proving the compiled step is a
pure execution-strategy change with zero numeric surface.
"""

from __future__ import annotations

import pytest

from repro.experiments.persistence import load_results, results_equivalent
from repro.nn import use_kernel_mode

from .test_golden_archive import CELLS, FIXTURE, run_micro_study


@pytest.mark.slow
def test_micro_study_compiled_matches_archive():
    assert FIXTURE.exists(), f"missing fixture {FIXTURE}"
    archived = load_results(FIXTURE)
    assert len(archived) == len(CELLS)
    with use_kernel_mode("compiled"):
        fresh = run_micro_study()
    assert results_equivalent(fresh, archived), (
        "compiled-tape micro-study diverged from the golden archive — the "
        "record/plan/execute pipeline changed training numerics"
    )
