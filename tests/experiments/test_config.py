"""Unit tests for experiment scales and env-variable overrides."""

from __future__ import annotations

import pytest

from repro.experiments import SCALES, ExperimentConfig, resolve_scale


class TestScales:
    def test_three_scales(self):
        assert set(SCALES) == {"smoke", "small", "paper"}

    def test_all_scales_cover_all_datasets(self):
        for scale in SCALES.values():
            assert set(scale.dataset_sizes) == {"cifar10", "gtsrb", "pneumonia"}

    def test_scales_are_ordered_by_size(self):
        for ds in ("cifar10", "gtsrb", "pneumonia"):
            assert (
                SCALES["smoke"].sizes_for(ds)[0]
                < SCALES["small"].sizes_for(ds)[0]
                < SCALES["paper"].sizes_for(ds)[0]
            )

    def test_paper_scale_repeats_twenty(self):
        # The paper evaluates each configuration 20 times (§IV).
        assert SCALES["paper"].repeats == 20

    def test_budget_reflects_scale(self):
        budget = SCALES["smoke"].budget()
        assert budget.epochs == SCALES["smoke"].epochs
        assert budget.batch_size == SCALES["smoke"].batch_size

    def test_unknown_dataset_in_scale(self):
        with pytest.raises(KeyError):
            SCALES["smoke"].sizes_for("imagenet")


class TestResolveScale:
    def test_default_is_smoke(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert resolve_scale().name == "smoke"

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert resolve_scale().name == "small"

    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert resolve_scale("paper").name == "paper"

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPEATS", "7")
        monkeypatch.setenv("REPRO_EPOCHS", "3")
        monkeypatch.setenv("REPRO_SEED", "42")
        scale = resolve_scale("smoke")
        assert scale.repeats == 7
        assert scale.epochs == 3
        assert scale.seed == 42

    def test_unknown_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        with pytest.raises(KeyError, match="unknown scale"):
            resolve_scale("huge")


class TestExperimentConfig:
    def test_describe(self):
        config = ExperimentConfig(
            dataset="gtsrb",
            model="convnet",
            technique="ensemble",
            fault_label="mislabelling@30%",
            repeats=3,
            scale="smoke",
        )
        text = config.describe()
        assert "gtsrb/convnet/ensemble/mislabelling@30%" in text
        assert "x3" in text
