"""Unit tests for Markdown report rendering."""

from __future__ import annotations

from repro.experiments import overheads_to_markdown, panel_to_markdown, table4_to_markdown
from repro.experiments.study import ADPanel, ADSeries
from repro.faults import FaultType
from repro.metrics import OverheadResult
from repro.metrics.stats import MeanWithCI


def _ci(mean, hw=0.0, n=1):
    return MeanWithCI(mean, hw, 0.95, n)


def _panel():
    panel = ADPanel(dataset="gtsrb", model="convnet", fault_type=FaultType.MISLABELLING)
    panel.series["baseline"] = ADSeries("baseline", [0.1, 0.5], [_ci(0.2), _ci(0.6)])
    panel.series["ensemble"] = ADSeries("ensemble", [0.1, 0.5], [_ci(0.1, 0.02, 3), _ci(0.3, 0.05, 3)])
    return panel


class TestPanelMarkdown:
    def test_table_structure(self):
        text = panel_to_markdown(_panel())
        lines = text.splitlines()
        assert lines[0].startswith("**gtsrb, convnet, mislabelling**")
        assert "| Technique | 10% | 50% |" in text
        assert "| Base | 20.0% | 60.0% |" in text

    def test_confidence_interval_cells(self):
        text = panel_to_markdown(_panel())
        assert "10.0% ± 2.0%" in text


class TestTable4Markdown:
    def test_bold_best_and_missing(self):
        table = {
            ("convnet", "gtsrb", "baseline"): _ci(0.90),
            ("convnet", "gtsrb", "ensemble"): _ci(0.95),
        }
        text = table4_to_markdown(
            table, ("convnet",), ("gtsrb",), ["baseline", "label_smoothing", "ensemble"]
        )
        assert "**95%**" in text
        assert "—" in text
        assert text.count("|---") >= 3


class TestOverheadsMarkdown:
    def test_multiplier_cells(self):
        text = overheads_to_markdown({"ensemble": OverheadResult("ensemble", 5.0, 4.9)})
        assert "| Ens | 5.00× | 4.90× |" in text
