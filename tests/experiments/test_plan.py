"""Tests for the plan stage: WorkUnit expansion, keys, seeds, pickling."""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import pytest

from repro.experiments import (
    ExperimentRunner,
    ScaleSettings,
    WorkUnit,
    cell_key,
    derive_repetition_seed,
    plan_study,
    scale_fingerprint,
    study_grid,
)
from repro.faults import FaultType
from repro.mitigation import build_technique, technique_names, validate_techniques

MICRO = ScaleSettings(
    name="micro",
    dataset_sizes={"cifar10": (40, 20), "gtsrb": (86, 43), "pneumonia": (30, 16)},
    epochs=2,
    batch_size=16,
    repeats=1,
    seed=5,
)

GRID = dict(
    models=("convnet", "mlp"),
    datasets=("pneumonia", "gtsrb"),
    fault_types=(FaultType.MISLABELLING, FaultType.REMOVAL),
    rates=(0.1, 0.3),
)


class TestPlanStudy:
    def test_expansion_matches_study_grid_order(self):
        plan = plan_study(scale=MICRO, techniques=["baseline", "label_smoothing"], **GRID)
        grid = list(study_grid(techniques=["baseline", "label_smoothing"], **GRID))
        assert len(plan) == len(grid)
        assert [
            (u.dataset, u.model, u.technique, u.fault_type, u.rate) for u in plan
        ] == grid

    def test_label_correction_skipped_for_non_mislabelling(self):
        plan = plan_study(
            scale=MICRO, techniques=["baseline", "label_correction"], **GRID
        )
        lc_units = [u for u in plan if u.technique == "label_correction"]
        assert lc_units  # present for mislabelling...
        assert all(u.fault_type is FaultType.MISLABELLING for u in lc_units)

    def test_unknown_technique_fails_at_plan_time(self):
        with pytest.raises(KeyError, match="unknown technique"):
            plan_study(scale=MICRO, techniques=["baseline", "tyop"], **GRID)
        with pytest.raises(KeyError):
            validate_techniques(["no_such_technique"])

    def test_scale_resolves_from_name(self):
        plan = plan_study(
            models=("convnet",), datasets=("pneumonia",), rates=(0.1,),
            techniques=["baseline"], scale="smoke",
        )
        assert plan[0].scale.name == "smoke"

    def test_default_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        plan = plan_study(
            models=("convnet",), datasets=("pneumonia",), rates=(0.1,),
            techniques=["baseline"],
        )
        assert plan[0].scale.name == "small"


class TestWorkUnit:
    def unit(self, **overrides):
        fields = dict(
            dataset="pneumonia", model="convnet", technique="baseline",
            fault_type=FaultType.MISLABELLING, rate=0.3, scale=MICRO,
        )
        fields.update(overrides)
        return WorkUnit(**fields)

    def test_pickle_roundtrip_preserves_identity(self):
        unit = self.unit()
        clone = pickle.loads(pickle.dumps(unit))
        assert clone == unit
        assert hash(clone) == hash(unit)
        assert clone.key == unit.key
        assert clone.fingerprint == unit.fingerprint

    def test_key_matches_serial_cell_key(self):
        unit = self.unit()
        runner = ExperimentRunner(MICRO)
        assert unit.key == cell_key(
            runner, unit.dataset, unit.model, unit.technique, unit.fault_label
        )

    def test_fault_reconstruction(self):
        unit = self.unit()
        assert unit.fault.label == "mislabelling@30%"
        assert unit.fault_label == "mislabelling@30%"
        clean = self.unit(fault_type=None, rate=0.0)
        assert clean.fault is None
        assert clean.fault_label == "none"

    def test_repeats_default_to_scale(self):
        assert self.unit().effective_repeats == MICRO.repeats
        assert self.unit(repeats=7).effective_repeats == 7
        assert "x7" in self.unit(repeats=7).key

    def test_repetition_seed_matches_runner(self):
        unit = self.unit()
        runner = ExperimentRunner(MICRO)
        for repetition in range(3):
            assert unit.repetition_seed(repetition) == runner._repetition_seed(
                unit.dataset, unit.model, repetition
            )

    def test_seed_and_fingerprint_stable_across_processes(self):
        # Python string hashing is per-process salted; the seed derivation
        # must not be.  Recompute in a fresh interpreter and compare.
        unit = self.unit()
        script = (
            "from repro.experiments import derive_repetition_seed\n"
            "print(derive_repetition_seed(5, 'pneumonia', 'convnet', 0))"
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=__file__.rsplit("/tests/", 1)[0],
        ).stdout.strip()
        assert int(output) == unit.repetition_seed(0)
        assert int(output) == derive_repetition_seed(5, "pneumonia", "convnet", 0)

    def test_fingerprint_covers_scale_and_cell(self):
        unit = self.unit()
        assert scale_fingerprint(MICRO) in unit.fingerprint
        assert unit.key in unit.fingerprint
        other_scale = ScaleSettings(
            name="micro", dataset_sizes=dict(MICRO.dataset_sizes), epochs=3,
            batch_size=16, repeats=1, seed=5,
        )
        assert self.unit(scale=other_scale).fingerprint != unit.fingerprint

    def test_runner_fingerprint_matches_pure_function(self):
        assert ExperimentRunner(MICRO)._scale_fingerprint() == scale_fingerprint(MICRO)


class TestTechniquePickling:
    def test_all_registered_techniques_pickle(self):
        # Parallel workers rebuild techniques from (name, kwargs); instances
        # must also survive pickling for executors that ship them directly.
        for name in technique_names(include_extensions=True):
            technique = build_technique(name)
            clone = pickle.loads(pickle.dumps(technique))
            assert type(clone) is type(technique)
