"""Tests for the multi-host cluster executor (frames, leases, equivalence)."""

from __future__ import annotations

import json
import multiprocessing
import pickle
import socket
import struct
import threading
import time
from collections import deque

import pytest

from repro.experiments import (
    ClusterExecutor,
    ExecutionSettings,
    ExperimentRunner,
    StudyCheckpoint,
    results_equivalent,
    run_resilient_study,
    run_study_plan,
    run_worker,
)
from repro.experiments.cluster import (
    FrameError,
    _WorkerConn,
    pack_frame,
    parse_frames,
)
from repro.experiments.resilience import CellOutcome
from repro.telemetry import RecordingTelemetry, read_trace
from repro.telemetry.trace import hierarchy_signature, validate_trace

from .test_executors import MICRO, MICRO_GRID, stub_plan
from .test_resilience import _make_result


# ----------------------------------------------------------------------
# Frame protocol (no sockets)
# ----------------------------------------------------------------------

class TestFrameProtocol:
    def test_roundtrip_several_frames_in_one_buffer(self):
        messages = [("hello", "host", 1), ("heartbeat",), ("result", 3, None)]
        buf = bytearray(b"".join(pack_frame(m) for m in messages))
        assert parse_frames(buf) == messages
        assert buf == bytearray()  # fully consumed

    def test_partial_frame_stays_buffered_at_every_split(self):
        frame = pack_frame(("unit", 7, "payload"))
        for cut in range(len(frame)):
            buf = bytearray(frame[:cut])
            assert parse_frames(buf) == []  # no error, nothing popped
            buf.extend(frame[cut:])
            assert parse_frames(buf) == [("unit", 7, "payload")]

    def test_oversize_length_prefix_is_malformed(self):
        buf = bytearray(struct.pack(">I", (1 << 30) + 1) + b"x")
        with pytest.raises(FrameError, match="exceeds"):
            parse_frames(buf)

    def test_undecodable_payload_is_malformed(self):
        junk = b"this is not a pickle"
        buf = bytearray(struct.pack(">I", len(junk)) + junk)
        with pytest.raises(FrameError, match="undecodable"):
            parse_frames(buf)

    def test_empty_buffer_yields_nothing(self):
        assert parse_frames(bytearray()) == []


# ----------------------------------------------------------------------
# Scripted raw-socket workers (stub outcomes: no training)
# ----------------------------------------------------------------------

def _stub_outcome(unit):
    return CellOutcome(
        result=_make_result(unit.dataset, unit.model, unit.technique, unit.fault_label),
        attempts=1, pid=0, host="fakehost",
    )


def _recv_frame(sock):
    def exact(n):
        chunks = bytearray()
        while len(chunks) < n:
            chunk = sock.recv(n - len(chunks))
            if not chunk:
                raise ConnectionError("closed")
            chunks.extend(chunk)
        return bytes(chunks)

    (length,) = struct.unpack(">I", exact(4))
    return pickle.loads(exact(length))


class _ScriptedWorker(threading.Thread):
    """A protocol-speaking fake worker driven by a behavior function."""

    def __init__(self, address, behave):
        super().__init__(daemon=True)
        self.address = address
        self.behave = behave
        self.start()

    def run(self):
        sock = socket.create_connection(self.address)
        try:
            self.behave(sock)
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass


def _well_behaved(sock):
    """Hello, then execute (fabricate) every leased unit until shutdown."""
    sock.sendall(pack_frame(("hello", "fakehost", 1)))
    while True:
        message = _recv_frame(sock)
        if message[0] == "shutdown":
            return
        if message[0] == "unit":
            _, index, unit = message
            sock.sendall(pack_frame(("result", index, _stub_outcome(unit))))


def _silent_after_first_lease(sock):
    """Take one unit, then go dark (no result, no heartbeat) until dropped."""
    sock.sendall(pack_frame(("hello", "deadhost", 2)))
    _recv_frame(sock)  # welcome
    _recv_frame(sock)  # the leased unit — never answered
    while True:  # wait for the coordinator to close the connection
        if not sock.recv(1 << 16):
            return


def _garbage_after_first_lease(sock):
    """Take one unit, then send bytes that are not a frame."""
    sock.sendall(pack_frame(("hello", "rothost", 3)))
    _recv_frame(sock)  # welcome
    _recv_frame(sock)  # the leased unit
    sock.sendall(struct.pack(">I", 8) + b"not-pkl!")
    while True:
        if not sock.recv(1 << 16):
            return


class TestCoordinator:
    def test_lease_expiry_redispatches_with_no_duplicate_checkpoint_rows(self, tmp_path):
        plan = stub_plan()
        executor = ClusterExecutor(lease_timeout=0.6, poll_interval=0.05)
        recorder = RecordingTelemetry()
        _ScriptedWorker(executor.address, _silent_after_first_lease)
        time.sleep(0.2)  # let the silent worker take the first lease
        _ScriptedWorker(executor.address, _well_behaved)
        report = run_study_plan(
            plan, executor=executor,
            checkpoint=tmp_path / "study.jsonl", trace=recorder,
        )
        assert report.ok and report.executed == len(plan)

        lost = [e for e in recorder.events if e.get("name") == "worker_lost"]
        assert len(lost) == 1
        assert lost[0]["reason"] == "lease expired"
        assert lost[0]["worker"] == "deadhost:2"

        # The journal is the ground truth for exactly-once: one success
        # record per plan key, no duplicates from the re-dispatched cell.
        rows = [json.loads(line) for line in
                (tmp_path / "study.jsonl").read_text().splitlines()]
        success_keys = [r["key"] for r in rows if r["kind"] == "cell"]
        assert sorted(success_keys) == sorted(u.key for u in plan)

    def test_malformed_frame_drops_only_its_connection(self):
        plan = stub_plan()
        executor = ClusterExecutor(lease_timeout=30.0, poll_interval=0.05)
        recorder = RecordingTelemetry()
        _ScriptedWorker(executor.address, _garbage_after_first_lease)
        time.sleep(0.2)
        _ScriptedWorker(executor.address, _well_behaved)
        report = run_study_plan(plan, executor=executor, trace=recorder)
        assert report.ok and report.executed == len(plan)
        lost = [e for e in recorder.events if e.get("name") == "worker_lost"]
        assert len(lost) == 1 and lost[0]["reason"] == "malformed frame"

    def test_worker_disconnect_requeues_its_lease(self):
        def vanish_after_first_lease(sock):
            sock.sendall(pack_frame(("hello", "ghosthost", 4)))
            _recv_frame(sock)  # welcome
            _recv_frame(sock)  # the unit
            sock.close()  # EOF mid-cell: the crash-from-outside signature

        plan = stub_plan()
        executor = ClusterExecutor(lease_timeout=30.0, poll_interval=0.05)
        recorder = RecordingTelemetry()
        _ScriptedWorker(executor.address, vanish_after_first_lease)
        time.sleep(0.2)
        _ScriptedWorker(executor.address, _well_behaved)
        report = run_study_plan(plan, executor=executor, trace=recorder)
        assert report.ok and report.executed == len(plan)
        lost = [e for e in recorder.events if e.get("name") == "worker_lost"]
        assert len(lost) == 1 and lost[0]["reason"] == "disconnected"

    def test_duplicate_result_is_dropped_not_yielded(self):
        # The defensive path: a result for an index that already completed
        # (its lease expired and the re-run finished first) must be dropped,
        # not double-counted.
        executor = ClusterExecutor()
        units = stub_plan()
        conn = _WorkerConn(sock=None, addr=("10.0.0.9", 1234))
        conn.host, conn.pid = "latehost", 9
        done = [True]
        completed = []
        executor._handle(
            conn, ("result", 0, _stub_outcome(units[0])), ExecutionSettings(),
            pending=deque(), units=units,
            done=done, completed=completed,
        )
        assert completed == []
        events = executor.drain_events()
        assert [e["name"] for e in events] == ["duplicate_result"]
        assert events[0]["worker"] == "latehost:9"

    def test_lease_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="lease_timeout"):
            ClusterExecutor(lease_timeout=0.0)

    def test_map_on_empty_units_yields_nothing_and_closes(self):
        executor = ClusterExecutor()
        assert list(executor.map([], ExecutionSettings())) == []
        with pytest.raises(OSError):
            executor._listener.getsockname()  # listener closed


# ----------------------------------------------------------------------
# End-to-end: real workers, real (micro-scale) training
# ----------------------------------------------------------------------

def _spawn_workers(address, count):
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=run_worker, args=address, daemon=True)
        for _ in range(count)
    ]
    for proc in procs:
        proc.start()
    return procs


class TestClusterSerialEquivalence:
    @pytest.fixture(scope="class")
    def serial(self, tmp_path_factory):
        trace = tmp_path_factory.mktemp("serial") / "trace.jsonl"
        report = run_resilient_study(
            ExperimentRunner(MICRO), trace=trace, **MICRO_GRID
        )
        return report, trace

    @pytest.fixture(scope="class")
    def cluster(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cluster")
        executor = ClusterExecutor(lease_timeout=120.0, poll_interval=0.05)
        procs = _spawn_workers(executor.address, 2)
        report = run_resilient_study(
            ExperimentRunner(MICRO), executor=executor,
            checkpoint=tmp / "study.jsonl", trace=tmp / "trace.jsonl",
            **MICRO_GRID,
        )
        for proc in procs:
            proc.join(timeout=30)
        return report, tmp / "trace.jsonl", procs

    def test_cluster_results_identical_to_serial(self, serial, cluster):
        serial_report, _ = serial
        cluster_report, _, _ = cluster
        assert cluster_report.ok and cluster_report.executed == 2
        assert results_equivalent(serial_report.results, cluster_report.results)
        # Cross-host seed stability made concrete: every accuracy is bitwise
        # equal because cell results derive from unit fingerprints, never
        # from which worker (or host) executed them.
        assert [r.accuracy_delta.mean for r in cluster_report.results] == [
            r.accuracy_delta.mean for r in serial_report.results
        ]

    def test_cluster_outcomes_carry_worker_host(self, cluster):
        cluster_report, _, _ = cluster
        for result in cluster_report.results:
            assert result is not None  # executed, shipped back over the wire

    def test_workers_exit_cleanly_on_shutdown(self, cluster):
        _, _, procs = cluster
        assert [proc.exitcode for proc in procs] == [0, 0]

    def test_merged_trace_is_valid_and_matches_serial_hierarchy(self, serial, cluster):
        _, serial_trace = serial
        _, cluster_trace, _ = cluster
        serial_events = read_trace(serial_trace)
        cluster_events = read_trace(cluster_trace)
        validate_trace(serial_events)
        validate_trace(cluster_events)
        assert hierarchy_signature(cluster_events) == hierarchy_signature(serial_events)
