"""Unit tests for the experiment disk cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentRunner, ScaleSettings
from repro.experiments.cache import CellCache
from repro.faults import mislabelling
from repro.metrics.overhead import RuntimeCost


class TestCellCache:
    def test_roundtrip(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        predictions = np.array([1, 2, 3], dtype=np.int64)
        cache.put("some|key", predictions, RuntimeCost(1.5, 0.25))
        hit = cache.get("some|key")
        assert hit is not None
        np.testing.assert_array_equal(hit[0], predictions)
        assert hit[1].training_s == 1.5
        assert hit[1].inference_s == 0.25

    def test_miss_returns_none(self, tmp_path):
        cache = CellCache(tmp_path)
        assert cache.get("unknown") is None

    def test_len_and_clear(self, tmp_path):
        cache = CellCache(tmp_path)
        cache.put("a", np.zeros(2), RuntimeCost(1.0, 1.0))
        cache.put("b", np.zeros(2), RuntimeCost(1.0, 1.0))
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = CellCache(tmp_path)
        cache.put("k", np.zeros(2), RuntimeCost(1.0, 1.0))
        for path in cache.directory.glob("*.npz"):
            path.write_bytes(b"garbage")
        assert cache.get("k") is None

    def test_corrupt_entry_is_quarantined(self, tmp_path):
        cache = CellCache(tmp_path)
        cache.put("k", np.zeros(2), RuntimeCost(1.0, 1.0))
        [entry] = list(cache.directory.glob("*.npz"))
        entry.write_bytes(b"garbage")
        assert cache.get("k") is None
        assert cache.quarantined == 1
        assert not entry.exists()  # moved aside, no longer shadowing the key
        assert (cache.directory / "corrupt" / entry.name).exists()
        # The slot is reusable: a fresh put works and reads back.
        cache.put("k", np.ones(2), RuntimeCost(2.0, 0.5))
        hit = cache.get("k")
        assert hit is not None
        np.testing.assert_array_equal(hit[0], np.ones(2))

    def test_put_is_atomic_under_simulated_crash(self, tmp_path, monkeypatch):
        import os as os_module

        cache = CellCache(tmp_path)
        cache.put("k", np.zeros(3), RuntimeCost(1.0, 1.0))

        def exploding_replace(src, dst):
            raise OSError("simulated kill between write and rename")

        monkeypatch.setattr(os_module, "replace", exploding_replace)
        with pytest.raises(OSError):
            cache.put("k", np.ones(3), RuntimeCost(9.0, 9.0))
        monkeypatch.undo()
        # The old entry is untouched and no temp file is left behind.
        hit = cache.get("k")
        assert hit is not None
        np.testing.assert_array_equal(hit[0], np.zeros(3))
        assert not list(cache.directory.glob("*.tmp"))

    def test_leftover_tmp_file_is_invisible(self, tmp_path):
        cache = CellCache(tmp_path)
        cache.put("k", np.zeros(2), RuntimeCost(1.0, 1.0))
        (cache.directory / "deadbeef.npz.tmp").write_bytes(b"half-written")
        assert len(cache) == 1  # tmp files are not entries
        assert cache.get("k") is not None
        cache.clear()
        assert not list(cache.directory.glob("*.npz.tmp"))  # clear sweeps them too

    def test_quarantine_does_not_count_toward_len(self, tmp_path):
        cache = CellCache(tmp_path)
        cache.put("a", np.zeros(2), RuntimeCost(1.0, 1.0))
        cache.put("b", np.zeros(2), RuntimeCost(1.0, 1.0))
        [first, _] = sorted(cache.directory.glob("*.npz"))
        first.write_bytes(b"garbage")
        # Trigger quarantine by reading whichever key hashes to the bad file.
        cache.get("a")
        cache.get("b")
        assert cache.quarantined == 1
        assert len(cache) == 1


def _hammer_one_key(directory: str, writes: int) -> bool:
    """Worker for the concurrent-writer test (module level: picklable)."""
    cache = CellCache(directory)
    for i in range(writes):
        cache.put("shared|key", np.full(8, i), RuntimeCost(1.0, 0.1))
    return True


class TestCellCacheConcurrency:
    def test_concurrent_writers_on_same_key(self, tmp_path):
        # Parallel workers store deterministic content under the same key;
        # racing puts must each complete (unique temp names + atomic rename)
        # and leave a readable entry with no stray temp files.
        from concurrent.futures import ProcessPoolExecutor

        directory = str(tmp_path / "cells")
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(_hammer_one_key, directory, 20) for _ in range(2)]
            assert all(f.result() for f in futures)

        cache = CellCache(directory)
        hit = cache.get("shared|key")
        assert hit is not None
        assert not list(cache.directory.glob("*.tmp"))
        assert len(cache) == 1

    def test_tmp_names_are_unique_per_call(self, tmp_path, monkeypatch):
        import os as os_module

        cache = CellCache(tmp_path)
        seen = []
        real_replace = os_module.replace

        def recording_replace(src, dst):
            seen.append(str(src))
            return real_replace(src, dst)

        monkeypatch.setattr(os_module, "replace", recording_replace)
        cache.put("k", np.zeros(2), RuntimeCost(1.0, 1.0))
        cache.put("k", np.zeros(2), RuntimeCost(1.0, 1.0))
        assert len(set(seen)) == 2  # same key, distinct temp files

    def test_clear_tolerates_missing_files(self, tmp_path):
        cache_a = CellCache(tmp_path)
        cache_b = CellCache(tmp_path)
        cache_a.put("k", np.zeros(2), RuntimeCost(1.0, 1.0))
        cache_a.clear()
        cache_b.clear()  # second clear sees nothing to delete; must not raise
        assert len(cache_b) == 0


def _micro_scale():
    return ScaleSettings(
        name="micro",
        dataset_sizes={"cifar10": (40, 20), "gtsrb": (86, 43), "pneumonia": (30, 16)},
        epochs=2,
        batch_size=16,
        repeats=1,
        seed=9,
    )


class TestRunnerDiskCache:
    def test_second_runner_reuses_cells(self, tmp_path):
        cache_dir = str(tmp_path / "cells")
        first = ExperimentRunner(_micro_scale(), cache_dir=cache_dir)
        result_a = first.run("pneumonia", "convnet", "baseline", mislabelling(0.3))
        assert len(first.cell_cache) > 0

        second = ExperimentRunner(_micro_scale(), cache_dir=cache_dir)
        result_b = second.run("pneumonia", "convnet", "baseline", mislabelling(0.3))
        assert result_b.accuracy_delta.mean == result_a.accuracy_delta.mean
        assert result_b.mean_training_s == result_a.mean_training_s  # cached cost

    def test_different_scale_does_not_collide(self, tmp_path):
        cache_dir = str(tmp_path / "cells")
        first = ExperimentRunner(_micro_scale(), cache_dir=cache_dir)
        first.run("pneumonia", "convnet", "baseline", mislabelling(0.3))
        entries = len(first.cell_cache)

        other_scale = ScaleSettings(
            name="micro2",
            dataset_sizes={"cifar10": (40, 20), "gtsrb": (86, 43), "pneumonia": (30, 16)},
            epochs=3,  # different budget -> different fingerprint
            batch_size=16,
            repeats=1,
            seed=9,
        )
        second = ExperimentRunner(other_scale, cache_dir=cache_dir)
        second.run("pneumonia", "convnet", "baseline", mislabelling(0.3))
        assert len(second.cell_cache) > entries  # new cells were written

    def test_no_cache_dir_means_no_disk_io(self):
        runner = ExperimentRunner(_micro_scale())
        assert runner.cell_cache is None
        result = runner.run("pneumonia", "convnet", "baseline", mislabelling(0.1))
        assert 0.0 <= result.accuracy_delta.mean <= 1.0
