"""Unit tests for the experiment disk cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentRunner, ScaleSettings
from repro.experiments.cache import CellCache
from repro.faults import mislabelling
from repro.metrics.overhead import RuntimeCost


class TestCellCache:
    def test_roundtrip(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        predictions = np.array([1, 2, 3], dtype=np.int64)
        cache.put("some|key", predictions, RuntimeCost(1.5, 0.25))
        hit = cache.get("some|key")
        assert hit is not None
        np.testing.assert_array_equal(hit[0], predictions)
        assert hit[1].training_s == 1.5
        assert hit[1].inference_s == 0.25

    def test_miss_returns_none(self, tmp_path):
        cache = CellCache(tmp_path)
        assert cache.get("unknown") is None

    def test_len_and_clear(self, tmp_path):
        cache = CellCache(tmp_path)
        cache.put("a", np.zeros(2), RuntimeCost(1.0, 1.0))
        cache.put("b", np.zeros(2), RuntimeCost(1.0, 1.0))
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = CellCache(tmp_path)
        cache.put("k", np.zeros(2), RuntimeCost(1.0, 1.0))
        for path in cache.directory.glob("*.npz"):
            path.write_bytes(b"garbage")
        assert cache.get("k") is None


def _micro_scale():
    return ScaleSettings(
        name="micro",
        dataset_sizes={"cifar10": (40, 20), "gtsrb": (86, 43), "pneumonia": (30, 16)},
        epochs=2,
        batch_size=16,
        repeats=1,
        seed=9,
    )


class TestRunnerDiskCache:
    def test_second_runner_reuses_cells(self, tmp_path):
        cache_dir = str(tmp_path / "cells")
        first = ExperimentRunner(_micro_scale(), cache_dir=cache_dir)
        result_a = first.run("pneumonia", "convnet", "baseline", mislabelling(0.3))
        assert len(first.cell_cache) > 0

        second = ExperimentRunner(_micro_scale(), cache_dir=cache_dir)
        result_b = second.run("pneumonia", "convnet", "baseline", mislabelling(0.3))
        assert result_b.accuracy_delta.mean == result_a.accuracy_delta.mean
        assert result_b.mean_training_s == result_a.mean_training_s  # cached cost

    def test_different_scale_does_not_collide(self, tmp_path):
        cache_dir = str(tmp_path / "cells")
        first = ExperimentRunner(_micro_scale(), cache_dir=cache_dir)
        first.run("pneumonia", "convnet", "baseline", mislabelling(0.3))
        entries = len(first.cell_cache)

        other_scale = ScaleSettings(
            name="micro2",
            dataset_sizes={"cifar10": (40, 20), "gtsrb": (86, 43), "pneumonia": (30, 16)},
            epochs=3,  # different budget -> different fingerprint
            batch_size=16,
            repeats=1,
            seed=9,
        )
        second = ExperimentRunner(other_scale, cache_dir=cache_dir)
        second.run("pneumonia", "convnet", "baseline", mislabelling(0.3))
        assert len(second.cell_cache) > entries  # new cells were written

    def test_no_cache_dir_means_no_disk_io(self):
        runner = ExperimentRunner(_micro_scale())
        assert runner.cell_cache is None
        result = runner.run("pneumonia", "convnet", "baseline", mislabelling(0.1))
        assert 0.0 <= result.accuracy_delta.mean <= 1.0
