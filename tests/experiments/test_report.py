"""Unit tests for report renderers (no training required)."""

from __future__ import annotations

import numpy as np

from repro.experiments.report import (
    render_combined_verdicts,
    render_motivating_example,
    render_overheads,
    render_panel,
    render_panels,
    render_table4,
)
from repro.experiments.study import (
    ADPanel,
    ADSeries,
    CombinedFaultVerdict,
    MotivatingExampleResult,
)
from repro.faults import FaultType
from repro.metrics import OverheadResult
from repro.metrics.stats import MeanWithCI


def _ci(mean: float, hw: float = 0.01, n: int = 3) -> MeanWithCI:
    return MeanWithCI(mean, hw, 0.95, n)


def _panel() -> ADPanel:
    panel = ADPanel(dataset="gtsrb", model="convnet", fault_type=FaultType.MISLABELLING)
    panel.series["baseline"] = ADSeries("baseline", [0.1, 0.5], [_ci(0.2), _ci(0.6)])
    panel.series["ensemble"] = ADSeries("ensemble", [0.1, 0.5], [_ci(0.1), _ci(0.3)])
    return panel


class TestRenderTable4:
    def test_marks_best_and_missing_cells(self):
        table = {
            ("convnet", "gtsrb", "baseline"): _ci(0.90),
            ("convnet", "gtsrb", "ensemble"): _ci(0.95),
            # label_smoothing cell intentionally missing
        }
        text = render_table4(
            table, ("convnet",), ("gtsrb",), ["baseline", "label_smoothing", "ensemble"]
        )
        assert "95%*" in text  # best cell starred
        assert "-" in text  # missing cell placeholder
        assert "Base" in text
        assert "Ens" in text

    def test_dataset_ids_match_paper(self):
        table = {("convnet", "cifar10", "baseline"): _ci(0.8)}
        text = render_table4(table, ("convnet",), ("cifar10",), ["baseline"])
        # Paper Table IV numbers datasets: CIFAR-10 (1), GTSRB (2), Pneumonia (3).
        assert "1" in text.splitlines()[2]


class TestRenderPanel:
    def test_contains_rates_and_abbreviations(self):
        text = render_panel(_panel())
        assert "10%" in text
        assert "50%" in text
        assert "Base" in text
        assert "Ens" in text
        assert "gtsrb, convnet, mislabelling" in text

    def test_render_panels_headline(self):
        text = render_panels({"a": _panel(), "b": _panel()}, "Fig X")
        assert text.startswith("=== Fig X ===")
        assert text.count("[gtsrb, convnet, mislabelling]") == 2


class TestWinnerAt:
    def test_winner_is_lowest_mean(self):
        assert _panel().winner_at(0.5) == "ensemble"


class TestRenderOverheads:
    def test_formats_multipliers(self):
        text = render_overheads(
            {
                "ensemble": OverheadResult("ensemble", 5.0, 5.2),
                "label_smoothing": OverheadResult("label_smoothing", 1.02, 1.0),
            }
        )
        assert "5.00x" in text
        assert "1.02x" in text


class TestRenderCombined:
    def test_similarity_wording(self):
        verdicts = [
            CombinedFaultVerdict("a+b", "a", _ci(0.3), _ci(0.31), True),
            CombinedFaultVerdict("c+d", "d", _ci(0.3), _ci(0.6), False),
        ]
        text = render_combined_verdicts(verdicts)
        assert "similar" in text
        assert "DIFFERENT" in text


class TestRenderMotivatingExample:
    def test_orders_by_ad(self):
        result = MotivatingExampleResult(
            golden_accuracy=_ci(0.9),
            baseline_faulty_accuracy=_ci(0.55),
            baseline_ad=_ci(0.4),
            technique_ads={"ensemble": _ci(0.05), "robust_loss": _ci(0.15)},
        )
        text = render_motivating_example(result)
        assert text.index("Ens") < text.index("RL")
        assert "90.0%" in text
