"""Tests for the schedule/execute/collect pipeline (serial + parallel)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExecutionSettings,
    ExperimentRunner,
    Executor,
    ParallelExecutor,
    ScaleSettings,
    SerialExecutor,
    StudyCheckpoint,
    WorkUnit,
    full_study,
    plan_study,
    result_to_dict,
    results_equivalent,
    run_resilient_study,
    run_study_plan,
)
from repro.faults import FaultType

from .test_resilience import GRID, StubRunner

MICRO = ScaleSettings(
    name="micro",
    dataset_sizes={"pneumonia": (30, 16)},
    epochs=2,
    batch_size=16,
    repeats=1,
    seed=5,
)

#: Two real-training cells (pneumonia/convnet/baseline × 2 fault types).
MICRO_GRID = dict(
    models=("convnet",),
    datasets=("pneumonia",),
    fault_types=(FaultType.MISLABELLING, FaultType.REMOVAL),
    rates=(0.3,),
    techniques=["baseline"],
)


def stub_plan():
    return plan_study(scale=StubRunner().scale, **GRID)


# ----------------------------------------------------------------------
# The collector, driven through executors (stub runners: no training)
# ----------------------------------------------------------------------

class TestRunStudyPlan:
    def test_serial_executor_covers_plan_in_order(self):
        runner = StubRunner()
        plan = stub_plan()
        report = run_study_plan(plan, executor=SerialExecutor(runner=runner))
        assert len(report.results) == len(plan) == 4
        assert report.executed == 4 and report.replayed == 0
        assert [r.config.fault_label for r in report.results] == [
            u.fault_label for u in plan
        ]
        assert [c[:4] for c in runner.calls] == [
            (u.dataset, u.model, u.technique, u.fault_label) for u in plan
        ]

    def test_default_executor_is_serial(self):
        assert isinstance(SerialExecutor(), Executor)
        assert isinstance(ParallelExecutor(jobs=2), Executor)

    def test_checkpoint_skip_completed_middleware(self, tmp_path):
        path = tmp_path / "study.jsonl"
        plan = stub_plan()
        first = run_study_plan(plan, executor=SerialExecutor(runner=StubRunner()),
                               checkpoint=path)
        assert first.executed == 4

        rerun_runner = StubRunner()
        second = run_study_plan(plan, executor=SerialExecutor(runner=rerun_runner),
                                checkpoint=path)
        assert second.replayed == 4 and second.executed == 0
        assert rerun_runner.calls == []  # zero retrains on resume
        assert results_equivalent(first.results, second.results)

    def test_failures_recorded_not_raised(self, tmp_path):
        plan = stub_plan()
        bad = ("pneumonia", "convnet", "baseline", "mislabelling@30%")
        runner = StubRunner(fail_plan={bad: [ValueError("boom"), ValueError("boom")]})
        failures = []
        report = run_study_plan(
            plan, executor=SerialExecutor(runner=runner),
            checkpoint=tmp_path / "study.jsonl", on_failure=failures.append,
        )
        assert len(report.results) == 3 and len(report.failures) == 1
        assert failures == report.failures
        assert report.failures[0].fault_label == "mislabelling@30%"

    def test_progress_fires_for_replayed_and_executed(self, tmp_path):
        path = tmp_path / "study.jsonl"
        plan = stub_plan()
        run_study_plan(plan, executor=SerialExecutor(runner=StubRunner()), checkpoint=path)
        seen = []
        run_study_plan(plan, executor=SerialExecutor(runner=StubRunner()),
                       checkpoint=path, progress=seen.append)
        assert len(seen) == 4

    def test_empty_plan(self):
        report = run_study_plan([], executor=SerialExecutor(runner=StubRunner()))
        assert report.results == [] and report.ok


class TestParallelExecutorValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            ParallelExecutor(jobs=0)

    def test_map_on_empty_units_yields_nothing(self):
        assert list(ParallelExecutor(jobs=2).map([], ExecutionSettings())) == []


# ----------------------------------------------------------------------
# Serial vs parallel equivalence on real (micro-scale) training
# ----------------------------------------------------------------------

class TestSerialParallelEquivalence:
    @pytest.fixture(scope="class")
    def serial_results(self):
        return full_study(ExperimentRunner(MICRO), **MICRO_GRID)

    def test_parallel_results_identical_to_serial(self, serial_results, tmp_path):
        parallel = full_study(
            ExperimentRunner(MICRO),
            executor=ParallelExecutor(jobs=2),
            checkpoint=tmp_path / "parallel.jsonl",
            **MICRO_GRID,
        )
        assert results_equivalent(serial_results, parallel)
        # Identity is bitwise on everything but wall-clock: spell one out.
        assert [r.accuracy_delta.mean for r in parallel] == [
            r.accuracy_delta.mean for r in serial_results
        ]

    def test_jobs_shorthand_matches_executor_param(self, serial_results):
        parallel = full_study(ExperimentRunner(MICRO), jobs=2, **MICRO_GRID)
        assert results_equivalent(serial_results, parallel)

    def test_checkpoint_contents_match_serial_run(self, serial_results, tmp_path):
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        run_resilient_study(ExperimentRunner(MICRO), checkpoint=serial_path, **MICRO_GRID)
        run_resilient_study(
            ExperimentRunner(MICRO), checkpoint=parallel_path,
            executor=ParallelExecutor(jobs=2), **MICRO_GRID,
        )
        serial_ckpt = StudyCheckpoint(serial_path)
        parallel_ckpt = StudyCheckpoint(parallel_path)
        assert set(serial_ckpt.completed) == set(parallel_ckpt.completed)
        for key, result in serial_ckpt.completed.items():
            assert result_to_dict(result, include_costs=False) == result_to_dict(
                parallel_ckpt.completed[key], include_costs=False
            )

    def test_parallel_resume_retrains_nothing(self, tmp_path):
        path = tmp_path / "study.jsonl"
        first = run_resilient_study(
            ExperimentRunner(MICRO), checkpoint=path,
            executor=ParallelExecutor(jobs=2), **MICRO_GRID,
        )
        assert first.executed == 2 and first.ok
        resumed = run_resilient_study(
            ExperimentRunner(MICRO), checkpoint=path,
            executor=ParallelExecutor(jobs=2), **MICRO_GRID,
        )
        assert resumed.replayed == 2 and resumed.executed == 0
        assert results_equivalent(first.results, resumed.results)

    def test_worker_cells_share_disk_cache_with_serial(self, serial_results, tmp_path):
        # A parallel sweep writing a disk cache must produce entries the
        # serial runner replays verbatim (same keys, same payloads).
        cache_dir = str(tmp_path / "cells")
        full_study(
            ExperimentRunner(MICRO, cache_dir=cache_dir),
            executor=ParallelExecutor(jobs=2),
            **MICRO_GRID,
        )
        replayed = full_study(ExperimentRunner(MICRO, cache_dir=cache_dir), **MICRO_GRID)
        assert results_equivalent(serial_results, replayed)
