"""Regression: study results must be invariant under the kernel swap.

The archive comparator (:func:`results_equivalent`) uses exact float
equality, so this is the strongest statement the repo can make about the
perf pass: training an entire (micro) study grid with the vectorized
``fast`` kernels and with the composed ``reference`` kernels produces
bit-for-bit identical accuracies, losses, and histories.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentRunner, ScaleSettings, full_study
from repro.experiments.persistence import results_equivalent
from repro.faults import FaultType
from repro.nn import use_kernel_mode


def _micro_scale() -> ScaleSettings:
    return ScaleSettings(
        name="micro",
        dataset_sizes={"cifar10": (40, 20), "gtsrb": (86, 43), "pneumonia": (30, 16)},
        epochs=2,
        batch_size=16,
        repeats=1,
        seed=9,
    )


def _run_study(mode: str):
    # A fresh runner per mode: no shared in-memory or disk cache, so both
    # grids genuinely train under their kernel mode.
    with use_kernel_mode(mode):
        return full_study(
            ExperimentRunner(_micro_scale()),
            models=("convnet",),
            datasets=("pneumonia",),
            fault_types=(FaultType.MISLABELLING,),
            rates=(0.3,),
            techniques=["baseline", "label_smoothing"],
        )


@pytest.fixture(scope="module")
def fast_results():
    return _run_study("fast")


@pytest.fixture(scope="module")
def reference_results():
    return _run_study("reference")


@pytest.mark.slow
def test_fast_and_reference_kernels_yield_identical_results(fast_results, reference_results):
    assert len(fast_results) == 2
    assert results_equivalent(fast_results, reference_results)
    # Spot-check the comparison has teeth: accuracies are real numbers.
    assert all(0.0 <= r.faulty_accuracy.mean <= 1.0 for r in fast_results)


@pytest.mark.slow
def test_swap_invariance_holds_per_repetition(fast_results, reference_results):
    """Every repetition's metrics (not just the aggregates) must match, so
    a study resumed under the other kernel mode continues the same numbers."""
    for fast, ref in zip(fast_results, reference_results):
        assert fast.repetitions == ref.repetitions
