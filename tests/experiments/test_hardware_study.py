"""Cross-axis hardware-fault study: planning, rendering, payload shape.

The expensive end-to-end paths (training + injection campaigns) are covered
by ``tests/faults/test_hardware_campaign.py``; here we pin the cheap but
contract-critical surface: grid planning is validated and deterministic, the
table renders, and the benchmark payload has the shape CI consumes.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ScaleSettings
from repro.experiments.hardware_study import (
    hardware_campaign_payload,
    plan_hardware_study,
    render_hardware_table,
)
from repro.faults.hardware import HardwareCampaignResult

SCALE = ScaleSettings(
    name="hw-study-test",
    dataset_sizes={"pneumonia": (48, 24), "gtsrb": (48, 24)},
    image_size=8,
    epochs=2,
    batch_size=16,
    repeats=1,
)


class TestPlan:
    def test_grid_is_full_cross_product(self):
        units = plan_hardware_study(
            models=("convnet",),
            datasets=("pneumonia", "gtsrb"),
            techniques=("baseline", "label_smoothing"),
            data_faults=("none", "mislabelling@30%"),
            hw_types=("bit_flip", "stuck_at_1"),
            targets=("activation", "weight"),
            hw_rates=(1e-4, 1e-3),
            scale=SCALE,
        )
        assert len(units) == 2 * 2 * 2 * 2 * 2 * 2
        assert len({u.key for u in units}) == len(units)

    def test_plan_order_is_deterministic(self):
        kwargs = dict(
            datasets=("pneumonia", "gtsrb"),
            techniques=("baseline", "label_smoothing"),
            hw_rates=(1e-4, 1e-3),
            scale=SCALE,
        )
        first = [u.key for u in plan_hardware_study(**kwargs)]
        second = [u.key for u in plan_hardware_study(**kwargs)]
        assert first == second
        # Outermost axis is the dataset; rate is the innermost.
        assert first[0].startswith("hw|pneumonia|")
        assert "0.0001:" in first[0] and "0.001:" in first[1]

    def test_extension_technique_and_model_accepted(self):
        units = plan_hardware_study(
            techniques=("fault_aware",), data_faults=("none",), scale=SCALE
        )
        assert all(u.technique == "fault_aware" for u in units)

    def test_invalid_axes_fail_fast(self):
        with pytest.raises(KeyError, match="unknown model"):
            plan_hardware_study(models=("resnet152",), scale=SCALE)
        with pytest.raises(KeyError):
            plan_hardware_study(techniques=("prayer",), scale=SCALE)
        with pytest.raises(ValueError):
            plan_hardware_study(data_faults=("mislabelling@lots",), scale=SCALE)
        with pytest.raises(ValueError):
            plan_hardware_study(hw_types=("gamma_ray",), scale=SCALE)
        with pytest.raises(ValueError):
            plan_hardware_study(targets=("bus",), scale=SCALE)


def fake_result(key: str = "hw|k", sdc: float = 0.1) -> HardwareCampaignResult:
    return HardwareCampaignResult(
        key=key,
        dataset="pneumonia",
        model="convnet",
        technique="baseline",
        data_fault="none",
        spec_label="bit_flip@0.001:activation",
        clean_accuracy=0.9,
        trials=[
            {"accuracy": 0.85, "sdc_rate": sdc, "faults": 12},
            {"accuracy": 0.80, "sdc_rate": sdc + 0.05, "faults": 9},
        ],
        training_s=1.0,
    )


class TestRendering:
    def test_table_has_header_and_rows(self):
        table = render_hardware_table([fake_result("hw|a"), fake_result("hw|b")])
        lines = table.splitlines()
        assert "hw fault" in lines[0] and "sdc" in lines[0]
        assert lines[1].startswith("---")
        assert len(lines) == 4
        assert "bit_flip@0.001:activation" in lines[2]
        assert "pneumonia/convnet/baseline/none" in lines[2]

    def test_payload_shape(self):
        payload = hardware_campaign_payload(
            [fake_result()], scale_name="hw-study-test"
        )
        assert payload["benchmark"] == "hardware_faults"
        assert payload["scale"] == "hw-study-test"
        assert payload["units"] == 1
        summary = payload["summary"][0]
        assert set(summary) == {
            "key", "clean_accuracy", "faulty_accuracy", "sdc_rate", "accuracy_drop"
        }
        round_trip = HardwareCampaignResult.from_dict(payload["results"][0])
        assert round_trip.key == fake_result().key
