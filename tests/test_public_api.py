"""Sanity tests for the public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro

SUBPACKAGES = [
    "nn", "data", "faults", "models", "mitigation", "metrics", "experiments",
    "survey", "telemetry", "serve",
]


def test_version_string():
    assert repro.__version__.count(".") == 2


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackages_importable(name):
    module = importlib.import_module(f"repro.{name}")
    assert module is getattr(repro, name)


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_exports_resolve(name):
    """Every name in __all__ must actually exist (no stale exports)."""
    module = importlib.import_module(f"repro.{name}")
    assert hasattr(module, "__all__")
    for export in module.__all__:
        assert hasattr(module, export), f"repro.{name}.__all__ lists missing {export!r}"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_exports_unique(name):
    module = importlib.import_module(f"repro.{name}")
    assert len(module.__all__) == len(set(module.__all__))


def test_public_classes_have_docstrings():
    """Every public class and function in the top subpackages is documented."""
    undocumented = []
    for name in SUBPACKAGES:
        module = importlib.import_module(f"repro.{name}")
        for export in module.__all__:
            obj = getattr(module, export)
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(f"repro.{name}.{export}")
    assert not undocumented, f"undocumented public callables: {undocumented}"
