"""Behavioural tests for each of the five TDFM techniques."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticConfig, make_pneumonia_like
from repro.faults import inject, mislabelling
from repro.mitigation import (
    EnsembleFitted,
    EnsembleTechnique,
    LabelCorrector,
    LabelSmoothingTechnique,
    MetaLabelCorrectionTechnique,
    RobustLossTechnique,
    SelfDistillationTechnique,
    TrainingBudget,
)
from repro.mitigation.ensemble import PAPER_ENSEMBLE_MEMBERS


class TestLabelSmoothing:
    def test_uniform_mode_fits(self, tiny_data, tiny_budget):
        train, test = tiny_data
        fitted = LabelSmoothingTechnique(alpha=0.2, mode="uniform").fit(
            train, "convnet", tiny_budget, np.random.default_rng(0)
        )
        predictions = fitted.predict(test.images)
        assert predictions.shape == (len(test),)

    def test_relaxation_mode_fits(self, tiny_data, tiny_budget):
        train, test = tiny_data
        fitted = LabelSmoothingTechnique(alpha=0.1, mode="relaxation").fit(
            train, "convnet", tiny_budget, np.random.default_rng(0)
        )
        assert fitted.predict(test.images).shape == (len(test),)

    def test_validation(self):
        with pytest.raises(ValueError):
            LabelSmoothingTechnique(mode="other")
        with pytest.raises(ValueError):
            LabelSmoothingTechnique(alpha=0.0)

    def test_repr_shows_config(self):
        assert "uniform" in repr(LabelSmoothingTechnique())


class TestRobustLoss:
    def test_fits_and_predicts(self, tiny_data, tiny_budget):
        train, test = tiny_data
        fitted = RobustLossTechnique().fit(train, "convnet", tiny_budget, np.random.default_rng(0))
        assert fitted.predict(test.images).shape == (len(test),)

    def test_auto_hyperparameters_by_class_count(self, tiny_data, tiny_budget):
        # Indirectly check the auto rule via the internal threshold.
        technique = RobustLossTechnique()
        assert technique.alpha is None
        assert RobustLossTechnique.MANY_CLASSES == 20

    def test_explicit_hyperparameters(self, tiny_data, tiny_budget):
        train, test = tiny_data
        technique = RobustLossTechnique(alpha=2.0, beta=0.5, active="nfl", passive="mae")
        fitted = technique.fit(train, "convnet", tiny_budget, np.random.default_rng(0))
        assert fitted.predict(test.images).shape == (len(test),)

    def test_validation(self):
        with pytest.raises(ValueError):
            RobustLossTechnique(active="ce")
        with pytest.raises(ValueError):
            RobustLossTechnique(passive="ce")


class TestSelfDistillation:
    def test_fits_and_predicts(self, tiny_data, tiny_budget):
        train, test = tiny_data
        fitted = SelfDistillationTechnique().fit(
            train, "convnet", tiny_budget, np.random.default_rng(0)
        )
        assert fitted.predict(test.images).shape == (len(test),)

    def test_training_cost_includes_teacher_and_student(self, tiny_data, tiny_budget):
        train, _ = tiny_data
        from repro.mitigation import BaselineTechnique

        baseline = BaselineTechnique().fit(train, "convnet", tiny_budget, np.random.default_rng(0))
        kd = SelfDistillationTechnique().fit(train, "convnet", tiny_budget, np.random.default_rng(0))
        # Teacher + student must cost more than a single baseline training.
        assert kd.cost.training_s > baseline.cost.training_s

    def test_validation(self):
        with pytest.raises(ValueError):
            SelfDistillationTechnique(alpha=-0.1)
        with pytest.raises(ValueError):
            SelfDistillationTechnique(temperature=0)
        with pytest.raises(ValueError):
            SelfDistillationTechnique(student_epoch_factor=0)


class TestMetaLabelCorrection:
    def test_fits_and_exposes_corrector(self, tiny_data, tiny_budget):
        train, test = tiny_data
        fitted = MetaLabelCorrectionTechnique().fit(
            train, "convnet", tiny_budget, np.random.default_rng(0)
        )
        assert fitted.predict(test.images).shape == (len(test),)
        assert isinstance(fitted.corrector, LabelCorrector)

    def test_uses_harness_clean_indices(self, tiny_budget):
        train, test = make_pneumonia_like(SyntheticConfig(train_size=48, test_size=12, seed=2))
        faulty, report = inject(
            train, mislabelling(0.4), seed=3, protected_indices=np.arange(0, 10)
        )
        faulty.metadata["clean_indices"] = report.protected_indices_after
        fitted = MetaLabelCorrectionTechnique().fit(
            faulty, "convnet", tiny_budget, np.random.default_rng(0)
        )
        assert fitted.predict(test.images).shape == (len(test),)

    def test_rejects_bad_clean_indices(self, tiny_data, tiny_budget):
        train, _ = tiny_data
        bad = train.copy()
        bad.metadata["clean_indices"] = np.array([10_000])
        with pytest.raises(ValueError, match="out of range"):
            MetaLabelCorrectionTechnique().fit(bad, "convnet", tiny_budget, np.random.default_rng(0))

    def test_rejects_empty_clean_indices(self, tiny_data, tiny_budget):
        train, _ = tiny_data
        bad = train.copy()
        bad.metadata["clean_indices"] = np.array([], dtype=np.int64)
        with pytest.raises(ValueError, match="empty"):
            MetaLabelCorrectionTechnique().fit(bad, "convnet", tiny_budget, np.random.default_rng(0))

    def test_corrector_learns_to_keep_confident_labels(self, rng):
        # A corrector trained on (probs, observed) pairs should map a clean
        # confident example back to its own label.
        corrector = LabelCorrector(num_classes=3, hidden=16, rng=rng)
        probs = np.array([[0.9, 0.05, 0.05]], dtype=np.float32)
        observed = np.array([[1.0, 0.0, 0.0]], dtype=np.float32)
        corrected = corrector.correct(probs, observed)
        assert corrected.shape == (1, 3)
        np.testing.assert_allclose(corrected.sum(axis=1), [1.0], rtol=1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            MetaLabelCorrectionTechnique(clean_fraction=0.0)
        with pytest.raises(ValueError):
            MetaLabelCorrectionTechnique(warmup_fraction=1.0)
        with pytest.raises(ValueError):
            MetaLabelCorrectionTechnique(simulated_flip_rate=0.0)


class TestEnsemble:
    def test_paper_members(self):
        assert PAPER_ENSEMBLE_MEMBERS == ("convnet", "mobilenet", "resnet18", "vgg11", "vgg16")

    def test_three_member_ensemble_fits(self, tiny_data, tiny_budget):
        train, test = tiny_data
        technique = EnsembleTechnique(members=("convnet", "deconvnet", "vgg11"))
        fitted = technique.fit(train, "ignored", tiny_budget, np.random.default_rng(0))
        assert isinstance(fitted, EnsembleFitted)
        assert len(fitted.members) == 3
        assert fitted.predict(test.images).shape == (len(test),)

    def test_training_cost_sums_members(self, tiny_data, tiny_budget):
        train, _ = tiny_data
        technique = EnsembleTechnique(members=("convnet", "deconvnet", "vgg11"))
        fitted = technique.fit(train, "ignored", tiny_budget, np.random.default_rng(0))
        member_total = sum(m.cost.training_s for m in fitted.members)
        assert fitted.cost.training_s == pytest.approx(member_total)

    def test_rejects_even_member_count(self):
        with pytest.raises(ValueError, match="odd"):
            EnsembleTechnique(members=("convnet", "vgg11"))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EnsembleTechnique(members=())

    def test_majority_vote_overrules_minority(self, tiny_data, tiny_budget):
        # With an ensemble where members agree, the vote must match members.
        train, test = tiny_data
        technique = EnsembleTechnique(members=("convnet", "convnet", "convnet"))
        fitted = technique.fit(train, "ignored", tiny_budget, np.random.default_rng(0))
        votes = np.stack([m.predict(test.images) for m in fitted.members])
        ensemble_pred = fitted.predict(test.images)
        for i in range(len(test)):
            counts = np.bincount(votes[:, i], minlength=train.num_classes)
            assert counts[ensemble_pred[i]] == counts.max()

    def test_agreement_in_unit_range(self, tiny_data, tiny_budget):
        train, test = tiny_data
        technique = EnsembleTechnique(members=("convnet", "deconvnet", "vgg11"))
        fitted = technique.fit(train, "ignored", tiny_budget, np.random.default_rng(0))
        agreement = fitted.agreement(test.images)
        assert agreement.min() >= 1 / 3 - 1e-9
        assert agreement.max() <= 1.0 + 1e-9
