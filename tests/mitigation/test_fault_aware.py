"""Fault-aware training: registry wiring, determinism, and robustness intent."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mitigation import (
    EXTENSION_TECHNIQUES,
    FaultAwareTrainingTechnique,
    SingleModelFitted,
    build_technique,
    technique_names,
)


class TestRegistry:
    def test_registered_as_extension(self):
        assert EXTENSION_TECHNIQUES["fault_aware"] is FaultAwareTrainingTechnique
        assert "fault_aware" in technique_names(include_extensions=True)
        assert "fault_aware" not in technique_names()  # not in the paper grid

    def test_buildable_from_name_and_kwargs(self):
        technique = build_technique("fault_aware", sigma=0.05, mode="activation")
        assert isinstance(technique, FaultAwareTrainingTechnique)
        assert technique.sigma == 0.05
        assert technique.mode == "activation"

    def test_abbreviation(self):
        assert FaultAwareTrainingTechnique.abbreviation == "FA"

    def test_picklable(self):
        import pickle

        technique = build_technique("fault_aware", mode="weight")
        clone = pickle.loads(pickle.dumps(technique))
        assert clone.mode == "weight"
        assert clone.sigma == technique.sigma

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            FaultAwareTrainingTechnique(mode="bus")
        with pytest.raises(ValueError, match="sigma"):
            FaultAwareTrainingTechnique(sigma=-0.1)


class TestFit:
    @pytest.mark.parametrize("mode", ["weight", "activation"])
    def test_fit_returns_single_model(self, tiny_data, tiny_budget, mode):
        train, test = tiny_data
        technique = FaultAwareTrainingTechnique(mode=mode)
        fitted = technique.fit(
            train, "convnet", tiny_budget, np.random.default_rng(0)
        )
        assert isinstance(fitted, SingleModelFitted)
        assert fitted.name == "fault_aware/convnet"
        labels = fitted.predict(test.images)
        assert labels.shape == test.labels.shape
        assert fitted.history is not None
        assert np.isfinite(fitted.history.epochs[-1].train_loss)

    def test_fit_is_deterministic(self, tiny_data, tiny_budget):
        train, _ = tiny_data
        technique = FaultAwareTrainingTechnique(mode="weight")
        first = technique.fit(train, "convnet", tiny_budget, np.random.default_rng(7))
        second = technique.fit(train, "convnet", tiny_budget, np.random.default_rng(7))
        for (name, a), (_, b) in zip(
            first.model.named_parameters(), second.model.named_parameters()
        ):
            np.testing.assert_array_equal(a.data, b.data, err_msg=name)

    def test_weight_noise_leaves_clean_weights(self, tiny_data, tiny_budget):
        """After fit the weights carry optimiser updates but no residual noise.

        sigma=0 must reduce to the plain baseline loop exactly: the noise hook
        adds and removes zeros, so the fit equals an unhooked fit seed-for-seed
        except for the extra RNG draw order — compare against sigma>0 instead:
        the two runs must differ (noise actually perturbs training).
        """
        train, _ = tiny_data
        quiet = FaultAwareTrainingTechnique(sigma=0.0, mode="weight").fit(
            train, "convnet", tiny_budget, np.random.default_rng(3)
        )
        noisy = FaultAwareTrainingTechnique(sigma=0.1, mode="weight").fit(
            train, "convnet", tiny_budget, np.random.default_rng(3)
        )
        same = all(
            np.array_equal(a.data, b.data)
            for (_, a), (_, b) in zip(
                quiet.model.named_parameters(), noisy.model.named_parameters()
            )
        )
        assert not same
        for _, param in noisy.model.named_parameters():
            assert np.isfinite(param.data).all()
