"""Behavioural tests for the co-teaching extension technique."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticConfig, make_sensor_like
from repro.faults import inject, mislabelling
from repro.metrics import accuracy
from repro.mitigation import (
    BaselineTechnique,
    CoTeachingFitted,
    CoTeachingTechnique,
    TrainingBudget,
    build_technique,
    technique_names,
)


class TestRegistration:
    def test_flagged_as_extension(self):
        assert "co_teaching" not in technique_names()
        assert "co_teaching" in technique_names(include_extensions=True)

    def test_buildable_by_name(self):
        technique = build_technique("co_teaching", forget_rate=0.2)
        assert isinstance(technique, CoTeachingTechnique)
        assert technique.forget_rate == 0.2

    def test_unknown_name_lists_extensions(self):
        with pytest.raises(KeyError, match="co_teaching"):
            build_technique("self_paced")


class TestValidation:
    def test_forget_rate_bounds(self):
        with pytest.raises(ValueError):
            CoTeachingTechnique(forget_rate=1.0)
        with pytest.raises(ValueError):
            CoTeachingTechnique(forget_rate=-0.1)

    def test_warmup_bounds(self):
        with pytest.raises(ValueError):
            CoTeachingTechnique(warmup_epochs=0)


class TestBehaviour:
    def test_fits_and_predicts(self, tiny_data, tiny_budget):
        train, test = tiny_data
        fitted = CoTeachingTechnique(forget_rate=0.2).fit(
            train, "convnet", tiny_budget, np.random.default_rng(0)
        )
        assert isinstance(fitted, CoTeachingFitted)
        predictions = fitted.predict(test.images)
        assert predictions.shape == (len(test),)
        assert fitted.cost.training_s > 0

    def test_two_distinct_networks(self, tiny_data, tiny_budget):
        train, _ = tiny_data
        fitted = CoTeachingTechnique().fit(
            train, "convnet", tiny_budget, np.random.default_rng(0)
        )
        params_a = fitted.model_a.parameters()[0].data
        params_b = fitted.model_b.parameters()[0].data
        assert not np.allclose(params_a, params_b)

    def test_probabilities_average_both_networks(self, tiny_data, tiny_budget):
        train, test = tiny_data
        fitted = CoTeachingTechnique().fit(
            train, "convnet", tiny_budget, np.random.default_rng(0)
        )
        from repro.nn.trainer import predict_proba

        expected = 0.5 * (
            predict_proba(fitted.model_a, test.images)
            + predict_proba(fitted.model_b, test.images)
        )
        np.testing.assert_allclose(fitted.predict_proba(test.images), expected, rtol=1e-5)

    def test_small_loss_selection_helps_under_heavy_noise(self):
        # On an easy tabular task with 40% mislabelling, co-teaching should
        # beat an unprotected baseline.
        train, test = make_sensor_like(SyntheticConfig(train_size=240, test_size=100, seed=3))
        faulty, _ = inject(train, mislabelling(0.4), seed=4)
        budget = TrainingBudget(epochs=24, batch_size=32)
        base = BaselineTechnique().fit(faulty, "mlp", budget, np.random.default_rng(1))
        cot = CoTeachingTechnique(forget_rate=0.2).fit(
            faulty, "mlp", budget, np.random.default_rng(1)
        )
        base_acc = accuracy(base.predict(test.images), test.labels)
        cot_acc = accuracy(cot.predict(test.images), test.labels)
        assert cot_acc > base_acc
