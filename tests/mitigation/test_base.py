"""Unit tests for the technique interface, budget, and fitted-model contracts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mitigation import (
    BaselineTechnique,
    SingleModelFitted,
    TrainingBudget,
    build_technique,
    technique_names,
    TECHNIQUE_ABBREVIATIONS,
)
from repro.nn import SGD, Adam


class TestTrainingBudget:
    def test_defaults_valid(self):
        budget = TrainingBudget()
        assert budget.epochs >= 1
        assert budget.optimizer in ("adam", "sgd")

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingBudget(epochs=0)
        with pytest.raises(ValueError):
            TrainingBudget(batch_size=0)
        with pytest.raises(ValueError):
            TrainingBudget(learning_rate=0.0)
        with pytest.raises(ValueError):
            TrainingBudget(optimizer="lion")

    def test_scaled_epochs_rounds_and_floors(self):
        budget = TrainingBudget(epochs=10)
        assert budget.scaled_epochs(0.5).epochs == 5
        assert budget.scaled_epochs(0.01).epochs == 1
        assert budget.scaled_epochs(1.0).epochs == 10

    def test_scaled_epochs_preserves_other_fields(self):
        budget = TrainingBudget(epochs=10, batch_size=64, learning_rate=0.01)
        scaled = budget.scaled_epochs(0.5)
        assert scaled.batch_size == 64
        assert scaled.learning_rate == 0.01

    def test_make_optimizer_adam(self):
        from repro.nn.module import Parameter

        params = [Parameter(np.zeros(2, dtype=np.float32))]
        assert isinstance(TrainingBudget(optimizer="adam").make_optimizer(params), Adam)
        assert isinstance(TrainingBudget(optimizer="sgd").make_optimizer(params), SGD)


class TestRegistry:
    def test_six_techniques_baseline_first(self):
        names = technique_names()
        assert names[0] == "baseline"
        assert set(names) == {
            "baseline",
            "label_smoothing",
            "label_correction",
            "robust_loss",
            "knowledge_distillation",
            "ensemble",
        }

    def test_exclude_baseline(self):
        assert "baseline" not in technique_names(include_baseline=False)
        assert len(technique_names(include_baseline=False)) == 5

    def test_paper_abbreviations(self):
        paper = {
            "baseline": "Base",
            "label_smoothing": "LS",
            "label_correction": "LC",
            "robust_loss": "RL",
            "knowledge_distillation": "KD",
            "ensemble": "Ens",
        }
        for name, abbreviation in paper.items():
            assert TECHNIQUE_ABBREVIATIONS[name] == abbreviation
        # Extensions get abbreviations too but never shadow the paper set.
        assert TECHNIQUE_ABBREVIATIONS["co_teaching"] == "CoT"

    def test_build_with_kwargs(self):
        technique = build_technique("label_smoothing", alpha=0.3)
        assert technique.alpha == 0.3

    def test_unknown_technique(self):
        with pytest.raises(KeyError, match="unknown technique"):
            build_technique("dropout")


class TestFittedModelContract:
    def test_predict_accumulates_inference_time(self, tiny_data, tiny_budget):
        train, test = tiny_data
        fitted = BaselineTechnique().fit(train, "convnet", tiny_budget, np.random.default_rng(0))
        assert isinstance(fitted, SingleModelFitted)
        assert fitted.cost.training_s > 0
        before = fitted.cost.inference_s
        fitted.predict(test.images)
        assert fitted.cost.inference_s > before

    def test_predict_proba_shape(self, tiny_data, tiny_budget):
        train, test = tiny_data
        fitted = BaselineTechnique().fit(train, "convnet", tiny_budget, np.random.default_rng(0))
        probs = fitted.predict_proba(test.images)
        assert probs.shape == (len(test), train.num_classes)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(len(test)), rtol=1e-4)

    def test_seeded_fit_is_reproducible(self, tiny_data, tiny_budget):
        train, test = tiny_data
        a = BaselineTechnique().fit(train, "convnet", tiny_budget, np.random.default_rng(5))
        b = BaselineTechnique().fit(train, "convnet", tiny_budget, np.random.default_rng(5))
        np.testing.assert_array_equal(a.predict(test.images), b.predict(test.images))

    def test_history_recorded(self, tiny_data, tiny_budget):
        train, _ = tiny_data
        fitted = BaselineTechnique().fit(train, "convnet", tiny_budget, np.random.default_rng(0))
        assert fitted.history is not None
        assert len(fitted.history.epochs) == tiny_budget.epochs
