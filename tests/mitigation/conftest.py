"""Shared fixtures for mitigation-technique tests: a tiny learnable dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticConfig, make_pneumonia_like
from repro.mitigation import TrainingBudget


@pytest.fixture(scope="session")
def tiny_data():
    """A small pneumonia-like (train, test) pair that trains in seconds."""
    return make_pneumonia_like(SyntheticConfig(train_size=48, test_size=24, seed=11))


@pytest.fixture
def tiny_budget():
    """A budget that keeps each technique's fit under a few seconds."""
    return TrainingBudget(epochs=4, batch_size=16, learning_rate=3e-3)
