"""Serialization round-trips across every registry architecture, plus the
error paths for damaged state files.

The serving registry loads trained models back from ``save_model`` archives,
so the round-trip guarantee must hold for all seven paper networks (and the
tabular MLP extension): save, load into a *differently initialised* clone,
and get bitwise-identical logits.  Damaged archives — missing, truncated,
corrupt, or from a foreign tool — must fail loudly with
:class:`~repro.nn.serialization.StateFileError`, never load garbage weights.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.registry import build_model, model_names
from repro.nn import StateFileError, Tensor, load_into, load_state, no_grad, save_model

NUM_CLASSES = 5
IMAGE_SHAPE = (3, 16, 16)


def _build(name: str, seed: int):
    if name == "mlp":
        return build_model(name, image_shape=(12,), num_classes=NUM_CLASSES, seed=seed)
    return build_model(name, image_shape=IMAGE_SHAPE, num_classes=NUM_CLASSES, seed=seed)


def _inputs(name: str) -> np.ndarray:
    rng = np.random.default_rng(99)
    shape = (4, 12) if name == "mlp" else (4, *IMAGE_SHAPE)
    return rng.standard_normal(shape).astype(np.float32)


@pytest.mark.parametrize("name", model_names(include_extensions=True))
def test_roundtrip_bitwise_logits(name, tmp_path):
    """save -> load into a fresh clone -> bitwise-identical logits."""
    original = _build(name, seed=1).eval()
    clone = _build(name, seed=2).eval()  # different init: the load must matter
    x = _inputs(name)
    with no_grad():
        before = clone(Tensor(x)).data.copy()
        reference = original(Tensor(x)).data.copy()

    path = tmp_path / f"{name}.npz"
    save_model(original, path)
    load_into(clone, path)
    with no_grad():
        after = clone(Tensor(x)).data
    assert not np.array_equal(before, reference)  # the clone really differed
    np.testing.assert_array_equal(after, reference)


@pytest.mark.parametrize("name", model_names(include_extensions=True))
def test_state_dict_keys_roundtrip(name, tmp_path):
    """The archive carries exactly the model's state-dict entries."""
    model = _build(name, seed=3)
    path = tmp_path / f"{name}.npz"
    save_model(model, path)
    loaded = load_state(path)
    state = model.state_dict()
    assert set(loaded) == set(state)
    for key, value in state.items():
        assert loaded[key].shape == value.shape
        assert loaded[key].dtype == value.dtype


def test_missing_file_raises_state_file_error(tmp_path):
    with pytest.raises(StateFileError, match="no such model state file"):
        load_state(tmp_path / "never_saved.npz")


def test_truncated_archive_raises_state_file_error(tmp_path):
    model = _build("convnet", seed=0)
    path = tmp_path / "model.npz"
    save_model(model, path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])  # cut the zip in half
    with pytest.raises(StateFileError, match="corrupt or unreadable"):
        load_state(path)


def test_garbage_bytes_raise_state_file_error(tmp_path):
    path = tmp_path / "garbage.npz"
    path.write_bytes(b"this is not a zip archive at all" * 10)
    with pytest.raises(StateFileError, match="corrupt or unreadable"):
        load_state(path)


def test_foreign_npz_raises_value_error(tmp_path):
    """A valid .npz that wasn't written by save_state is rejected."""
    path = tmp_path / "foreign.npz"
    np.savez(path, weights=np.zeros(3))
    with pytest.raises(ValueError, match="not a repro model archive"):
        load_state(path)


def test_state_file_error_is_a_value_error():
    """Callers catching the historical ValueError keep working."""
    assert issubclass(StateFileError, ValueError)


def test_wrong_architecture_fails_shape_check(tmp_path):
    """Loading one architecture's archive into another raises, not corrupts."""
    small = _build("convnet", seed=0)
    other = _build("vgg11", seed=0)
    path = tmp_path / "convnet.npz"
    save_model(small, path)
    with pytest.raises((ValueError, KeyError)):
        load_into(other, path)
