"""Equivalence tests for the vectorized kernel pass.

The ``fast`` kernels (window-view gathers, fused softmax-CE, workspace
buffers, direct pooling scatters) must be *bitwise* interchangeable with the
``reference`` composition — the study archive comparator
(:func:`repro.experiments.persistence.results_equivalent`) uses exact float
equality, so anything weaker would make kernel choice visible in results.
The ``legacy`` (seed) kernels use a different GEMM layout and only agree to
float tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, kernel_mode, set_kernel_mode, use_kernel_mode
from repro.nn.functional import (
    avg_pool2d,
    col2im,
    col2im_reference,
    conv2d,
    depthwise_conv2d,
    im2col,
    im2col_reference,
    log_softmax,
    max_pool2d,
    softmax_cross_entropy,
)

# (input shape, kernel kwargs) grids deliberately include stride 2, padding,
# non-square kernels, non-square images, and batch size 1.
CONV_CASES = [
    ((2, 3, 9, 9), (4, 3, 3, 3), dict(stride=1, padding=1)),
    ((2, 3, 9, 9), (4, 3, 3, 3), dict(stride=2, padding=1)),
    ((1, 2, 8, 7), (3, 2, 3, 2), dict(stride=2, padding=1)),  # non-square kernel
    ((1, 1, 5, 5), (2, 1, 1, 1), dict(stride=1, padding=0)),  # 1x1 kernel
    ((3, 2, 11, 11), (2, 2, 5, 5), dict(stride=3, padding=2)),
]
POOL_CASES = [
    ((2, 3, 8, 8), dict(kernel=2, stride=2)),  # disjoint (fast scatter path)
    ((1, 2, 8, 7), dict(kernel=3, stride=2)),  # overlapping windows
    ((2, 1, 9, 9), dict(kernel=3, stride=3)),
    ((1, 4, 7, 7), dict(kernel=2, stride=3)),  # gaps between windows
]


def _run(mode, op, arrays, **kwargs):
    with use_kernel_mode(mode):
        tensors = [
            Tensor(a.copy(), requires_grad=True) if a is not None else None for a in arrays
        ]
        out = op(*tensors, **kwargs)
        out.backward(np.ones_like(out.data))
        return out.data, [t.grad for t in tensors if t is not None]


class TestKernelModeControls:
    def test_default_mode_is_fast(self):
        assert kernel_mode() == "fast"

    def test_set_kernel_mode_returns_previous(self):
        prev = set_kernel_mode("reference")
        try:
            assert prev == "fast"
            assert kernel_mode() == "reference"
        finally:
            set_kernel_mode(prev)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="kernel mode"):
            set_kernel_mode("turbo")

    def test_context_manager_restores_mode(self):
        with use_kernel_mode("legacy"):
            assert kernel_mode() == "legacy"
        assert kernel_mode() == "fast"


class TestConvEquivalence:
    @pytest.mark.parametrize("x_shape,w_shape,kwargs", CONV_CASES)
    def test_fast_matches_reference_bitwise(self, x_shape, w_shape, kwargs):
        rng = np.random.default_rng(11)
        x = rng.normal(size=x_shape).astype(np.float32)
        w = rng.normal(size=w_shape).astype(np.float32)
        b = rng.normal(size=(w_shape[0],)).astype(np.float32)
        fast = _run("fast", conv2d, [x, w, b], **kwargs)
        ref = _run("reference", conv2d, [x, w, b], **kwargs)
        assert np.array_equal(fast[0], ref[0])
        for g_fast, g_ref in zip(fast[1], ref[1]):
            assert np.array_equal(g_fast, g_ref)

    @pytest.mark.parametrize("x_shape,w_shape,kwargs", CONV_CASES)
    def test_fast_matches_legacy_to_tolerance(self, x_shape, w_shape, kwargs):
        rng = np.random.default_rng(12)
        x = rng.normal(size=x_shape).astype(np.float32)
        w = rng.normal(size=w_shape).astype(np.float32)
        b = rng.normal(size=(w_shape[0],)).astype(np.float32)
        fast = _run("fast", conv2d, [x, w, b], **kwargs)
        legacy = _run("legacy", conv2d, [x, w, b], **kwargs)
        np.testing.assert_allclose(fast[0], legacy[0], rtol=1e-5, atol=1e-5)
        for g_fast, g_legacy in zip(fast[1], legacy[1]):
            np.testing.assert_allclose(g_fast, g_legacy, rtol=1e-4, atol=1e-5)

    def test_no_bias_conv_equivalent(self):
        rng = np.random.default_rng(13)
        x = rng.normal(size=(2, 2, 6, 6)).astype(np.float32)
        w = rng.normal(size=(3, 2, 3, 3)).astype(np.float32)
        fast = _run("fast", conv2d, [x, w, None], stride=1, padding=1)
        ref = _run("reference", conv2d, [x, w, None], stride=1, padding=1)
        assert np.array_equal(fast[0], ref[0])
        for g_fast, g_ref in zip(fast[1], ref[1]):
            assert np.array_equal(g_fast, g_ref)


class TestDepthwiseEquivalence:
    @pytest.mark.parametrize(
        "x_shape,kwargs",
        [
            ((2, 3, 9, 9), dict(stride=1, padding=1)),
            ((1, 4, 8, 7), dict(stride=2, padding=1)),
            ((2, 2, 7, 7), dict(stride=3, padding=0)),
        ],
    )
    def test_fast_matches_reference_bitwise(self, x_shape, kwargs):
        rng = np.random.default_rng(21)
        c = x_shape[1]
        x = rng.normal(size=x_shape).astype(np.float32)
        w = rng.normal(size=(c, 1, 3, 3)).astype(np.float32)
        b = rng.normal(size=(c,)).astype(np.float32)
        fast = _run("fast", depthwise_conv2d, [x, w, b], **kwargs)
        ref = _run("reference", depthwise_conv2d, [x, w, b], **kwargs)
        assert np.array_equal(fast[0], ref[0])
        for g_fast, g_ref in zip(fast[1], ref[1]):
            assert np.array_equal(g_fast, g_ref)


class TestPoolEquivalence:
    @pytest.mark.parametrize("x_shape,kwargs", POOL_CASES)
    @pytest.mark.parametrize("op", [max_pool2d, avg_pool2d])
    def test_fast_matches_reference_bitwise(self, op, x_shape, kwargs):
        rng = np.random.default_rng(31)
        x = rng.normal(size=x_shape).astype(np.float32)
        fast = _run("fast", op, [x], **kwargs)
        ref = _run("reference", op, [x], **kwargs)
        assert np.array_equal(fast[0], ref[0])
        assert np.array_equal(fast[1][0], ref[1][0])

    @pytest.mark.parametrize("x_shape,kwargs", POOL_CASES)
    def test_max_pool_matches_legacy_bitwise(self, x_shape, kwargs):
        # Max selection is layout-independent, so even the seed kernels
        # agree exactly for max pooling.
        rng = np.random.default_rng(32)
        x = rng.normal(size=x_shape).astype(np.float32)
        fast = _run("fast", max_pool2d, [x], **kwargs)
        legacy = _run("legacy", max_pool2d, [x], **kwargs)
        assert np.array_equal(fast[0], legacy[0])
        assert np.array_equal(fast[1][0], legacy[1][0])

    @pytest.mark.parametrize("x_shape,kwargs", POOL_CASES)
    def test_avg_pool_matches_legacy_to_tolerance(self, x_shape, kwargs):
        # The seed layout sums window elements in a different order, so the
        # window means can differ in the last ulp.
        rng = np.random.default_rng(33)
        x = rng.normal(size=x_shape).astype(np.float32)
        fast = _run("fast", avg_pool2d, [x], **kwargs)
        legacy = _run("legacy", avg_pool2d, [x], **kwargs)
        np.testing.assert_allclose(fast[0], legacy[0], rtol=1e-6, atol=1e-7)
        np.testing.assert_allclose(fast[1][0], legacy[1][0], rtol=1e-6, atol=1e-7)


class TestFusedLossEquivalence:
    def _composed(self, logits, targets, temperature):
        # The exact composition the fused op replaces (losses.py pre-fusion).
        return -(
            (log_softmax(logits, axis=1, temperature=temperature) * Tensor(targets))
            .sum(axis=1)
            .mean()
        )

    @pytest.mark.parametrize("temperature", [1.0, 2.0, 4.0])
    def test_fused_matches_composed_bitwise(self, temperature):
        rng = np.random.default_rng(41)
        logits_data = rng.normal(size=(8, 5)).astype(np.float32) * 3.0
        targets = np.eye(5, dtype=np.float32)[rng.integers(0, 5, 8)]

        logits_fused = Tensor(logits_data.copy(), requires_grad=True)
        fused = softmax_cross_entropy(logits_fused, targets, temperature=temperature)
        fused.backward()

        logits_composed = Tensor(logits_data.copy(), requires_grad=True)
        composed = self._composed(logits_composed, targets, temperature)
        composed.backward()

        assert np.array_equal(fused.data, composed.data)
        assert np.array_equal(logits_fused.grad, logits_composed.grad)

    def test_soft_targets(self):
        rng = np.random.default_rng(42)
        logits_data = rng.normal(size=(6, 4)).astype(np.float32)
        soft = rng.random((6, 4)).astype(np.float32)
        soft /= soft.sum(axis=1, keepdims=True)

        logits_fused = Tensor(logits_data.copy(), requires_grad=True)
        fused = softmax_cross_entropy(logits_fused, soft)
        fused.backward()

        logits_composed = Tensor(logits_data.copy(), requires_grad=True)
        composed = self._composed(logits_composed, soft, 1.0)
        composed.backward()

        assert np.array_equal(fused.data, composed.data)
        assert np.array_equal(logits_fused.grad, logits_composed.grad)

    def test_reference_mode_falls_back_to_composition(self):
        rng = np.random.default_rng(43)
        logits_data = rng.normal(size=(4, 3)).astype(np.float32)
        targets = np.eye(3, dtype=np.float32)[[0, 2, 1, 0]]
        with use_kernel_mode("fast"):
            fast_loss = float(softmax_cross_entropy(Tensor(logits_data), targets).data)
        with use_kernel_mode("reference"):
            ref_loss = float(softmax_cross_entropy(Tensor(logits_data), targets).data)
        assert fast_loss == ref_loss

    def test_shape_mismatch_rejected(self):
        logits = Tensor(np.zeros((4, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            softmax_cross_entropy(logits, np.zeros((4, 2), dtype=np.float32))


class TestPatchLayouts:
    def test_im2col_layout_maps_to_reference(self):
        rng = np.random.default_rng(51)
        x = rng.normal(size=(2, 3, 8, 7)).astype(np.float32)
        for stride, padding in [(1, 0), (1, 1), (2, 1), (3, 0)]:
            new = im2col(x, 3, 2, stride, padding)  # (N, C*KH*KW, OH*OW)
            old = im2col_reference(x, 3, 2, stride, padding)  # (N*OH*OW, C*KH*KW)
            np.testing.assert_array_equal(
                new.transpose(0, 2, 1).reshape(old.shape), old
            )

    def test_im2col_strided_gather_matches_window_view(self):
        # Fast mode uses sliding_window_view only for stride 1; the strided
        # loop gather must produce identical patches.
        rng = np.random.default_rng(52)
        x = rng.normal(size=(2, 2, 9, 9)).astype(np.float32)
        with use_kernel_mode("fast"):
            fast = im2col(x, 3, 3, 2, 1)
        with use_kernel_mode("reference"):
            ref = im2col(x, 3, 3, 2, 1)
        np.testing.assert_array_equal(fast, ref)

    def test_col2im_is_adjoint_of_im2col(self):
        # <im2col(x), c> == <x, col2im(c)> characterises the exact adjoint.
        rng = np.random.default_rng(53)
        x = rng.normal(size=(2, 2, 7, 6))
        unfolded = im2col(x, 3, 3, 2, 1)  # (2, 18, 4*3)
        cols = rng.normal(size=unfolded.shape)
        folded = col2im(cols, x.shape, 3, 3, 2, 1)
        assert np.isclose((unfolded * cols).sum(), (x * folded).sum())

    def test_col2im_matches_reference_layout(self):
        rng = np.random.default_rng(54)
        n, c, h, w = 2, 3, 8, 8
        kh = kw = 3
        stride, padding = 1, 1
        oh = ow = 8
        cols_new = rng.normal(size=(n, c * kh * kw, oh * ow)).astype(np.float32)
        cols_old = cols_new.transpose(0, 2, 1).reshape(n * oh * ow, c * kh * kw)
        folded_new = col2im(cols_new, (n, c, h, w), kh, kw, stride, padding)
        folded_old = col2im_reference(cols_old, (n, c, h, w), kh, kw, stride, padding)
        np.testing.assert_allclose(folded_new, folded_old, rtol=1e-6, atol=1e-6)


class TestModelLevelEquivalence:
    def test_one_training_step_is_bitwise_identical(self):
        from repro.models import ConvNet
        from repro.nn import SGD
        from repro.nn.losses import CrossEntropy

        def step(mode):
            rng = np.random.default_rng(7)
            x = rng.normal(size=(8, 3, 16, 16)).astype(np.float32)
            y = np.eye(4, dtype=np.float32)[rng.integers(0, 4, 8)]
            with use_kernel_mode(mode):
                model = ConvNet((3, 16, 16), 4, width=4, rng=np.random.default_rng(7))
                opt = SGD(model.parameters(), lr=0.05)
                loss = CrossEntropy()(model(Tensor(x)), y)
                model.zero_grad()
                loss.backward()
                opt.step()
                return float(loss.data), [p.data.copy() for p in model.parameters()]

        loss_fast, params_fast = step("fast")
        loss_ref, params_ref = step("reference")
        assert loss_fast == loss_ref
        for p_fast, p_ref in zip(params_fast, params_ref):
            assert np.array_equal(p_fast, p_ref)
