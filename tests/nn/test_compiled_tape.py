"""Compiled-tape equivalence and fallback tests.

The record → plan → execute pipeline (``repro.nn.compile``) promises that a
replayed :class:`CompiledStep` is *bitwise* identical to the define-by-run
step it was recorded from — same floats in every weight and gradient, not
merely close.  These tests pin that contract across every registered
architecture, the direct ``compile_tape`` API, and each of the automatic
eager-fallback paths (armed kernel tap, disabled grad mode, uncompilable
tape), plus the telemetry the trainer emits about its decisions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_model, model_names
from repro.nn import (
    SGD,
    CrossEntropy,
    Tensor,
    Trainer,
    use_kernel_mode,
)
from repro.nn.compile import compile_tape
from repro.nn.functional import kernel_tap_scope
from repro.nn.tape import Tape, tape_scope
from repro.nn.tensor import no_grad
from repro.telemetry import RecordingTelemetry, telemetry_scope
from repro.telemetry.summary import render_trace_summary, summarize_trace

NUM_CLASSES = 5
IMAGE_SHAPE = (3, 16, 16)
#: 12 examples in batches of 5 → per-epoch batches of 5, 5, 2: the ragged
#: tail is a second feed shape, so every fit exercises compile, replay, and
#: the dynamic-shape path at once.
N, BATCH, EPOCHS = 12, 5, 2
STEPS_PER_EPOCH = 3
FEED_SHAPES = 2  # (5, …) and (2, …)


def _data(name: str):
    rng = np.random.default_rng(7)
    feature_shape = (12,) if name == "mlp" else IMAGE_SHAPE
    x = rng.normal(size=(N, *feature_shape)).astype(np.float32)
    y = np.eye(NUM_CLASSES, dtype=np.float32)[rng.integers(0, NUM_CLASSES, N)]
    return feature_shape, x, y


def _fit(name: str, mode: str, loss=None, tap=None, validation=False):
    """Train ``name`` from a fixed seed under kernel ``mode``; returns (model, history)."""
    feature_shape, x, y = _data(name)
    with use_kernel_mode(mode):
        model = build_model(
            name, feature_shape, NUM_CLASSES, width=2, rng=np.random.default_rng(3)
        )
        trainer = Trainer(
            model,
            loss if loss is not None else CrossEntropy(),
            SGD(model.parameters(), lr=0.05),
            epochs=EPOCHS,
            batch_size=BATCH,
            rng=np.random.default_rng(11),
        )
        val = (x, y) if validation else None
        if tap is not None:
            with kernel_tap_scope(tap):
                history = trainer.fit(x, y, validation=val)
        else:
            history = trainer.fit(x, y, validation=val)
    return model, history


def _assert_bitwise_same(fast, compiled):
    fast_model, fast_hist = fast
    comp_model, comp_hist = compiled
    assert fast_hist.loss_curve() == comp_hist.loss_curve()
    assert [e.train_accuracy for e in fast_hist.epochs] == [
        e.train_accuracy for e in comp_hist.epochs
    ]
    fast_params = fast_model.parameters()
    comp_params = comp_model.parameters()
    assert len(fast_params) == len(comp_params)
    for pf, pc in zip(fast_params, comp_params):
        assert np.array_equal(pf.data, pc.data), "weights diverged"
        assert pf.grad is not None and pc.grad is not None
        assert np.array_equal(pf.grad, pc.grad), "last-step gradients diverged"


class TestBitwiseEquivalence:
    """Compiled training must equal fast-eager training float-for-float."""

    @pytest.mark.parametrize("name", model_names(include_extensions=True))
    def test_trainer_matches_eager(self, name):
        _assert_bitwise_same(_fit(name, "fast"), _fit(name, "compiled"))

    def test_validation_pass_unaffected(self):
        # Validation runs under no_grad between compiled epochs; metrics and
        # the weights that produced them must stay bitwise-equal.
        fast = _fit("convnet", "fast", validation=True)
        compiled = _fit("convnet", "compiled", validation=True)
        _assert_bitwise_same(fast, compiled)
        assert [e.val_loss for e in fast[1].epochs] == [
            e.val_loss for e in compiled[1].epochs
        ]
        assert [e.val_accuracy for e in fast[1].epochs] == [
            e.val_accuracy for e in compiled[1].epochs
        ]


class _TanhExpLoss(CrossEntropy):
    """CE plus a term through the migrated ``tanh``/``exp`` registry ops."""

    def __call__(self, logits, targets):
        return super().__call__(logits, targets) + (logits.tanh() * 0.1).exp().mean() * 0.01


class TestMigratedClosureOps:
    """``tanh`` and ``exp`` live in the op registry now: tapes that route the
    loss through them must compile (no per-shape fallback) and replay
    bitwise-equal to eager."""

    @pytest.mark.parametrize("name", ["mlp", "convnet"])
    def test_tanh_exp_tape_compiles_and_matches_eager(self, name):
        fast = _fit(name, "fast", loss=_TanhExpLoss())
        tel = RecordingTelemetry()
        with telemetry_scope(tel):
            compiled = _fit(name, "compiled", loss=_TanhExpLoss())
        _assert_bitwise_same(fast, compiled)

        assert not [e for e in tel.events if e.get("name") == "tape_compile_fallback"]
        (fit_event,) = [e for e in tel.events if e.get("name") == "compiled_fit"]
        assert fit_event["compiles"] == FEED_SHAPES
        assert fit_event["eager_steps"] == FEED_SHAPES  # the recording steps only

    def test_tanh_exp_gradients_match_closure_formulas(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 3)).astype(np.float32)
        g = rng.normal(size=(4, 3)).astype(np.float32)

        t = Tensor(x, requires_grad=True)
        out = t.tanh()
        out.backward(g)
        assert np.array_equal(out.data, np.tanh(x))
        assert np.array_equal(t.grad, g * (1.0 - np.tanh(x) ** 2))

        t = Tensor(x, requires_grad=True)
        out = t.exp()
        out.backward(g)
        assert np.array_equal(out.data, np.exp(x))
        assert np.array_equal(t.grad, g * np.exp(x))


class TestCompileApi:
    """Direct record → compile → replay, without the Trainer wrapper."""

    def _make(self):
        model = build_model(
            "convnet", IMAGE_SHAPE, NUM_CLASSES, width=2, rng=np.random.default_rng(3)
        )
        model.train()
        return model, SGD(model.parameters(), lr=0.05), CrossEntropy()

    def test_replay_loop_matches_eager_loop(self):
        _, x, y = _data("convnet")
        xb, yb = x[:BATCH], y[:BATCH]
        with use_kernel_mode("compiled"):
            eager_model, eager_opt, eager_loss = self._make()
            for _ in range(4):
                logits = eager_model(Tensor(xb))
                loss = eager_loss(logits, yb)
                eager_opt.zero_grad()
                loss.backward()
                eager_opt.step()

            comp_model, comp_opt, comp_loss = self._make()
            tape = Tape()
            with tape_scope(tape):
                logits = comp_model(Tensor(xb))
                loss = comp_loss(logits, yb)
                comp_opt.zero_grad()
                loss.backward()
                comp_opt.step()
            step = compile_tape(tape, loss, logits, (xb, yb))
            for _ in range(3):
                loss_arr, logits_arr = step.forward((xb, yb))
                comp_opt.zero_grad()
                step.backward()
                comp_opt.step()

        assert logits_arr.shape == (BATCH, NUM_CLASSES)
        assert np.isfinite(float(loss_arr))
        assert step.steps_replayed == 0  # only Trainer increments the counter
        for pe, pc in zip(eager_model.parameters(), comp_model.parameters()):
            assert np.array_equal(pe.data, pc.data)
            assert np.array_equal(pe.grad, pc.grad)

    def test_feed_shape_mismatch_raises(self):
        _, x, y = _data("convnet")
        xb, yb = x[:BATCH], y[:BATCH]
        with use_kernel_mode("compiled"):
            model, opt, loss_fn = self._make()
            tape = Tape()
            with tape_scope(tape):
                logits = model(Tensor(xb))
                loss = loss_fn(logits, yb)
                opt.zero_grad()
                loss.backward()
                opt.step()
            step = compile_tape(tape, loss, logits, (xb, yb))
            with pytest.raises(ValueError, match="feed shape"):
                step.forward((x[:2], y[:2]))


class _LegacyClosureLoss(CrossEntropy):
    """CE plus a term routed through a legacy closure op (``Tensor.sigmoid``).

    ``compile_tape`` refuses tapes whose loss depends on closure-backward
    ops, so every step of a fit with this loss must fall back to eager.
    """

    def __call__(self, logits, targets):
        return super().__call__(logits, targets) + logits.sigmoid().mean() * 0.01


class TestEagerFallbacks:
    def test_armed_kernel_tap_forces_eager_and_stays_bitwise(self):
        # The tap perturbs conv/pool outputs in place — exactly what the
        # hardware-fault injector does — so a static replay would skip it.
        # Both modes must route every step through the tap identically.
        def tap(site, out):
            out += np.float32(1e-3)

        fast = _fit("convnet", "fast", tap=tap)
        tel = RecordingTelemetry()
        with telemetry_scope(tel):
            compiled = _fit("convnet", "compiled", tap=tap)
        _assert_bitwise_same(fast, compiled)

        fallbacks = [e for e in tel.events if e.get("name") == "tape_replay_fallback"]
        assert len(fallbacks) == 1  # emitted once per fit, not per step
        assert fallbacks[0]["reason"] == "kernel tap armed"
        (fit_event,) = [e for e in tel.events if e.get("name") == "compiled_fit"]
        assert fit_event["tap_fallback_steps"] == EPOCHS * STEPS_PER_EPOCH
        assert fit_event["compiled_steps"] == 0
        assert fit_event["compiles"] == 0

    def test_uncompilable_tape_falls_back_per_shape(self):
        fast = _fit("convnet", "fast", loss=_LegacyClosureLoss())
        tel = RecordingTelemetry()
        with telemetry_scope(tel):
            compiled = _fit("convnet", "compiled", loss=_LegacyClosureLoss())
        _assert_bitwise_same(fast, compiled)

        fallbacks = [e for e in tel.events if e.get("name") == "tape_compile_fallback"]
        assert len(fallbacks) == FEED_SHAPES  # one refusal per feed shape, then cached
        assert all(e["reason"] for e in fallbacks)
        (fit_event,) = [e for e in tel.events if e.get("name") == "compiled_fit"]
        assert fit_event["compiled_steps"] == 0
        assert fit_event["compile_fallbacks"] == FEED_SHAPES
        assert fit_event["eager_steps"] == EPOCHS * STEPS_PER_EPOCH

    def test_no_grad_surfaces_the_same_eager_error(self):
        # Training under no_grad is an error either way; the compiled path
        # must downgrade to eager and surface the identical failure instead
        # of silently replaying stale gradients.
        errors = {}
        for mode in ("fast", "compiled"):
            feature_shape, x, y = _data("convnet")
            with use_kernel_mode(mode):
                model = build_model(
                    "convnet", feature_shape, NUM_CLASSES, width=2,
                    rng=np.random.default_rng(3),
                )
                trainer = Trainer(
                    model, CrossEntropy(), SGD(model.parameters(), lr=0.05),
                    epochs=1, batch_size=BATCH, rng=np.random.default_rng(11),
                )
                with no_grad():
                    with pytest.raises(RuntimeError) as excinfo:
                        trainer.fit(x, y)
            errors[mode] = str(excinfo.value)
        assert errors["fast"] == errors["compiled"]


class TestTelemetry:
    def test_compiled_fit_event_counts_steps_and_workspace(self):
        tel = RecordingTelemetry()
        with telemetry_scope(tel):
            _fit("convnet", "compiled")

        compiles = [e for e in tel.events if e.get("name") == "tape_compile"]
        assert len(compiles) == FEED_SHAPES
        assert {tuple(e["feed_shape"]) for e in compiles} == {
            (BATCH, *IMAGE_SHAPE),
            (N % BATCH, *IMAGE_SHAPE),
        }
        assert all(e["entries"] > 0 and e["backward_steps"] > 0 for e in compiles)
        assert all(e["params"] > 0 for e in compiles)

        (fit_event,) = [e for e in tel.events if e.get("name") == "compiled_fit"]
        total = EPOCHS * STEPS_PER_EPOCH
        assert fit_event["compiles"] == FEED_SHAPES
        assert fit_event["eager_steps"] == FEED_SHAPES  # the recording steps
        assert fit_event["compiled_steps"] == total - FEED_SHAPES
        assert fit_event["tap_fallback_steps"] == 0
        assert fit_event["compile_fallbacks"] == 0
        for key in ("workspace_hits", "workspace_misses", "workspace_dropped"):
            assert key in fit_event

    def test_trace_summary_reports_compiled_execution(self):
        tel = RecordingTelemetry()
        with telemetry_scope(tel):
            _fit("convnet", "compiled")
        summary = summarize_trace(tel.events)
        assert summary.compiled_exec["compiled_steps"] == (
            EPOCHS * STEPS_PER_EPOCH - FEED_SHAPES
        )
        assert summary.compiled_exec["compiles"] == FEED_SHAPES
        rendered = render_trace_summary(summary)
        assert "compiled execution:" in rendered

    def test_eager_modes_emit_no_compiled_events(self):
        tel = RecordingTelemetry()
        with telemetry_scope(tel):
            _fit("convnet", "fast")
        names = {e.get("name") for e in tel.events}
        assert "compiled_fit" not in names
        assert "tape_compile" not in names
