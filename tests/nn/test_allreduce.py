"""Deterministic data-parallel tests: sharding, reduction, backend equality.

The contract under test (``repro.nn.allreduce``): one optimisation step
under ``ddp = N`` is *defined* by sharded-step semantics — contiguous
shards, per-replica forward/backward, fixed-order chunked reduction — and
both backends (forked ``"process"`` workers, the single-process
``"inproc"`` reference) execute those semantics bitwise-identically.  At
``world = 1`` the semantics collapse to the plain eager step exactly
(scaling by ``n/n == 1.0`` is a float no-op), which these tests also pin.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
import pytest

import repro.nn.trainer as trainer_mod
from repro.models import build_model
from repro.nn import (
    SGD,
    CrossEntropy,
    DataParallelGroup,
    Tensor,
    Trainer,
    combine_shard_losses,
    get_ddp,
    reduce_gradients,
    set_ddp,
    shard_slices,
    use_ddp,
)
from repro.telemetry import RecordingTelemetry, telemetry_scope

NUM_CLASSES = 5
IMAGE_SHAPE = (3, 16, 16)
#: 13 examples in batches of 5 → per-epoch batches of 5, 5, 3: the ragged
#: tail means every fit exercises unequal shards and (at world 4) idle ranks.
N, BATCH, EPOCHS = 13, 5, 2
STEPS = EPOCHS * 3


def _data(name: str):
    rng = np.random.default_rng(7)
    feature_shape = (12,) if name == "mlp" else IMAGE_SHAPE
    x = rng.normal(size=(N, *feature_shape)).astype(np.float32)
    y = np.eye(NUM_CLASSES, dtype=np.float32)[rng.integers(0, NUM_CLASSES, N)]
    return feature_shape, x, y


@contextmanager
def _force_backend(backend: str):
    """Make the trainer build its ddp group with a fixed backend."""
    original = trainer_mod.DataParallelGroup

    class Forced(original):
        def __init__(self, *args, **kwargs):
            kwargs["backend"] = backend
            super().__init__(*args, **kwargs)

    trainer_mod.DataParallelGroup = Forced
    try:
        yield
    finally:
        trainer_mod.DataParallelGroup = original


def _fit(name: str, world: int = 1, backend: "str | None" = None, clip_norm=None):
    """Train ``name`` from a fixed seed; returns (model, history)."""
    feature_shape, x, y = _data(name)
    model = build_model(
        name, feature_shape, NUM_CLASSES, width=2, rng=np.random.default_rng(3)
    )
    trainer = Trainer(
        model,
        CrossEntropy(),
        SGD(model.parameters(), lr=0.05),
        epochs=EPOCHS,
        batch_size=BATCH,
        rng=np.random.default_rng(11),
        clip_norm=clip_norm,
    )
    with use_ddp(world):
        if backend is None:
            history = trainer.fit(x, y)
        else:
            with _force_backend(backend):
                history = trainer.fit(x, y)
    return model, history


def _assert_bitwise_same(a, b):
    model_a, hist_a = a
    model_b, hist_b = b
    assert hist_a.loss_curve() == hist_b.loss_curve()
    assert [e.train_accuracy for e in hist_a.epochs] == [
        e.train_accuracy for e in hist_b.epochs
    ]
    for pa, pb in zip(model_a.parameters(), model_b.parameters()):
        assert pa.data.tobytes() == pb.data.tobytes(), "weight bytes diverged"
    for (name_a, buf_a), (name_b, buf_b) in zip(
        model_a.named_buffers(), model_b.named_buffers()
    ):
        assert name_a == name_b
        assert buf_a.tobytes() == buf_b.tobytes(), f"buffer {name_a} diverged"


# ----------------------------------------------------------------------
# The combination helpers
# ----------------------------------------------------------------------

class TestShardSlices:
    def test_contiguous_cover_with_larger_shards_first(self):
        assert shard_slices(13, 4) == [
            slice(0, 4), slice(4, 7), slice(7, 10), slice(10, 13)
        ]

    def test_exact_division(self):
        assert shard_slices(8, 2) == [slice(0, 4), slice(4, 8)]

    def test_world_one_is_the_whole_batch(self):
        assert shard_slices(5, 1) == [slice(0, 5)]

    def test_small_batch_leaves_empty_tails(self):
        slices = shard_slices(3, 4)
        assert len(slices) == 4
        assert [s.stop - s.start for s in slices] == [1, 1, 1, 0]

    def test_boundaries_depend_only_on_n_and_world(self):
        assert shard_slices(100, 7) == shard_slices(100, 7)

    def test_validation(self):
        with pytest.raises(ValueError, match="n must be"):
            shard_slices(-1, 2)
        with pytest.raises(ValueError, match="world must be"):
            shard_slices(4, 0)


class TestReduceGradients:
    def test_world_one_is_exact_identity(self):
        flat = np.random.default_rng(0).normal(size=1000).astype(np.float32)
        out = reduce_gradients([flat], [5])
        assert np.array_equal(out, flat)  # × 1.0 changes no bits

    def test_chunking_changes_no_bits(self):
        rng = np.random.default_rng(1)
        flats = [rng.normal(size=10_001).astype(np.float32) for _ in range(3)]
        lens = [5, 4, 2]
        whole = reduce_gradients(flats, lens, chunk=1 << 20)
        tiny = reduce_gradients(flats, lens, chunk=7)
        assert np.array_equal(whole, tiny)

    def test_matches_copy_then_accumulate_order(self):
        rng = np.random.default_rng(2)
        flats = [rng.normal(size=257).astype(np.float32) for _ in range(3)]
        lens = [3, 2, 2]
        total = sum(lens)
        reference = flats[0] * (lens[0] / total)  # float32 copy, then +=
        for flat, n in zip(flats[1:], lens[1:]):
            reference += flat * (n / total)
        assert reference.dtype == np.float32
        assert np.array_equal(reduce_gradients(flats, lens), reference)

    def test_reuses_out_buffer(self):
        flat = np.ones(16, dtype=np.float32)
        out = np.empty(16, dtype=np.float32)
        assert reduce_gradients([flat], [4], out=out) is out

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            reduce_gradients([], [])
        with pytest.raises(ValueError, match="lengths"):
            reduce_gradients([np.ones(4, np.float32)], [1, 2])
        with pytest.raises(ValueError, match="positive"):
            reduce_gradients([np.ones(4, np.float32)], [0])


class TestCombineShardLosses:
    def test_world_one_is_exact(self):
        assert combine_shard_losses([0.123456789], [7]) == 0.123456789

    def test_weighted_left_to_right(self):
        losses, lens = [1.0, 2.0, 4.0], [2, 1, 1]
        expected = (2 / 4) * 1.0
        expected += (1 / 4) * 2.0
        expected += (1 / 4) * 4.0
        assert combine_shard_losses(losses, lens) == expected

    def test_validation(self):
        with pytest.raises(ValueError, match="lengths"):
            combine_shard_losses([1.0], [1, 2])
        with pytest.raises(ValueError, match="positive"):
            combine_shard_losses([1.0], [0])


class TestDdpKnob:
    def test_set_returns_previous(self):
        before = get_ddp()
        try:
            assert set_ddp(3) == before
            assert get_ddp() == 3
        finally:
            set_ddp(before)

    def test_use_ddp_restores_on_exit(self):
        before = get_ddp()
        with use_ddp(4) as world:
            assert world == 4 and get_ddp() == 4
        assert get_ddp() == before

    def test_world_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            set_ddp(0)


# ----------------------------------------------------------------------
# Group semantics
# ----------------------------------------------------------------------

class TestGroupWorldOne:
    def test_world_one_step_equals_plain_eager_step(self):
        # Sharded semantics collapse exactly to the eager step at world 1:
        # same loss floats, same gradient bits, same weights after stepping.
        feature_shape, x, y = _data("convnet")

        def build():
            model = build_model(
                "convnet", feature_shape, NUM_CLASSES, width=2,
                rng=np.random.default_rng(3),
            )
            return model, SGD(model.parameters(), lr=0.05), CrossEntropy()

        model_g, opt_g, loss_g = build()
        model_e, opt_e, loss_e = build()
        model_g.train()
        model_e.train()
        with DataParallelGroup(model_g, loss_g, world=1, batch_capacity=BATCH) as group:
            for lo in range(0, N, BATCH):
                xb, yb = x[lo : lo + BATCH], y[lo : lo + BATCH]
                group_loss, group_logits = group.forward_backward(xb, yb)
                opt_g.step()

                for p in model_e.parameters():
                    p.zero_grad()
                logits = model_e(Tensor(xb))
                loss_t = loss_e(logits, yb)
                eager_loss = float(loss_t.item())
                loss_t.backward()
                opt_e.step()

                assert group_loss == eager_loss
                assert np.array_equal(group_logits, logits.data)
        for pg, pe in zip(model_g.parameters(), model_e.parameters()):
            assert pg.data.tobytes() == pe.data.tobytes()

    def test_capacity_and_geometry_guards(self):
        feature_shape, x, y = _data("mlp")
        model = build_model(
            "mlp", feature_shape, NUM_CLASSES, width=2, rng=np.random.default_rng(3)
        )
        with DataParallelGroup(
            model, CrossEntropy(), world=2, batch_capacity=4, backend="inproc"
        ) as group:
            group.forward_backward(x[:4], y[:4])
            with pytest.raises(ValueError, match="exceeds ddp capacity"):
                group.forward_backward(x[:5], y[:5])
            with pytest.raises(ValueError, match="feed shape changed"):
                group.forward_backward(x[:4, :11], y[:4])

    def test_constructor_validation(self):
        model = build_model("mlp", (12,), NUM_CLASSES, width=2)
        with pytest.raises(ValueError, match="world"):
            DataParallelGroup(model, CrossEntropy(), world=0, batch_capacity=4)
        with pytest.raises(ValueError, match="batch_capacity"):
            DataParallelGroup(model, CrossEntropy(), world=2, batch_capacity=0)
        with pytest.raises(ValueError, match="backend"):
            DataParallelGroup(
                model, CrossEntropy(), world=2, batch_capacity=4, backend="mpi"
            )


# ----------------------------------------------------------------------
# Backend equivalence through full fits (the acceptance contract)
# ----------------------------------------------------------------------

class TestBackendEquivalence:
    """Forked-worker fits must equal the single-process reference, bitwise.

    ``vgg11`` and ``resnet18`` are the acceptance pair; ``convnet`` adds
    batch-norm running buffers and ``mlp`` adds dropout rng streams — the
    two kinds of replica-local state the backends must keep identical.
    """

    @pytest.mark.parametrize("name", ["vgg11", "resnet18", "convnet", "mlp"])
    def test_process_fit_bitwise_equals_inproc_fit(self, name):
        _assert_bitwise_same(
            _fit(name, world=2, backend="process"),
            _fit(name, world=2, backend="inproc"),
        )

    def test_world_larger_than_final_batch(self):
        # Final batch of 3 at world 4: one rank idles — both backends must
        # agree on the idle-rank bookkeeping too.
        _assert_bitwise_same(
            _fit("convnet", world=4, backend="process"),
            _fit("convnet", world=4, backend="inproc"),
        )

    def test_clip_norm_composes_with_ddp(self):
        # Gradient clipping reads the installed .grad views; both backends
        # must feed it identical bits.
        _assert_bitwise_same(
            _fit("mlp", world=2, backend="process", clip_norm=1.0),
            _fit("mlp", world=2, backend="inproc", clip_norm=1.0),
        )

    def test_ddp_fit_event_reports_world_backend_steps(self):
        tel = RecordingTelemetry()
        with telemetry_scope(tel):
            _fit("mlp", world=2, backend="inproc")
        events = [e for e in tel.drain() if e.get("name") == "ddp_fit"]
        assert len(events) == 1
        assert events[0]["world"] == 2
        assert events[0]["backend"] == "inproc"
        assert events[0]["steps"] == STEPS

    def test_batch_hook_is_rejected_under_ddp(self):
        feature_shape, x, y = _data("mlp")
        model = build_model(
            "mlp", feature_shape, NUM_CLASSES, width=2, rng=np.random.default_rng(3)
        )
        trainer = Trainer(
            model, CrossEntropy(), SGD(model.parameters(), lr=0.05),
            epochs=1, batch_size=BATCH, rng=np.random.default_rng(11),
            batch_hook=lambda m, xb, yb: None,
        )
        with use_ddp(2):
            with pytest.raises(ValueError, match="batch_hook"):
                trainer.fit(x, y)
