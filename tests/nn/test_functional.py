"""Unit tests for differentiable NN ops: conv, pooling, softmax, im2col."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.module import Parameter

from ..conftest import assert_grad_close


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        logits = Tensor(rng.normal(size=(5, 7)).astype(np.float32))
        probs = F.softmax(logits, axis=1)
        np.testing.assert_allclose(probs.data.sum(axis=1), np.ones(5), rtol=1e-5)

    def test_stable_for_large_logits(self):
        logits = Tensor(np.array([[1000.0, 1000.0]], dtype=np.float32))
        probs = F.softmax(logits, axis=1)
        np.testing.assert_allclose(probs.data, [[0.5, 0.5]], rtol=1e-5)
        assert np.isfinite(probs.data).all()

    def test_temperature_softens_distribution(self):
        logits = Tensor(np.array([[2.0, 0.0]], dtype=np.float32))
        sharp = F.softmax(logits, axis=1).data
        soft = F.softmax(logits, axis=1, temperature=4.0).data
        assert soft[0, 0] < sharp[0, 0]
        assert soft[0, 1] > sharp[0, 1]

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        np.testing.assert_allclose(
            F.log_softmax(logits, axis=1).data,
            np.log(F.softmax(logits, axis=1).data),
            atol=1e-5,
        )

    def test_softmax_gradcheck(self, rng):
        x = rng.normal(size=(2, 4)).astype(np.float32)
        weights = rng.normal(size=(2, 4)).astype(np.float32)

        def forward(arr):
            return float((F.softmax(Tensor(arr), axis=1).data * weights).sum())

        t = Tensor(x.copy(), requires_grad=True)
        (F.softmax(t, axis=1) * Tensor(weights)).sum().backward()
        assert_grad_close(forward, x, t.grad, atol=1e-3)


class TestIm2Col:
    def test_output_shape(self, rng):
        images = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        cols = F.im2col(images, 3, 3, 1, 1)
        assert cols.shape == (2, 3 * 3 * 3, 8 * 8)

    def test_reference_output_shape(self, rng):
        images = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        cols = F.im2col_reference(images, 3, 3, 1, 1)
        assert cols.shape == (2 * 8 * 8, 3 * 3 * 3)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        # <im2col(x), y> == <x, col2im(y)> defines the correct gradient.
        x = rng.normal(size=(2, 2, 6, 6)).astype(np.float64)
        cols = F.im2col(x, 3, 3, 2, 1)
        y = rng.normal(size=cols.shape).astype(np.float64)
        lhs = float((cols * y).sum())
        rhs = float((x * F.col2im(y, x.shape, 3, 3, 2, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_col2im_reference_is_adjoint_of_im2col_reference(self, rng):
        x = rng.normal(size=(2, 2, 6, 6)).astype(np.float64)
        cols = F.im2col_reference(x, 3, 3, 2, 1)
        y = rng.normal(size=cols.shape).astype(np.float64)
        lhs = float((cols * y).sum())
        rhs = float((x * F.col2im_reference(y, x.shape, 3, 3, 2, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_matches_reference_layout(self, rng):
        # The (N, C*KH*KW, OH*OW) layout holds exactly the seed layout's
        # values, permuted: new[n, ck, p] == old[n*OHW + p, ck].
        images = rng.normal(size=(2, 3, 7, 7)).astype(np.float32)
        new = F.im2col(images, 3, 2, 2, 1)
        old = F.im2col_reference(images, 3, 2, 2, 1)
        np.testing.assert_array_equal(new.transpose(0, 2, 1).reshape(old.shape), old)

    def test_conv_output_size(self):
        assert F.conv_output_size(16, 3, 1, 1) == 16
        assert F.conv_output_size(16, 3, 2, 1) == 8
        assert F.conv_output_size(5, 2, 2, 0) == 2


class TestConv2D:
    def test_identity_kernel(self):
        images = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        kernel = np.zeros((1, 1, 3, 3), dtype=np.float32)
        kernel[0, 0, 1, 1] = 1.0
        out = F.conv2d(images, Tensor(kernel), None, stride=1, padding=1)
        np.testing.assert_allclose(out.data, images.data)

    def test_matches_manual_convolution(self, rng):
        images = rng.normal(size=(1, 1, 5, 5)).astype(np.float32)
        kernel = rng.normal(size=(1, 1, 3, 3)).astype(np.float32)
        out = F.conv2d(Tensor(images), Tensor(kernel), None).data
        # Manual valid convolution (cross-correlation).
        expected = np.zeros((3, 3), dtype=np.float32)
        for i in range(3):
            for j in range(3):
                expected[i, j] = (images[0, 0, i : i + 3, j : j + 3] * kernel[0, 0]).sum()
        np.testing.assert_allclose(out[0, 0], expected, rtol=1e-5)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((1, 3, 3, 3))), None)

    def test_input_gradcheck(self, rng):
        x = rng.normal(size=(2, 2, 5, 5)).astype(np.float32)
        w = rng.normal(size=(3, 2, 3, 3)).astype(np.float32)
        weights = rng.normal(size=(2, 3, 3, 3)).astype(np.float32)

        def forward(arr):
            out = F.conv2d(Tensor(arr), Tensor(w), None, stride=2, padding=1)
            return float((out.data * weights).sum())

        t = Tensor(x.copy(), requires_grad=True)
        out = F.conv2d(t, Tensor(w), None, stride=2, padding=1)
        (out * Tensor(weights)).sum().backward()
        assert_grad_close(forward, x, t.grad, atol=2e-2)

    def test_weight_and_bias_gradcheck(self, rng):
        x = rng.normal(size=(2, 2, 4, 4)).astype(np.float32)
        w_val = rng.normal(size=(2, 2, 3, 3)).astype(np.float32)
        b_val = rng.normal(size=(2,)).astype(np.float32)
        mix = rng.normal(size=(2, 2, 2, 2)).astype(np.float32)

        w = Parameter(w_val.copy())
        b = Parameter(b_val.copy())
        out = F.conv2d(Tensor(x), w, b, stride=1, padding=0)
        (out * Tensor(mix)).sum().backward()

        def forward_w(arr):
            out = F.conv2d(Tensor(x), Tensor(arr), Tensor(b_val), stride=1, padding=0)
            return float((out.data * mix).sum())

        assert_grad_close(forward_w, w_val, w.grad, atol=2e-2)
        np.testing.assert_allclose(
            b.grad, mix.sum(axis=(0, 2, 3)), rtol=1e-4, atol=1e-5
        )


class TestDepthwiseConv2D:
    def test_shape_and_independence_of_channels(self, rng):
        images = rng.normal(size=(1, 3, 6, 6)).astype(np.float32)
        weight = np.zeros((3, 1, 3, 3), dtype=np.float32)
        weight[:, 0, 1, 1] = np.array([1.0, 2.0, 3.0])  # per-channel scaling
        out = F.depthwise_conv2d(Tensor(images), Tensor(weight), None, padding=1)
        np.testing.assert_allclose(out.data[0, 0], images[0, 0] * 1.0, rtol=1e-5)
        np.testing.assert_allclose(out.data[0, 1], images[0, 1] * 2.0, rtol=1e-5)
        np.testing.assert_allclose(out.data[0, 2], images[0, 2] * 3.0, rtol=1e-5)

    def test_rejects_bad_weight_shape(self):
        with pytest.raises(ValueError):
            F.depthwise_conv2d(Tensor(np.zeros((1, 3, 4, 4))), Tensor(np.zeros((3, 2, 3, 3))), None)

    def test_input_gradcheck(self, rng):
        x = rng.normal(size=(2, 3, 5, 5)).astype(np.float32)
        w = rng.normal(size=(3, 1, 3, 3)).astype(np.float32)
        mix = rng.normal(size=(2, 3, 3, 3)).astype(np.float32)

        def forward(arr):
            out = F.depthwise_conv2d(Tensor(arr), Tensor(w), None, stride=2, padding=1)
            return float((out.data * mix).sum())

        t = Tensor(x.copy(), requires_grad=True)
        out = F.depthwise_conv2d(t, Tensor(w), None, stride=2, padding=1)
        (out * Tensor(mix)).sum().backward()
        assert_grad_close(forward, x, t.grad, atol=2e-2)

    def test_weight_gradcheck(self, rng):
        x = rng.normal(size=(1, 2, 4, 4)).astype(np.float32)
        w_val = rng.normal(size=(2, 1, 3, 3)).astype(np.float32)
        mix = rng.normal(size=(1, 2, 2, 2)).astype(np.float32)

        w = Parameter(w_val.copy())
        out = F.depthwise_conv2d(Tensor(x), w, None)
        (out * Tensor(mix)).sum().backward()

        def forward(arr):
            out = F.depthwise_conv2d(Tensor(x), Tensor(arr), None)
            return float((out.data * mix).sum())

        assert_grad_close(forward, w_val, w.grad, atol=2e-2)


class TestPooling:
    def test_max_pool_values(self):
        images = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.max_pool2d(images, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_max_pool_grad_routes_to_max(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        t = Tensor(x, requires_grad=True)
        F.max_pool2d(t, 2).sum().backward()
        expected = np.zeros((4, 4), dtype=np.float32)
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(t.grad[0, 0], expected)

    def test_avg_pool_values(self):
        images = Tensor(np.ones((1, 2, 4, 4), dtype=np.float32) * 3.0)
        out = F.avg_pool2d(images, 2)
        np.testing.assert_allclose(out.data, np.full((1, 2, 2, 2), 3.0))

    def test_avg_pool_grad_spreads_uniformly(self):
        t = Tensor(np.zeros((1, 1, 4, 4), dtype=np.float32), requires_grad=True)
        F.avg_pool2d(t, 2).sum().backward()
        np.testing.assert_allclose(t.grad, np.full((1, 1, 4, 4), 0.25))

    def test_global_avg_pool_shape(self, rng):
        images = Tensor(rng.normal(size=(3, 5, 4, 4)).astype(np.float32))
        out = F.global_avg_pool2d(images)
        assert out.shape == (3, 5)
        np.testing.assert_allclose(out.data, images.data.mean(axis=(2, 3)), rtol=1e-5)

    def test_strided_max_pool(self, rng):
        images = Tensor(rng.normal(size=(1, 1, 6, 6)).astype(np.float32))
        out = F.max_pool2d(images, 2, stride=2)
        assert out.shape == (1, 1, 3, 3)


class TestBatchNorm2DFunctional:
    def test_normalises_batch_in_training_mode(self, rng):
        x_val = rng.normal(3.0, 2.0, size=(8, 4, 5, 5)).astype(np.float32)
        x = Tensor(x_val)
        gamma = Parameter(np.ones(4, dtype=np.float32))
        beta = Parameter(np.zeros(4, dtype=np.float32))
        out = F.batch_norm_2d(
            x, gamma, beta, x_val.mean(axis=(0, 2, 3)), x_val.var(axis=(0, 2, 3)), 1e-5, True
        )
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), np.zeros(4), atol=1e-5)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), np.ones(4), atol=1e-3)

    def test_eval_mode_uses_given_stats(self):
        x = Tensor(np.full((2, 1, 2, 2), 10.0, dtype=np.float32))
        gamma = Parameter(np.ones(1, dtype=np.float32))
        beta = Parameter(np.zeros(1, dtype=np.float32))
        out = F.batch_norm_2d(x, gamma, beta, np.array([4.0]), np.array([4.0]), 0.0, False)
        np.testing.assert_allclose(out.data, np.full((2, 1, 2, 2), 3.0), rtol=1e-5)

    def test_rejects_non_4d(self):
        with pytest.raises(ValueError):
            F.batch_norm_2d(
                Tensor(np.zeros((2, 3))),
                Parameter(np.ones(3, dtype=np.float32)),
                Parameter(np.zeros(3, dtype=np.float32)),
                np.zeros(3),
                np.ones(3),
                1e-5,
                True,
            )
