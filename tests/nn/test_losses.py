"""Unit tests for loss functions, including the paper's noise-robust losses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.losses import (
    ActivePassiveLoss,
    CrossEntropy,
    DistillationLoss,
    FocalLoss,
    GeneralizedCrossEntropy,
    LabelRelaxationLoss,
    MeanAbsoluteError,
    NormalizedCrossEntropy,
    NormalizedFocalLoss,
    ReverseCrossEntropy,
    SoftTargetCrossEntropy,
    get_loss,
)


def _one_hot(labels, k):
    return np.eye(k, dtype=np.float32)[labels]


@pytest.fixture
def logits(rng):
    return Tensor(rng.normal(size=(8, 5)).astype(np.float32), requires_grad=True)


@pytest.fixture
def targets(rng):
    return _one_hot(rng.integers(0, 5, 8), 5)


ALL_LOSSES = [
    CrossEntropy(),
    SoftTargetCrossEntropy(),
    NormalizedCrossEntropy(),
    ReverseCrossEntropy(),
    ActivePassiveLoss(),
    MeanAbsoluteError(),
    GeneralizedCrossEntropy(),
    FocalLoss(),
    NormalizedFocalLoss(),
    LabelRelaxationLoss(),
]


class TestCommonProperties:
    @pytest.mark.parametrize("loss", ALL_LOSSES, ids=lambda l: l.name)
    def test_scalar_nonnegative_and_differentiable(self, loss, logits, targets):
        value = loss(logits, targets)
        assert value.size == 1
        assert float(value.item()) >= -1e-6
        value.backward()
        assert logits.grad is not None
        assert np.isfinite(logits.grad).all()

    @pytest.mark.parametrize("loss", ALL_LOSSES, ids=lambda l: l.name)
    def test_shape_mismatch_raises(self, loss, rng):
        logits = Tensor(rng.normal(size=(4, 3)).astype(np.float32))
        if isinstance(loss, DistillationLoss):
            pytest.skip("distillation is tested separately")
        with pytest.raises(ValueError):
            loss(logits, _one_hot([0, 1], 3))

    @pytest.mark.parametrize("loss", ALL_LOSSES, ids=lambda l: l.name)
    def test_perfect_prediction_has_low_loss(self, loss):
        # Strongly confident correct logits should cost (near) the minimum.
        k = 4
        labels = np.array([0, 1, 2, 3])
        good = Tensor((20.0 * _one_hot(labels, k) - 10.0).astype(np.float32))
        bad = Tensor((20.0 * _one_hot((labels + 1) % k, k) - 10.0).astype(np.float32))
        good_loss = float(loss(good, _one_hot(labels, k)).item())
        bad_loss = float(loss(bad, _one_hot(labels, k)).item())
        assert good_loss < bad_loss


class TestCrossEntropy:
    def test_matches_manual_formula(self, rng):
        logits_val = rng.normal(size=(4, 3)).astype(np.float32)
        labels = rng.integers(0, 3, 4)
        targets = _one_hot(labels, 3)
        loss = float(CrossEntropy()(Tensor(logits_val), targets).item())
        shifted = logits_val - logits_val.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(4), labels].mean()
        assert loss == pytest.approx(expected, rel=1e-5)

    def test_uniform_prediction_costs_log_k(self):
        logits = Tensor(np.zeros((2, 10), dtype=np.float32))
        loss = float(CrossEntropy()(logits, _one_hot([0, 5], 10)).item())
        assert loss == pytest.approx(np.log(10), rel=1e-5)


class TestRobustLosses:
    def test_nce_bounded_by_one(self, rng):
        # NCE is normalised: numerator <= denominator, so NCE in (0, 1].
        logits = Tensor(rng.normal(size=(16, 7)).astype(np.float32))
        targets = _one_hot(rng.integers(0, 7, 16), 7)
        value = float(NormalizedCrossEntropy()(logits, targets).item())
        assert 0.0 < value <= 1.0

    def test_rce_reduces_to_scaled_mae_for_one_hot(self, rng):
        # For one-hot targets RCE = -A * (1 - p_y), A = log_clip.
        logits_val = rng.normal(size=(6, 4)).astype(np.float32)
        labels = rng.integers(0, 4, 6)
        value = float(ReverseCrossEntropy(log_clip=-4.0)(Tensor(logits_val), _one_hot(labels, 4)).item())
        shifted = np.exp(logits_val - logits_val.max(axis=1, keepdims=True))
        probs = shifted / shifted.sum(axis=1, keepdims=True)
        p_y = probs[np.arange(6), labels]
        assert value == pytest.approx((4.0 * (1 - p_y)).mean(), rel=1e-4)

    def test_apl_is_weighted_sum(self, logits, targets):
        apl = ActivePassiveLoss(alpha=2.0, beta=3.0)
        combined = float(apl(logits, targets).item())
        nce = float(NormalizedCrossEntropy()(logits, targets).item())
        rce = float(ReverseCrossEntropy()(logits, targets).item())
        assert combined == pytest.approx(2.0 * nce + 3.0 * rce, rel=1e-5)

    def test_symmetric_loss_property_of_mae(self, rng):
        # MAE satisfies sum_k L(f, k) = constant — the symmetry condition that
        # makes it robust to uniform label noise (Ghosh et al.).
        logits = Tensor(rng.normal(size=(1, 5)).astype(np.float32))
        total = sum(
            float(MeanAbsoluteError()(logits, _one_hot([k], 5)).item()) for k in range(5)
        )
        assert total == pytest.approx(2.0 * (5 - 1), rel=1e-4)

    def test_gce_interpolates_ce_and_mae(self, rng):
        # q -> 0 approaches CE; q = 1 is exactly 1 - p_y.
        logits_val = rng.normal(size=(4, 3)).astype(np.float32)
        labels = rng.integers(0, 3, 4)
        targets = _one_hot(labels, 3)
        gce1 = float(GeneralizedCrossEntropy(q=1.0)(Tensor(logits_val), targets).item())
        shifted = np.exp(logits_val - logits_val.max(axis=1, keepdims=True))
        probs = shifted / shifted.sum(axis=1, keepdims=True)
        assert gce1 == pytest.approx((1 - probs[np.arange(4), labels]).mean(), rel=1e-4)

    def test_gce_rejects_bad_q(self):
        with pytest.raises(ValueError):
            GeneralizedCrossEntropy(q=0.0)


class TestLabelRelaxation:
    def test_zero_loss_inside_credal_set(self):
        # Prediction assigns > 1 - alpha to the target -> zero loss.
        logits = Tensor(np.array([[10.0, 0.0, 0.0]], dtype=np.float32))
        value = float(LabelRelaxationLoss(alpha=0.1)(logits, _one_hot([0], 3)).item())
        assert value == pytest.approx(0.0, abs=1e-6)

    def test_positive_loss_outside_credal_set(self):
        logits = Tensor(np.array([[0.0, 0.0, 0.0]], dtype=np.float32))
        value = float(LabelRelaxationLoss(alpha=0.1)(logits, _one_hot([0], 3)).item())
        assert value > 0.1

    def test_less_punishing_than_ce_for_plausible_mistakes(self, rng):
        # Relaxation reduces the penalty gap between correct and incorrect
        # encodings — the mechanism that mitigates mislabelled data.
        logits = Tensor(rng.normal(size=(32, 6)).astype(np.float32))
        targets = _one_hot(rng.integers(0, 6, 32), 6)
        lr = float(LabelRelaxationLoss(alpha=0.1)(logits, targets).item())
        ce = float(CrossEntropy()(logits, targets).item())
        assert lr < ce

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            LabelRelaxationLoss(alpha=0.0)


class TestDistillation:
    def test_requires_teacher_probs(self, logits, targets):
        with pytest.raises(RuntimeError):
            DistillationLoss()(logits, targets)

    def test_teacher_shape_check(self, logits, targets):
        loss = DistillationLoss()
        loss.set_teacher_probs(np.ones((2, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            loss(logits, targets)

    def test_alpha_zero_reduces_to_ce(self, rng):
        logits_val = rng.normal(size=(4, 3)).astype(np.float32)
        targets = _one_hot(rng.integers(0, 3, 4), 3)
        loss = DistillationLoss(alpha=0.0, temperature=4.0)
        loss.set_teacher_probs(np.full((4, 3), 1 / 3, dtype=np.float32))
        value = float(loss(Tensor(logits_val), targets).item())
        ce = float(CrossEntropy()(Tensor(logits_val), targets).item())
        assert value == pytest.approx(ce, rel=1e-5)

    def test_matching_teacher_minimises_soft_term(self, rng):
        # Student logits equal to teacher logits minimise the soft loss.
        from repro.nn.functional import softmax

        teacher_logits = rng.normal(size=(6, 4)).astype(np.float32)
        teacher_soft = softmax(Tensor(teacher_logits), axis=1, temperature=4.0).data
        targets = _one_hot(rng.integers(0, 4, 6), 4)
        loss = DistillationLoss(alpha=1.0, temperature=4.0)

        loss.set_teacher_probs(teacher_soft)
        match = float(loss(Tensor(teacher_logits), targets).item())
        loss.set_teacher_probs(teacher_soft)
        mismatch = float(loss(Tensor(-teacher_logits), targets).item())
        assert match < mismatch

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DistillationLoss(alpha=1.5)
        with pytest.raises(ValueError):
            DistillationLoss(temperature=0.0)


class TestRegistry:
    def test_builds_by_name(self):
        assert isinstance(get_loss("cross_entropy"), CrossEntropy)
        assert isinstance(get_loss("label_relaxation", alpha=0.2), LabelRelaxationLoss)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown loss"):
            get_loss("nope")
