"""Unit tests for the Module base class: discovery, modes, state dicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import BatchNorm2D, Dense, Dropout, Module, ReLU, Sequential, Tensor
from repro.nn.module import Parameter


class TinyNet(Module):
    def __init__(self, rng):
        super().__init__()
        self.first = Dense(4, 8, rng=rng)
        self.blocks = [Dense(8, 8, rng=rng), Dense(8, 8, rng=rng)]
        self.head = Dense(8, 2, rng=rng)

    def forward(self, x):
        x = self.first(x).relu()
        for block in self.blocks:
            x = block(x).relu()
        return self.head(x)


class TestParameterDiscovery:
    def test_named_parameters_are_dotted(self, rng):
        net = TinyNet(rng)
        names = [n for n, _ in net.named_parameters()]
        assert "first.weight" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names
        assert "head.weight" in names

    def test_parameter_count(self, rng):
        net = TinyNet(rng)
        assert len(net.parameters()) == 8  # 4 layers x (weight + bias)

    def test_num_parameters_counts_scalars(self, rng):
        layer = Dense(3, 2, rng=rng)
        assert layer.num_parameters() == 3 * 2 + 2

    def test_modules_iterates_descendants(self, rng):
        net = TinyNet(rng)
        kinds = [type(m).__name__ for m in net.modules()]
        assert kinds.count("Dense") == 4
        assert kinds[0] == "TinyNet"


class TestModes:
    def test_zero_grad_clears_all(self, rng):
        net = TinyNet(rng)
        out = net(Tensor(rng.normal(size=(2, 4)).astype(np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_train_eval_reach_nested_modules(self, rng):
        net = Sequential(Sequential(Dropout(0.5, rng=rng)), ReLU())
        net.eval()
        assert not net.layers[0].layers[0].training


class TestStateDict:
    def test_roundtrip(self, rng):
        net1 = TinyNet(np.random.default_rng(1))
        net2 = TinyNet(np.random.default_rng(2))
        x = rng.normal(size=(3, 4)).astype(np.float32)
        assert not np.allclose(net1(Tensor(x)).data, net2(Tensor(x)).data)
        net2.load_state_dict(net1.state_dict())
        np.testing.assert_allclose(net1(Tensor(x)).data, net2(Tensor(x)).data)

    def test_state_dict_is_a_copy(self, rng):
        net = TinyNet(rng)
        state = net.state_dict()
        state["first.weight"][...] = 0.0
        assert not np.allclose(net.first.weight.data, 0.0)

    def test_missing_key_raises(self, rng):
        net = TinyNet(rng)
        state = net.state_dict()
        del state["head.bias"]
        with pytest.raises(ValueError, match="missing"):
            net.load_state_dict(state)

    def test_unexpected_key_raises(self, rng):
        net = TinyNet(rng)
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(ValueError, match="unexpected"):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self, rng):
        net = TinyNet(rng)
        state = net.state_dict()
        state["head.bias"] = np.zeros(99, dtype=np.float32)
        with pytest.raises(ValueError, match="shape mismatch"):
            net.load_state_dict(state)

    def test_buffers_roundtrip(self, rng):
        bn1 = BatchNorm2D(3)
        bn1(Tensor(rng.normal(2.0, 1.0, size=(8, 3, 4, 4)).astype(np.float32)))
        bn2 = BatchNorm2D(3)
        bn2.load_state_dict(bn1.state_dict())
        np.testing.assert_allclose(bn2.running_mean, bn1.running_mean)
        np.testing.assert_allclose(bn2.running_var, bn1.running_var)


class TestRegisterBuffer:
    def test_buffer_listed_and_named(self):
        m = Module()
        m.register_buffer("counts", np.arange(3, dtype=np.float32))
        names = dict(m.named_buffers())
        assert "counts" in names
        np.testing.assert_allclose(names["counts"], [0.0, 1.0, 2.0])

    def test_double_register_keeps_single_entry(self):
        m = Module()
        m.register_buffer("b", np.zeros(1))
        m.register_buffer("b", np.ones(1))
        assert len(list(m.named_buffers())) == 1

    def test_parameter_is_tensor_with_grad(self):
        p = Parameter(np.zeros(3, dtype=np.float32))
        assert isinstance(p, Tensor)
        assert p.requires_grad
