"""Unit tests for the training loop, inference helpers, and early stopping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    CrossEntropy,
    Dense,
    DivergenceError,
    EarlyStopping,
    ReLU,
    Sequential,
    StepLR,
    Trainer,
    evaluate_accuracy,
    predict_labels,
    predict_logits,
    predict_proba,
)


class _NaNAfterLoss(CrossEntropy):
    """A loss that turns NaN after a fixed number of batches (fault injection)."""

    def __init__(self, nan_after: int = 0) -> None:
        super().__init__()
        self.calls = 0
        self.nan_after = nan_after

    def __call__(self, logits, targets):
        value = super().__call__(logits, targets)
        if self.calls >= self.nan_after:
            value.data = np.asarray(np.nan, dtype=value.data.dtype)
        self.calls += 1
        return value


def _toy_problem(rng, n=64, dim=6, k=3):
    """A linearly separable toy problem."""
    centers = rng.normal(scale=3.0, size=(k, dim)).astype(np.float32)
    labels = rng.integers(0, k, n)
    x = centers[labels] + rng.normal(scale=0.3, size=(n, dim)).astype(np.float32)
    y = np.eye(k, dtype=np.float32)[labels]
    return x.astype(np.float32), y, labels


def _model(rng, dim=6, k=3):
    return Sequential(Dense(dim, 16, rng=rng), ReLU(), Dense(16, k, rng=rng))


class TestFit:
    def test_learns_separable_problem(self, rng):
        x, y, labels = _toy_problem(rng)
        model = _model(rng)
        trainer = Trainer(model, CrossEntropy(), Adam(model.parameters(), lr=0.01),
                          epochs=30, batch_size=16, rng=rng)
        history = trainer.fit(x, y)
        assert history.final_train_accuracy > 0.95
        assert evaluate_accuracy(model, x, labels) > 0.95

    def test_loss_decreases(self, rng):
        x, y, _ = _toy_problem(rng)
        model = _model(rng)
        trainer = Trainer(model, CrossEntropy(), Adam(model.parameters(), lr=0.01),
                          epochs=15, batch_size=16, rng=rng)
        curve = trainer.fit(x, y).loss_curve()
        assert curve[-1] < curve[0]

    def test_history_records_epochs(self, rng):
        x, y, _ = _toy_problem(rng)
        model = _model(rng)
        trainer = Trainer(model, CrossEntropy(), SGD(model.parameters(), lr=0.01),
                          epochs=4, batch_size=16, rng=rng)
        history = trainer.fit(x, y)
        assert [e.epoch for e in history.epochs] == [0, 1, 2, 3]
        assert history.total_time_s > 0
        assert all(e.duration_s >= 0 for e in history.epochs)

    def test_validation_metrics_recorded(self, rng):
        x, y, _ = _toy_problem(rng)
        model = _model(rng)
        trainer = Trainer(model, CrossEntropy(), SGD(model.parameters(), lr=0.05),
                          epochs=3, batch_size=16, rng=rng)
        history = trainer.fit(x, y, validation=(x, y))
        assert history.epochs[-1].val_loss is not None
        assert history.final_val_accuracy is not None

    def test_length_mismatch_raises(self, rng):
        model = _model(rng)
        trainer = Trainer(model, CrossEntropy(), SGD(model.parameters(), lr=0.1))
        with pytest.raises(ValueError, match="differ in length"):
            trainer.fit(np.zeros((4, 6), dtype=np.float32), np.zeros((5, 3), dtype=np.float32))

    def test_requires_one_hot_targets(self, rng):
        model = _model(rng)
        trainer = Trainer(model, CrossEntropy(), SGD(model.parameters(), lr=0.1))
        with pytest.raises(ValueError, match="one-hot"):
            trainer.fit(np.zeros((4, 6), dtype=np.float32), np.zeros(4, dtype=np.float32))

    def test_target_transform_applied(self, rng):
        x, y, _ = _toy_problem(rng, n=32)
        model = _model(rng)
        seen: list[np.ndarray] = []

        def transform(targets):
            seen.append(targets)
            return targets

        trainer = Trainer(model, CrossEntropy(), SGD(model.parameters(), lr=0.01),
                          epochs=1, batch_size=8, rng=rng, target_transform=transform)
        trainer.fit(x, y)
        assert len(seen) == 4  # 32 / 8 batches

    def test_batch_hook_sees_batches(self, rng):
        x, y, _ = _toy_problem(rng, n=16)
        model = _model(rng)
        sizes: list[int] = []
        trainer = Trainer(model, CrossEntropy(), SGD(model.parameters(), lr=0.01),
                          epochs=1, batch_size=5, rng=rng,
                          batch_hook=lambda m, xb, yb: sizes.append(len(xb)))
        trainer.fit(x, y)
        assert sorted(sizes, reverse=True) == [5, 5, 5, 1]

    def test_scheduler_steps_each_epoch(self, rng):
        x, y, _ = _toy_problem(rng, n=16)
        model = _model(rng)
        opt = SGD(model.parameters(), lr=1.0)
        trainer = Trainer(model, CrossEntropy(), opt, epochs=3, batch_size=8, rng=rng,
                          scheduler=StepLR(opt, step_size=1, gamma=0.1))
        history = trainer.fit(x, y)
        assert opt.lr == pytest.approx(0.001)
        # The LR recorded for epoch 0 is the pre-step value.
        assert history.epochs[0].learning_rate == pytest.approx(1.0)

    def test_epoch_callback_invoked(self, rng):
        x, y, _ = _toy_problem(rng, n=16)
        model = _model(rng)
        records = []
        trainer = Trainer(model, CrossEntropy(), SGD(model.parameters(), lr=0.01),
                          epochs=2, batch_size=8, rng=rng, epoch_callback=records.append)
        trainer.fit(x, y)
        assert len(records) == 2

    def test_validation_of_loop_geometry(self, rng):
        model = _model(rng)
        with pytest.raises(ValueError):
            Trainer(model, CrossEntropy(), SGD(model.parameters(), lr=0.1), epochs=0)
        with pytest.raises(ValueError):
            Trainer(model, CrossEntropy(), SGD(model.parameters(), lr=0.1), batch_size=0)


class TestHistoryTiming:
    def test_validation_timed_separately_from_training(self, rng):
        x, y, _ = _toy_problem(rng, n=32)
        model = _model(rng)
        trainer = Trainer(model, CrossEntropy(), SGD(model.parameters(), lr=0.05),
                          epochs=2, batch_size=16, rng=rng)
        history = trainer.fit(x, y, validation=(x, y))
        assert all(e.val_duration_s > 0 for e in history.epochs)
        assert history.validation_time_s == pytest.approx(
            sum(e.val_duration_s for e in history.epochs)
        )
        # Training durations exclude the validation pass.
        assert history.total_time_s >= sum(
            e.duration_s + e.val_duration_s for e in history.epochs
        )

    def test_no_validation_means_zero_val_time(self, rng):
        x, y, _ = _toy_problem(rng, n=16)
        model = _model(rng)
        trainer = Trainer(model, CrossEntropy(), SGD(model.parameters(), lr=0.05),
                          epochs=1, batch_size=8, rng=rng)
        history = trainer.fit(x, y)
        assert history.validation_time_s == 0.0
        assert history.epochs[0].val_duration_s == 0.0

    def test_throughput_counts_examples_over_train_time(self, rng):
        x, y, _ = _toy_problem(rng, n=32)
        model = _model(rng)
        trainer = Trainer(model, CrossEntropy(), SGD(model.parameters(), lr=0.05),
                          epochs=3, batch_size=16, rng=rng)
        history = trainer.fit(x, y)
        assert all(e.examples == 32 for e in history.epochs)
        assert history.throughput_examples_per_s > 0
        assert history.throughput_examples_per_s == pytest.approx(
            96 / sum(e.duration_s for e in history.epochs)
        )

    def test_untimed_records_report_zero_throughput(self):
        from repro.nn.trainer import EpochRecord, TrainHistory

        record = EpochRecord(epoch=0, train_loss=1.0, train_accuracy=0.5,
                             examples=100, duration_s=0.0)
        assert record.throughput_examples_per_s == 0.0
        assert TrainHistory().throughput_examples_per_s == 0.0

    def test_batch_callback_sees_every_step(self, rng):
        x, y, _ = _toy_problem(rng, n=16)
        model = _model(rng)
        steps = []
        trainer = Trainer(model, CrossEntropy(), SGD(model.parameters(), lr=0.01),
                          epochs=2, batch_size=5, rng=rng,
                          batch_callback=lambda e, b, loss: steps.append((e, b, loss)))
        trainer.fit(x, y)
        assert [(e, b) for e, b, _ in steps] == [
            (0, 0), (0, 1), (0, 2), (0, 3), (1, 0), (1, 1), (1, 2), (1, 3)
        ]
        assert all(np.isfinite(loss) for _, _, loss in steps)

    def test_epoch_spans_emitted_under_telemetry_scope(self, rng):
        from repro.telemetry import RecordingTelemetry, telemetry_scope

        x, y, _ = _toy_problem(rng, n=16)
        model = _model(rng)
        trainer = Trainer(model, CrossEntropy(), SGD(model.parameters(), lr=0.05),
                          epochs=2, batch_size=8, rng=rng)
        tel = RecordingTelemetry()
        with telemetry_scope(tel):
            trainer.fit(x, y, validation=(x, y))
        starts = [e for e in tel.events if e["ev"] == "span_start"]
        ends = [e for e in tel.events if e["ev"] == "span_end"]
        assert [e["epoch"] for e in starts] == [0, 1]
        assert all(e["name"] == "epoch" for e in starts)
        # Measurements ride on the end event.
        assert all("train_loss" in e and "examples_per_s" in e for e in ends)
        assert all(e["val_loss"] is not None for e in ends)


class TestDivergenceGuard:
    def test_nan_loss_raises_divergence_error(self, rng):
        x, y, _ = _toy_problem(rng, n=32)
        model = _model(rng)
        trainer = Trainer(model, _NaNAfterLoss(nan_after=2), SGD(model.parameters(), lr=0.01),
                          epochs=3, batch_size=8, rng=rng)
        with pytest.raises(DivergenceError) as excinfo:
            trainer.fit(x, y)
        # Batch 2 of epoch 0 (8-sample batches) is where the NaN appears.
        assert excinfo.value.epoch == 0
        assert excinfo.value.batch == 2
        assert np.isnan(excinfo.value.loss)

    def test_guard_can_be_disabled(self, rng):
        x, y, _ = _toy_problem(rng, n=16)
        model = _model(rng)
        trainer = Trainer(model, _NaNAfterLoss(), SGD(model.parameters(), lr=0.01),
                          epochs=1, batch_size=8, rng=rng, raise_on_divergence=False)
        history = trainer.fit(x, y)  # must not raise
        assert np.isnan(history.epochs[0].train_loss)

    def test_finite_training_unaffected(self, rng):
        x, y, _ = _toy_problem(rng, n=16)
        model = _model(rng)
        trainer = Trainer(model, CrossEntropy(), SGD(model.parameters(), lr=0.01),
                          epochs=2, batch_size=8, rng=rng)
        history = trainer.fit(x, y)
        assert len(history.epochs) == 2


class TestEarlyStopping:
    def test_stops_on_plateau(self):
        stopper = EarlyStopping(patience=2, min_delta=0.0)
        assert not stopper.should_stop(1.0)
        assert not stopper.should_stop(1.0)  # stale 1
        assert stopper.should_stop(1.0)  # stale 2 -> stop

    def test_improvement_resets(self):
        stopper = EarlyStopping(patience=2, min_delta=0.01)
        assert not stopper.should_stop(1.0)
        assert not stopper.should_stop(1.1)
        assert not stopper.should_stop(0.5)  # improved, reset
        assert not stopper.should_stop(0.51)
        assert stopper.should_stop(0.52)

    def test_trainer_integration(self, rng):
        x, y, _ = _toy_problem(rng)
        model = _model(rng)
        trainer = Trainer(model, CrossEntropy(), Adam(model.parameters(), lr=0.01),
                          epochs=100, batch_size=16, rng=rng,
                          early_stopping=EarlyStopping(patience=3))
        history = trainer.fit(x, y)
        assert history.stopped_early
        assert len(history.epochs) < 100

    def test_patience_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)

    def test_nan_counts_as_stale_and_sets_flag(self):
        stopper = EarlyStopping(patience=2, min_delta=0.0)
        assert not stopper.should_stop(float("nan"))  # stale 1
        assert stopper.saw_nan
        assert stopper.should_stop(float("nan"))  # stale 2 -> stop

    def test_nan_does_not_corrupt_best(self):
        stopper = EarlyStopping(patience=3, min_delta=0.0)
        assert not stopper.should_stop(1.0)
        assert not stopper.should_stop(float("nan"))
        assert not stopper.should_stop(0.5)  # recovery still registers as improvement
        assert stopper.best == 0.5
        assert stopper.stale_epochs == 0


class TestInferenceHelpers:
    def test_predict_logits_batched_consistency(self, rng):
        x, _, _ = _toy_problem(rng, n=33)
        model = _model(rng)
        full = predict_logits(model, x, batch_size=33)
        batched = predict_logits(model, x, batch_size=7)
        np.testing.assert_allclose(full, batched, rtol=1e-5)

    def test_predict_proba_rows_sum_to_one(self, rng):
        x, _, _ = _toy_problem(rng, n=10)
        probs = predict_proba(_model(rng), x)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(10), rtol=1e-5)

    def test_predict_labels_in_range(self, rng):
        x, _, _ = _toy_problem(rng, n=10)
        labels = predict_labels(_model(rng), x)
        assert labels.min() >= 0
        assert labels.max() < 3

    def test_evaluate_accuracy_accepts_one_hot(self, rng):
        x, y, labels = _toy_problem(rng, n=20)
        model = _model(rng)
        assert evaluate_accuracy(model, x, y) == evaluate_accuracy(model, x, labels)

    def test_history_empty_raises(self):
        from repro.nn.trainer import TrainHistory

        with pytest.raises(ValueError):
            TrainHistory().final_train_accuracy
