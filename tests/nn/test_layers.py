"""Unit tests for the layer zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    Identity,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sequential,
    Tensor,
)


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(8, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(5, 8)).astype(np.float32)))
        assert out.shape == (5, 3)

    def test_no_bias(self, rng):
        layer = Dense(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((1, 4), dtype=np.float32)))
        np.testing.assert_allclose(out.data, np.zeros((1, 2)))

    def test_linearity(self, rng):
        layer = Dense(4, 2, rng=rng)
        x = rng.normal(size=(1, 4)).astype(np.float32)
        out1 = layer(Tensor(x)).data
        out2 = layer(Tensor(2 * x)).data
        bias = layer.bias.data
        np.testing.assert_allclose(out2 - bias, 2 * (out1 - bias), rtol=1e-4)

    def test_seeded_init_reproducible(self):
        a = Dense(6, 4, rng=np.random.default_rng(1))
        b = Dense(6, 4, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestConvLayers:
    def test_conv2d_shapes(self, rng):
        layer = Conv2D(3, 8, kernel_size=3, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32)))
        assert out.shape == (2, 8, 8, 8)

    def test_depthwise_shapes(self, rng):
        layer = DepthwiseConv2D(5, kernel_size=3, stride=1, padding=1, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 5, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 5, 8, 8)

    def test_conv_parameters_registered(self, rng):
        layer = Conv2D(3, 8, rng=rng)
        names = [n for n, _ in layer.named_parameters()]
        assert names == ["weight", "bias"]


class TestPoolLayers:
    def test_max_pool_module(self, rng):
        out = MaxPool2D(2)(Tensor(rng.normal(size=(1, 2, 8, 8)).astype(np.float32)))
        assert out.shape == (1, 2, 4, 4)

    def test_avg_pool_module(self, rng):
        out = AvgPool2D(4)(Tensor(rng.normal(size=(1, 2, 8, 8)).astype(np.float32)))
        assert out.shape == (1, 2, 2, 2)

    def test_global_avg_pool_module(self, rng):
        out = GlobalAvgPool2D()(Tensor(rng.normal(size=(3, 7, 4, 4)).astype(np.float32)))
        assert out.shape == (3, 7)


class TestBatchNorm2D:
    def test_training_normalises(self, rng):
        bn = BatchNorm2D(4)
        x = rng.normal(5.0, 3.0, size=(16, 4, 6, 6)).astype(np.float32)
        out = bn(Tensor(x))
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), np.zeros(4), atol=1e-4)

    def test_running_stats_update(self, rng):
        bn = BatchNorm2D(2, momentum=0.5)
        x = rng.normal(10.0, 1.0, size=(8, 2, 4, 4)).astype(np.float32)
        bn(Tensor(x))
        assert (bn.running_mean > 1.0).all()

    def test_eval_mode_uses_running_stats(self, rng):
        bn = BatchNorm2D(2, momentum=1.0)  # running stats = last batch stats
        x = rng.normal(3.0, 2.0, size=(32, 2, 4, 4)).astype(np.float32)
        bn(Tensor(x))
        bn.eval()
        out = bn(Tensor(x))
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), np.zeros(2), atol=1e-2)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            BatchNorm2D(3)(Tensor(np.zeros((2, 3))))

    def test_state_dict_includes_running_stats(self):
        bn = BatchNorm2D(3)
        state = bn.state_dict()
        assert "running_mean" in state
        assert "running_var" in state


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.normal(size=(4, 4)).astype(np.float32)
        np.testing.assert_array_equal(layer(Tensor(x)).data, x)

    def test_training_zeroes_and_scales(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100), dtype=np.float32)
        out = layer(Tensor(x)).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        surviving = out[out != 0]
        np.testing.assert_allclose(surviving, 2.0)  # inverted scaling

    def test_rate_zero_is_identity(self, rng):
        layer = Dropout(0.0, rng=rng)
        x = rng.normal(size=(3, 3)).astype(np.float32)
        assert layer(Tensor(x)).data is not None
        np.testing.assert_array_equal(layer(Tensor(x)).data, x)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestActivationsAndMisc:
    def test_sigmoid_module(self):
        from repro.nn import Sigmoid

        out = Sigmoid()(Tensor(np.array([0.0], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [0.5], rtol=1e-6)

    def test_tanh_module(self):
        from repro.nn import Tanh

        out = Tanh()(Tensor(np.array([0.0, 100.0], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-5)

    def test_zero_pad_module(self, rng):
        from repro.nn import ZeroPad2D

        x = Tensor(rng.normal(size=(1, 2, 3, 3)).astype(np.float32))
        out = ZeroPad2D(2)(x)
        assert out.shape == (1, 2, 7, 7)
        np.testing.assert_allclose(out.data[:, :, :2, :], 0.0)
        with pytest.raises(ValueError):
            ZeroPad2D(-1)

    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_leaky_relu_module(self):
        out = LeakyReLU(0.2)(Tensor(np.array([-1.0, 2.0], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [-0.2, 2.0], rtol=1e-6)

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(2, 2)).astype(np.float32))
        assert Identity()(x) is x

    def test_flatten(self, rng):
        out = Flatten()(Tensor(rng.normal(size=(3, 2, 4, 4)).astype(np.float32)))
        assert out.shape == (3, 32)


class TestSequential:
    def test_runs_in_order(self, rng):
        model = Sequential(Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng))
        out = model(Tensor(rng.normal(size=(5, 4)).astype(np.float32)))
        assert out.shape == (5, 2)

    def test_parameter_discovery_through_lists(self, rng):
        model = Sequential(Dense(4, 4, rng=rng), Dense(4, 4, rng=rng))
        assert len(model.parameters()) == 4  # 2 weights + 2 biases

    def test_train_eval_propagates(self, rng):
        model = Sequential(Dropout(0.5, rng=rng), Dense(4, 4, rng=rng))
        model.eval()
        assert not model.layers[0].training
        model.train()
        assert model.layers[0].training

    def test_append_and_indexing(self, rng):
        model = Sequential(Dense(4, 4, rng=rng))
        relu = ReLU()
        model.append(relu)
        assert model[1] is relu
        assert len(list(iter(model))) == 2
