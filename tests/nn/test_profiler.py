"""Per-op compiled-step profiler: zero-impact contract and report shape.

The profiler's core promise mirrors the compiled tape's own: arming it
changes *when* the clock is read, never *what* the step computes.  Replayed
losses, logits, and gradients must be bitwise identical with profiling on
and off, and disabling it must restore the branch-free armed loops.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import SGD, CrossEntropy, Tensor, use_kernel_mode
from repro.nn.compile import compile_tape
from repro.nn.profiler import (
    StepProfile,
    profile_model_step,
    render_profile_report,
)
from repro.nn.tape import Tape, tape_scope

NUM_CLASSES = 3
IMAGE_SHAPE = (1, 12, 12)
BATCH = 4


def _compiled_step():
    rng = np.random.default_rng(5)
    x = rng.normal(size=(BATCH, *IMAGE_SHAPE)).astype(np.float32)
    y = np.eye(NUM_CLASSES, dtype=np.float32)[rng.integers(0, NUM_CLASSES, BATCH)]
    model = build_model(
        "convnet", IMAGE_SHAPE, NUM_CLASSES, width=2, rng=np.random.default_rng(3)
    )
    model.train()
    optimizer = SGD(model.parameters(), lr=0.05)
    loss_fn = CrossEntropy()
    tape = Tape()
    with tape_scope(tape):
        logits = model(Tensor(x))
        loss = loss_fn(logits, y)
        optimizer.zero_grad()
        loss.backward()
    step = compile_tape(tape, loss, logits, (x, y))
    return step, model, optimizer, x, y


class TestProfileToggle:
    def test_profiled_replay_is_bitwise_identical(self):
        """Same feeds, profile off vs on vs off again: identical numerics."""
        with use_kernel_mode("compiled"):
            step, model, optimizer, x, y = _compiled_step()

            def replay():
                loss, logits = step.forward((x, y))
                optimizer.zero_grad()
                step.backward()
                grads = [p.grad.copy() for p in model.parameters() if p.grad is not None]
                return float(loss), logits.copy(), grads

            baseline = replay()
            step.enable_profile()
            profiled = replay()
            step.disable_profile()
            restored = replay()

        for run in (profiled, restored):
            assert run[0] == baseline[0]  # loss, exact
            np.testing.assert_array_equal(run[1], baseline[1])
            assert len(run[2]) == len(baseline[2])
            for got, want in zip(run[2], baseline[2]):
                np.testing.assert_array_equal(got, want)

    def test_disabled_profile_attribute_is_none(self):
        with use_kernel_mode("compiled"):
            step, *_ = _compiled_step()
        assert step.profile is None
        profile = step.enable_profile()
        assert step.profile is profile
        assert step.enable_profile() is profile  # idempotent
        assert step.disable_profile() is profile
        assert step.profile is None

    def test_profile_accumulates_per_slot(self):
        with use_kernel_mode("compiled"):
            step, model, optimizer, x, y = _compiled_step()
            profile = step.enable_profile()
            for _ in range(3):
                step.forward((x, y))
                step.backward()
        assert profile.steps == 3
        assert all(calls == 3 for calls in profile.fwd_calls)
        assert sum(profile.fwd_s) > 0.0
        assert sum(profile.bwd_s) > 0.0
        # Executed backward slots are called every step; skipped ones never.
        assert all(calls in (0, 3) for calls in profile.bwd_calls)

    def test_reset_zeroes_accumulators(self):
        with use_kernel_mode("compiled"):
            step, model, optimizer, x, y = _compiled_step()
            profile = step.enable_profile()
            step.forward((x, y))
            step.backward()
            profile.reset()
        assert profile.steps == 0
        assert sum(profile.fwd_calls) == 0
        assert profile.op_total_s == 0.0


class TestRows:
    def test_rows_aggregate_by_op_name(self):
        profile = StepProfile(["conv2d", "relu", "conv2d"], ["conv2d", "relu"])
        profile.fwd_s = [0.2, 0.05, 0.1]
        profile.fwd_calls = [2, 2, 2]
        profile.bwd_s = [0.3, 0.01]
        profile.bwd_calls = [2, 2]
        rows = profile.rows()
        assert [row.op for row in rows] == ["conv2d", "relu"]  # slowest first
        conv = rows[0]
        assert conv.entries == 2  # forward schedule slots only
        assert conv.fwd_s == pytest.approx(0.3)
        assert conv.bwd_s == pytest.approx(0.3)
        assert conv.total_s == pytest.approx(0.6)
        assert conv.calls == 6  # 2+2 forward + 2 backward


class TestHarness:
    def test_profile_model_step_coverage(self):
        """The op table must explain >= 90% of the measured step wall."""
        report = profile_model_step(
            model="convnet", image_shape=IMAGE_SHAPE, num_classes=NUM_CLASSES,
            width=2, batch=BATCH, steps=10, warmup=2,
        )
        assert report.steps == 10
        assert report.profile.steps == 10
        assert report.wall_s > 0.0
        assert 0.90 <= report.coverage <= 1.0, report.coverage

    def test_render_report_shape(self):
        report = profile_model_step(
            model="convnet", image_shape=IMAGE_SHAPE, num_classes=NUM_CLASSES,
            width=2, batch=2, steps=2, warmup=1,
        )
        text = render_profile_report(report)
        assert "profile: convnet" in text
        assert "coverage" in text
        assert "conv2d" in text
        top1 = render_profile_report(report, top=1)
        assert len(top1.splitlines()) < len(text.splitlines())

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            profile_model_step(model="transformer9000", steps=1, warmup=1)
