"""Unit tests for model persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Dense,
    ReLU,
    Sequential,
    Tensor,
    load_into,
    load_state,
    save_model,
    save_state,
)


def test_state_roundtrip(tmp_path, rng):
    state = {"a": rng.normal(size=(3, 3)).astype(np.float32), "b": np.arange(4.0)}
    path = tmp_path / "model.npz"
    save_state(state, path)
    loaded = load_state(path)
    assert set(loaded) == {"a", "b"}
    np.testing.assert_array_equal(loaded["a"], state["a"])
    np.testing.assert_array_equal(loaded["b"], state["b"])


def test_save_model_and_load_into(tmp_path, rng):
    model1 = Sequential(Dense(4, 8, rng=np.random.default_rng(1)), ReLU(), Dense(8, 2, rng=np.random.default_rng(2)))
    model2 = Sequential(Dense(4, 8, rng=np.random.default_rng(3)), ReLU(), Dense(8, 2, rng=np.random.default_rng(4)))
    path = tmp_path / "net.npz"
    save_model(model1, path)
    load_into(model2, path)
    x = rng.normal(size=(5, 4)).astype(np.float32)
    np.testing.assert_allclose(model1(Tensor(x)).data, model2(Tensor(x)).data)


def test_creates_parent_directories(tmp_path):
    path = tmp_path / "deep" / "nested" / "model.npz"
    save_state({"w": np.zeros(2)}, path)
    assert path.exists()


def test_rejects_foreign_archive(tmp_path):
    path = tmp_path / "foreign.npz"
    np.savez(path, something=np.zeros(3))
    with pytest.raises(ValueError, match="not a repro model archive"):
        load_state(path)
