"""Unit tests for weight initialisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import init


class TestFanComputation:
    def test_dense_shape(self):
        assert init._fan_in_out((10, 20)) == (10, 20)

    def test_conv_shape(self):
        # (out, in, kh, kw) = (8, 3, 3, 3): fan_in = 3*9, fan_out = 8*9
        assert init._fan_in_out((8, 3, 3, 3)) == (27, 72)

    def test_other_shapes_use_size(self):
        assert init._fan_in_out((5,)) == (5, 5)


class TestStatistics:
    def test_he_normal_std(self, rng):
        w = init.he_normal((1000, 100), rng)
        expected = np.sqrt(2.0 / 1000)
        assert np.std(w) == pytest.approx(expected, rel=0.05)
        assert w.dtype == np.float32

    def test_xavier_normal_std(self, rng):
        w = init.xavier_normal((500, 500), rng)
        expected = np.sqrt(2.0 / 1000)
        assert np.std(w) == pytest.approx(expected, rel=0.05)

    def test_lecun_normal_std(self, rng):
        w = init.lecun_normal((1000, 10), rng)
        assert np.std(w) == pytest.approx(np.sqrt(1.0 / 1000), rel=0.05)

    def test_uniform_bounds(self, rng):
        w = init.he_uniform((100, 100), rng)
        limit = np.sqrt(6.0 / 100)
        assert w.min() >= -limit
        assert w.max() <= limit

    def test_xavier_uniform_bounds(self, rng):
        w = init.xavier_uniform((50, 50), rng)
        limit = np.sqrt(6.0 / 100)
        assert np.abs(w).max() <= limit

    def test_zeros_and_ones(self, rng):
        np.testing.assert_array_equal(init.zeros((2, 2), rng), np.zeros((2, 2)))
        np.testing.assert_array_equal(init.ones((2, 2), rng), np.ones((2, 2)))


class TestDeterminism:
    @pytest.mark.parametrize(
        "name", ["he_normal", "he_uniform", "xavier_normal", "xavier_uniform", "lecun_normal"]
    )
    def test_same_seed_same_weights(self, name):
        fn = init.get_initializer(name)
        w1 = fn((8, 8), np.random.default_rng(7))
        w2 = fn((8, 8), np.random.default_rng(7))
        np.testing.assert_array_equal(w1, w2)


def test_get_initializer_unknown():
    with pytest.raises(KeyError, match="unknown initializer"):
        init.get_initializer("glorot")
