"""Unit tests for the autodiff Tensor: every op's forward value and gradient."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, is_grad_enabled, no_grad

from ..conftest import assert_grad_close, tape_gradient


class TestConstruction:
    def test_converts_ints_to_float32(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float32

    def test_preserves_float64(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_rejects_tensor_wrapping(self):
        with pytest.raises(TypeError):
            Tensor(Tensor([1.0]))

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24
        assert len(t) == 2

    def test_item_on_scalar(self):
        assert Tensor(np.float32(2.5)).item() == pytest.approx(2.5)

    def test_detach_shares_data_but_drops_tape(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))


class TestArithmetic:
    def test_add_forward_and_grad(self, rng):
        x = rng.normal(size=(3, 4)).astype(np.float32)
        y = rng.normal(size=(3, 4)).astype(np.float32)
        a = Tensor(x, requires_grad=True)
        b = Tensor(y, requires_grad=True)
        out = (a + b).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.ones_like(x))
        np.testing.assert_allclose(b.grad, np.ones_like(y))

    def test_add_broadcasting_grad(self, rng):
        x = rng.normal(size=(3, 4)).astype(np.float32)
        bias = rng.normal(size=(4,)).astype(np.float32)
        b = Tensor(bias, requires_grad=True)
        out = (Tensor(x) + b).sum()
        out.backward()
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_radd_with_scalar(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = (3.0 + t).sum()
        out.backward()
        np.testing.assert_allclose(out.data, 9.0)
        np.testing.assert_allclose(t.grad, [1.0, 1.0])

    def test_sub_grad_signs(self):
        a = Tensor([5.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a - b).backward()
        assert a.grad[0] == 1.0
        assert b.grad[0] == -1.0

    def test_rsub(self):
        t = Tensor([2.0], requires_grad=True)
        out = 10.0 - t
        out.backward()
        assert out.data[0] == 8.0
        assert t.grad[0] == -1.0

    def test_mul_grad(self, rng):
        x = rng.normal(size=(2, 3)).astype(np.float32)
        _, grad = tape_gradient(lambda t: (t * t).sum(), x)
        np.testing.assert_allclose(grad, 2 * x, rtol=1e-5)

    def test_div_grad_numeric(self, rng):
        x = rng.uniform(0.5, 2.0, size=(2, 3)).astype(np.float32)
        _, analytic = tape_gradient(lambda t: (1.0 / t).sum(), x)
        assert_grad_close(
            lambda arr: float((1.0 / arr).sum()), x, analytic
        )

    def test_pow_grad(self, rng):
        x = rng.uniform(0.5, 2.0, size=(4,)).astype(np.float32)
        _, grad = tape_gradient(lambda t: (t**3).sum(), x)
        np.testing.assert_allclose(grad, 3 * x**2, rtol=1e-4)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_neg(self):
        t = Tensor([1.0, -2.0], requires_grad=True)
        (-t).sum().backward()
        np.testing.assert_allclose(t.grad, [-1.0, -1.0])

    def test_matmul_grads(self, rng):
        a_val = rng.normal(size=(3, 4)).astype(np.float32)
        b_val = rng.normal(size=(4, 2)).astype(np.float32)
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ b_val.T, rtol=1e-5)
        np.testing.assert_allclose(b.grad, a_val.T @ np.ones((3, 2)), rtol=1e-5)


class TestElementwise:
    @pytest.mark.parametrize(
        "op_name",
        ["exp", "log", "sigmoid", "tanh", "abs", "relu", "sqrt"],
    )
    def test_unary_gradcheck(self, rng, op_name):
        x = rng.uniform(0.2, 1.5, size=(6,)).astype(np.float32)
        _, analytic = tape_gradient(lambda t: getattr(t, op_name)().sum(), x)

        def forward(arr):
            t = Tensor(arr)
            return float(getattr(t, op_name)().sum().item())

        assert_grad_close(forward, x, analytic)

    def test_relu_zero_below(self):
        t = Tensor([-1.0, 0.5], requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0])

    def test_leaky_relu_slope(self):
        t = Tensor([-2.0, 2.0], requires_grad=True)
        out = t.leaky_relu(0.1)
        np.testing.assert_allclose(out.data, [-0.2, 2.0], rtol=1e-6)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [0.1, 1.0])

    def test_clip_masks_gradient(self):
        t = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        x = rng.normal(size=(2, 3, 4)).astype(np.float32)
        t = Tensor(x, requires_grad=True)
        out = t.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1, 4)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(x))

    def test_sum_multiple_axes(self, rng):
        x = rng.normal(size=(2, 3, 4)).astype(np.float32)
        t = Tensor(x, requires_grad=True)
        t.sum(axis=(0, 2)).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(x))

    def test_mean_grad_scaling(self, rng):
        x = rng.normal(size=(4, 5)).astype(np.float32)
        t = Tensor(x, requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full_like(x, 1.0 / 20))

    def test_mean_axis(self, rng):
        x = rng.normal(size=(4, 5)).astype(np.float32)
        t = Tensor(x, requires_grad=True)
        t.mean(axis=0).sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(x, 1.0 / 4))

    def test_max_grad_routes_to_argmax(self):
        t = Tensor([[1.0, 3.0], [2.0, 0.0]], requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_max_splits_grad_between_ties(self):
        t = Tensor([[2.0, 2.0]], requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])


class TestExtendedReductions:
    def test_min_forward_and_grad(self):
        t = Tensor([[3.0, 1.0], [0.5, 2.0]], requires_grad=True)
        out = t.min(axis=1)
        np.testing.assert_allclose(out.data, [1.0, 0.5])
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_var_matches_numpy(self, rng):
        x = rng.normal(size=(4, 5)).astype(np.float32)
        t = Tensor(x)
        np.testing.assert_allclose(t.var().item(), x.var(), rtol=1e-4)
        np.testing.assert_allclose(t.var(axis=0).data, x.var(axis=0), rtol=1e-4)

    def test_var_gradcheck(self, rng):
        x = rng.normal(size=(6,)).astype(np.float32)
        _, analytic = tape_gradient(lambda t: t.var(), x)
        assert_grad_close(lambda arr: float(arr.var()), x, analytic)

    def test_std_matches_numpy(self, rng):
        x = rng.normal(size=(3, 7)).astype(np.float32)
        np.testing.assert_allclose(Tensor(x).std().item(), x.std(), rtol=1e-3)

    def test_std_stable_at_zero_variance(self):
        t = Tensor(np.full(4, 2.0, dtype=np.float32), requires_grad=True)
        out = t.std()
        out.backward()
        assert np.isfinite(t.grad).all()

    def test_stack_forward_and_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = Tensor.stack([a, b], axis=0)
        assert out.shape == (2, 2)
        (out * Tensor(np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32))).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0, 4.0])

    def test_stack_new_axis_position(self):
        a = Tensor(np.zeros((2, 3)))
        out = Tensor.stack([a, a, a], axis=1)
        assert out.shape == (2, 3, 3)

    def test_stack_empty_raises(self):
        with pytest.raises(ValueError):
            Tensor.stack([])


class TestShapeOps:
    def test_reshape_roundtrip_grad(self, rng):
        x = rng.normal(size=(2, 6)).astype(np.float32)
        t = Tensor(x, requires_grad=True)
        (t.reshape(3, 4) * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(x, 2.0))

    def test_reshape_minus_one(self):
        t = Tensor(np.zeros((4, 3)))
        assert t.reshape(2, -1).shape == (2, 6)

    def test_transpose_grad(self, rng):
        x = rng.normal(size=(2, 3)).astype(np.float32)
        t = Tensor(x, requires_grad=True)
        scale = np.array([[1.0], [2.0], [3.0]], dtype=np.float32)
        (t.transpose(1, 0) * Tensor(scale)).sum().backward()
        np.testing.assert_allclose(t.grad, np.tile(scale.T, (2, 1)).reshape(2, 3))

    def test_getitem_accumulates(self):
        t = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        (t[np.array([0, 0, 2])]).sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 0.0, 1.0])

    def test_pad2d_shape_and_grad(self, rng):
        x = rng.normal(size=(1, 1, 3, 3)).astype(np.float32)
        t = Tensor(x, requires_grad=True)
        padded = t.pad2d(2)
        assert padded.shape == (1, 1, 7, 7)
        padded.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(x))

    def test_pad2d_zero_is_identity(self):
        t = Tensor(np.ones((1, 1, 2, 2)))
        assert t.pad2d(0) is t

    def test_concatenate_grad_routing(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        out = Tensor.concatenate([a, b], axis=0)
        (out * Tensor(np.array([1.0, 2.0, 3.0], dtype=np.float32))).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0])


class TestBackwardMachinery:
    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_grad_accumulates_across_backwards(self):
        t = Tensor([1.0], requires_grad=True)
        out = t * 2.0
        out.backward()
        out2 = t * 2.0
        out2.backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        t = Tensor([2.0], requires_grad=True)
        a = t * 3.0
        b = t * 4.0
        (a + b).backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_deep_chain_does_not_recurse(self):
        # The topo sort is iterative; 5000 chained ops must not hit the
        # Python recursion limit.
        t = Tensor([1.0], requires_grad=True)
        out = t
        for _ in range(5000):
            out = out + 1.0
        out.backward()
        np.testing.assert_allclose(t.grad, [1.0])

    def test_no_grad_disables_tape(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = t * 2.0
        assert is_grad_enabled()
        assert not out.requires_grad

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        assert is_grad_enabled()
