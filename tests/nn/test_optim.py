"""Unit tests for optimisers and LR schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    AdamW,
    CosineAnnealingLR,
    ExponentialLR,
    RMSProp,
    StepLR,
    Tensor,
    get_optimizer,
)
from repro.nn.module import Parameter


def quadratic_step(optimizer, param, target=3.0):
    """One optimisation step of f(w) = (w - target)^2."""
    optimizer.zero_grad()
    loss = ((param - target) ** 2).sum()
    loss.backward()
    optimizer.step()
    return float(loss.item())


@pytest.mark.parametrize(
    "factory",
    [
        lambda p: SGD(p, lr=0.1),
        lambda p: SGD(p, lr=0.05, momentum=0.9),
        lambda p: SGD(p, lr=0.05, momentum=0.9, nesterov=True),
        lambda p: Adam(p, lr=0.2),
        lambda p: AdamW(p, lr=0.2, weight_decay=0.01),
        lambda p: RMSProp(p, lr=0.1),
        lambda p: RMSProp(p, lr=0.05, momentum=0.5),
    ],
    ids=["sgd", "sgd-mom", "nesterov", "adam", "adamw", "rmsprop", "rmsprop-mom"],
)
def test_all_optimizers_converge_on_quadratic(factory):
    param = Parameter(np.array([0.0], dtype=np.float32))
    optimizer = factory([param])
    for _ in range(200):
        quadratic_step(optimizer, param)
    assert param.data[0] == pytest.approx(3.0, abs=0.05)


class TestOptimizerBasics:
    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_skips_params_without_grad(self):
        a = Parameter(np.array([1.0], dtype=np.float32))
        b = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([a, b], lr=0.5)
        (a * 2.0).sum().backward()
        opt.step()
        assert a.data[0] != 1.0
        assert b.data[0] == 1.0

    def test_zero_grad_clears(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1)
        (p * 2.0).sum().backward()
        opt.zero_grad()
        assert p.grad is None

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([10.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0], dtype=np.float32)
        opt.step()
        assert p.data[0] < 10.0


class TestClipGradNorm:
    def test_clips_above_max(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.full(4, 10.0, dtype=np.float32)
        opt = SGD([p], lr=0.1)
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_leaves_small_gradients_alone(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.full(4, 0.1, dtype=np.float32)
        opt = SGD([p], lr=0.1)
        opt.clip_grad_norm(10.0)
        np.testing.assert_allclose(p.grad, 0.1)


class TestAdam:
    def test_bias_correction_first_step(self):
        # First Adam step should move by ~lr regardless of gradient scale.
        p = Parameter(np.array([0.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1e-4], dtype=np.float32)
        opt.step()
        assert abs(p.data[0]) == pytest.approx(0.1, rel=1e-3)

    def test_adamw_decouples_decay(self):
        # With zero gradient AdamW still decays weights; Adam does not.
        p1 = Parameter(np.array([5.0], dtype=np.float32))
        p2 = Parameter(np.array([5.0], dtype=np.float32))
        adamw = AdamW([p1], lr=0.1, weight_decay=0.1)
        adam = Adam([p2], lr=0.1, weight_decay=0.0)
        p1.grad = np.zeros(1, dtype=np.float32)
        p2.grad = np.zeros(1, dtype=np.float32)
        adamw.step()
        adam.step()
        assert p1.data[0] < 5.0
        assert p2.data[0] == pytest.approx(5.0)


class TestSchedulers:
    def _opt(self):
        return SGD([Parameter(np.zeros(1, dtype=np.float32))], lr=1.0)

    def test_step_lr(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01], rtol=1e-6)

    def test_cosine_reaches_min(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, total_epochs=10, min_lr=0.01)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.01, abs=1e-6)

    def test_cosine_monotone_decrease(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, total_epochs=5)
        previous = opt.lr
        for _ in range(5):
            sched.step()
            assert opt.lr <= previous
            previous = opt.lr

    def test_exponential(self):
        opt = self._opt()
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(self._opt(), total_epochs=0)


class TestRegistry:
    def test_builds_by_name(self):
        p = [Parameter(np.zeros(1, dtype=np.float32))]
        assert isinstance(get_optimizer("sgd", p, lr=0.1), SGD)
        assert isinstance(get_optimizer("adam", p), Adam)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown optimizer"):
            get_optimizer("lion", [Parameter(np.zeros(1))])
