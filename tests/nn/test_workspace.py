"""Tests for the kernel scratch-buffer arena (``repro.nn.workspace``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Sequential, Dense, ReLU, Tensor, get_workspace, use_kernel_mode
from repro.nn.workspace import Workspace


class TestWorkspace:
    def test_acquire_returns_requested_shape_and_dtype(self):
        ws = Workspace()
        buf = ws.acquire((3, 4), np.float32)
        assert buf.shape == (3, 4)
        assert buf.dtype == np.float32
        assert ws.misses == 1

    def test_release_then_acquire_reuses_buffer(self):
        ws = Workspace()
        buf = ws.acquire((8,), np.float32)
        ws.release(buf)
        again = ws.acquire((8,), np.float32)
        assert again is buf
        assert ws.hits == 1
        assert ws.misses == 1

    def test_distinct_shapes_do_not_cross_pollinate(self):
        ws = Workspace()
        a = ws.acquire((4,), np.float32)
        ws.release(a)
        b = ws.acquire((5,), np.float32)
        assert b is not a
        assert ws.hits == 0

    def test_distinct_dtypes_keyed_separately(self):
        ws = Workspace()
        a = ws.acquire((4,), np.float32)
        ws.release(a)
        b = ws.acquire((4,), np.float64)
        assert b is not a
        assert b.dtype == np.float64

    def test_acquire_zeros_wipes_reused_buffer(self):
        ws = Workspace()
        buf = ws.acquire((6,), np.float32)
        buf[:] = 7.0
        ws.release(buf)
        again = ws.acquire_zeros((6,), np.float32)
        assert again is buf
        assert np.all(again == 0.0)

    def test_release_ignores_views(self):
        # A view's base may alias live data, so views are never pooled.
        ws = Workspace()
        buf = ws.acquire((4, 4), np.float32)
        ws.release(buf[1:])
        assert ws.num_free == 0

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError, match="max_per_key"):
            Workspace(max_per_key=0)

    def test_free_list_capped(self):
        ws = Workspace(max_per_key=2)
        bufs = [ws.acquire((3,), np.float32) for _ in range(4)]
        for buf in bufs:
            ws.release(buf)
        assert ws.num_free == 2
        assert ws.dropped == 2

    def test_clear_empties_free_lists(self):
        ws = Workspace()
        ws.release(ws.acquire((3,), np.float32))
        assert ws.num_free == 1
        ws.clear()
        assert ws.num_free == 0
        assert ws.bytes_free == 0

    def test_bytes_free_accounting(self):
        ws = Workspace()
        ws.release(ws.acquire((10,), np.float32))
        assert ws.bytes_free == 40


class TestWorkspaceIntegration:
    def test_train_eval_transitions_flush_workspace(self):
        ws = get_workspace()
        model = Sequential(Dense(4, 3), ReLU())
        ws.release(ws.acquire((9,), np.float32))
        assert ws.num_free > 0
        model.eval()
        assert ws.num_free == 0
        ws.release(ws.acquire((9,), np.float32))
        model.train()
        assert ws.num_free == 0

    def test_leaving_fast_mode_flushes_workspace(self):
        ws = get_workspace()
        ws.release(ws.acquire((7,), np.float32))
        with use_kernel_mode("reference"):
            assert ws.num_free == 0

    def test_conv_training_populates_and_reuses_buffers(self):
        from repro.nn.functional import conv2d

        ws = get_workspace()
        ws.clear()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        with use_kernel_mode("fast"):
            for _ in range(3):
                xt = Tensor(x, requires_grad=True)
                wt = Tensor(w, requires_grad=True)
                out = conv2d(xt, wt, None, stride=1, padding=1)
                out.backward(np.ones_like(out.data))
        assert ws.hits > 0
        ws.clear()


class TestDtypePromotion:
    """float32 is the working dtype; float64 survives only for explicit
    float64 ndarrays (numerical gradient checks)."""

    def test_python_scalar_becomes_float32(self):
        assert Tensor(1.5).dtype == np.float32

    def test_python_list_becomes_float32(self):
        assert Tensor([1.0, 2.0]).dtype == np.float32

    def test_float64_ndarray_preserved(self):
        assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float64

    def test_int_ndarray_coerced_to_float32(self):
        assert Tensor(np.arange(3)).dtype == np.float32

    def test_float32_ops_stay_float32(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        out = ((a * 2.0 + 1.0) / 3.0 - 0.5).sum()
        assert out.dtype == np.float32
        out.backward()
        assert a.grad.dtype == np.float32
