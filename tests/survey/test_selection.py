"""Unit tests for the Table I catalog and the §III-A selection procedure."""

from __future__ import annotations

import pytest

from repro.survey import (
    APPROACHES,
    TABLE1_CANDIDATES,
    candidates_for,
    render_table1,
    select_representatives,
)


class TestCatalog:
    def test_fifteen_rows_three_per_approach(self):
        assert len(TABLE1_CANDIDATES) == 15
        for approach in APPROACHES:
            assert len(candidates_for(approach)) == 3

    def test_five_approaches(self):
        assert APPROACHES == (
            "Label Smoothing",
            "Label Correction",
            "Robust Loss",
            "Knowledge Distillation",
            "Ensemble",
        )

    def test_unknown_approach(self):
        with pytest.raises(KeyError):
            candidates_for("Data Augmentation")

    def test_asterisked_rows_meet_all_criteria(self):
        # The three paper-asterisked representatives are the all-criteria rows.
        qualifying = {c.technique for c in TABLE1_CANDIDATES if c.criteria.all_met()}
        assert qualifying == {
            "Label Relaxation",
            "Meta Label Correction",
            "Active-Passive Losses",
        }


class TestSelection:
    def test_one_representative_per_approach(self):
        results = select_representatives()
        assert set(results) == set(APPROACHES)

    def test_direct_selections_match_paper(self):
        results = select_representatives()
        assert results["Label Smoothing"].representative.technique == "Label Relaxation"
        assert not results["Label Smoothing"].reimplemented
        assert results["Label Correction"].representative.technique == "Meta Label Correction"
        assert results["Robust Loss"].representative.technique == "Active-Passive Losses"

    def test_kd_and_ensemble_are_reimplemented(self):
        # Paper §III-A: no KD/Ensemble candidate met all criteria, so those
        # representatives were re-implemented from the articles' descriptions.
        results = select_representatives()
        assert results["Knowledge Distillation"].reimplemented
        assert results["Ensemble"].reimplemented

    def test_result_str_mentions_reimplementation(self):
        results = select_representatives()
        assert "re-implemented" in str(results["Ensemble"])
        assert "re-implemented" not in str(results["Robust Loss"])


class TestRendering:
    def test_render_marks_representatives(self):
        text = render_table1()
        assert "Label Relaxation*" in text
        assert "Meta Label Correction*" in text
        assert "Active-Passive Losses*" in text
        # Non-qualifying rows are not starred.
        assert "OLS*" not in text

    def test_render_has_all_rows(self):
        text = render_table1()
        for candidate in TABLE1_CANDIDATES:
            assert candidate.technique in text
