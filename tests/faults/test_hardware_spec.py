"""HardwareFaultSpec: validation, labels, and round-trip parsing."""

from __future__ import annotations

import pytest

from repro.faults.hardware import (
    DEFAULT_HW_RATES,
    FaultTarget,
    HardwareFaultSpec,
    HardwareFaultType,
    bit_flip,
    hardware_spec_from_label,
    random_value,
    stuck_at_0,
    stuck_at_1,
)


class TestConstruction:
    def test_strings_coerce_to_enums(self):
        spec = HardwareFaultSpec(fault_type="bit_flip", rate=0.01, target="weight")
        assert spec.fault_type is HardwareFaultType.BIT_FLIP
        assert spec.target is FaultTarget.WEIGHT

    def test_default_target_is_activation(self):
        assert bit_flip(1e-3).target is FaultTarget.ACTIVATION

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rate_out_of_range_rejected(self, rate):
        with pytest.raises(ValueError, match="rate"):
            bit_flip(rate)

    @pytest.mark.parametrize("prob", [-0.01, 1.01])
    def test_tensor_probability_out_of_range_rejected(self, prob):
        with pytest.raises(ValueError, match="tensor_probability"):
            bit_flip(0.1, tensor_probability=prob)

    @pytest.mark.parametrize("bit", [-1, 32])
    def test_bit_out_of_range_rejected(self, bit):
        with pytest.raises(ValueError, match="bit"):
            bit_flip(0.1, bit=bit)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            HardwareFaultSpec(fault_type="gamma_ray", rate=0.1)

    def test_shorthands_set_their_type(self):
        assert stuck_at_0(0.1).fault_type is HardwareFaultType.STUCK_AT_0
        assert stuck_at_1(0.1).fault_type is HardwareFaultType.STUCK_AT_1
        assert random_value(0.1).fault_type is HardwareFaultType.RANDOM_VALUE

    def test_default_rates_are_probabilities(self):
        assert all(0.0 < rate < 1.0 for rate in DEFAULT_HW_RATES)


class TestLabels:
    def test_simple_label(self):
        assert bit_flip(0.001).label == "bit_flip@0.001:activation"

    def test_label_carries_optional_fields(self):
        spec = stuck_at_1(1e-4, target="weight", tensor_probability=0.5, bit=30)
        assert spec.label == "stuck_at_1@0.0001:weight|p0.5|b30"

    @pytest.mark.parametrize("spec", [
        bit_flip(0.001),
        bit_flip(0.5, target="weight"),
        stuck_at_0(1e-4, bit=31),
        stuck_at_1(0.01, tensor_probability=0.25),
        random_value(0.05, target="weight", tensor_probability=0.9),
    ])
    def test_label_round_trips(self, spec):
        assert hardware_spec_from_label(spec.label) == spec

    def test_none_parses_to_none(self):
        assert hardware_spec_from_label("none") is None
        assert hardware_spec_from_label("") is None
        assert hardware_spec_from_label("  ") is None

    @pytest.mark.parametrize("label", [
        "bit_flip", "bit_flip@x:activation", "bit_flip@0.1:nowhere",
        "cosmic@0.1:activation", "bit_flip@0.1:activation|z9",
    ])
    def test_garbage_labels_raise(self, label):
        with pytest.raises(ValueError, match="label"):
            hardware_spec_from_label(label)
