"""HardwareFaultInjector: determinism, bit semantics, and clean restoration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.hardware import (
    HardwareFaultInjector,
    bit_flip,
    derive_site_seed,
    hardware_fault_injection,
    random_value,
    stuck_at_0,
    stuck_at_1,
)
from repro.models.registry import build_model
from repro.nn import Tensor, no_grad


def sample(shape=(4, 64), seed=0) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


class TestDeterminism:
    def test_same_seed_identical_flips(self):
        a, b = sample(), sample()
        first = HardwareFaultInjector(bit_flip(0.05), seed=7, record_sites=True)
        second = HardwareFaultInjector(bit_flip(0.05), seed=7, record_sites=True)
        first.perturb("conv2d", a)
        second.perturb("conv2d", b)
        assert first.flip_signature() == second.flip_signature()
        assert first.flip_signature()  # non-empty at this rate and size
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a, b = sample(), sample()
        HardwareFaultInjector(bit_flip(0.05), seed=1).perturb("conv2d", a)
        HardwareFaultInjector(bit_flip(0.05), seed=2).perturb("conv2d", b)
        assert not np.array_equal(a, b)

    def test_site_visits_draw_independently(self):
        arr = sample()
        injector = HardwareFaultInjector(bit_flip(0.05), seed=3, record_sites=True)
        injector.perturb("dense", arr.copy())
        injector.perturb("dense", arr.copy())
        sites = {flip.site for flip in injector.flips}
        assert sites == {"dense#0", "dense#1"}

    def test_derive_site_seed_is_crc32_stable(self):
        # Pinned value: catches accidental reformulation of the derivation,
        # which would silently change every campaign's flip sites.
        assert derive_site_seed(7, "bit_flip@0.001:activation", "conv2d", 0) == \
            derive_site_seed(7, "bit_flip@0.001:activation", "conv2d", 0)
        assert derive_site_seed(7, "x", "conv2d", 0) != derive_site_seed(8, "x", "conv2d", 0)
        assert derive_site_seed(7, "x", "conv2d", 0) != derive_site_seed(7, "x", "conv2d", 1)


class TestFaultSemantics:
    def test_rate_zero_touches_nothing(self):
        arr = sample()
        before = arr.copy()
        count = HardwareFaultInjector(bit_flip(0.0), seed=0).perturb("conv2d", arr)
        assert count == 0
        np.testing.assert_array_equal(arr, before)

    def test_tensor_probability_zero_skips_every_tensor(self):
        arr = sample()
        before = arr.copy()
        injector = HardwareFaultInjector(
            bit_flip(1.0, tensor_probability=0.0), seed=0
        )
        for _ in range(5):
            assert injector.perturb("conv2d", arr) == 0
        np.testing.assert_array_equal(arr, before)
        assert injector.stats.tensors_seen == 5
        assert injector.stats.tensors_hit == 0

    def test_stuck_at_0_clears_the_bit(self):
        arr = sample()
        HardwareFaultInjector(stuck_at_0(1.0, bit=31), seed=0).perturb("dense", arr)
        # Bit 31 is the sign bit: everything becomes non-negative.
        assert (arr >= 0).all()

    def test_stuck_at_1_sets_the_bit(self):
        arr = np.abs(sample())
        HardwareFaultInjector(stuck_at_1(1.0, bit=31), seed=0).perturb("dense", arr)
        assert (np.signbit(arr) | (arr == 0)).all()

    def test_bit_flip_twice_restores(self):
        arr = sample()
        before = arr.copy()
        spec = bit_flip(1.0, bit=12)
        # Same seed + same visit index → same positions; XOR is an involution.
        HardwareFaultInjector(spec, seed=5).perturb("conv2d", arr)
        assert not np.array_equal(arr, before)
        HardwareFaultInjector(spec, seed=5).perturb("conv2d", arr)
        np.testing.assert_array_equal(arr, before)

    def test_random_value_stays_in_tensor_range(self):
        arr = sample()
        amax = float(np.abs(arr).max())
        HardwareFaultInjector(random_value(1.0), seed=0).perturb("dense", arr)
        assert (np.abs(arr) <= amax + 1e-6).all()

    def test_non_float32_rejected_for_bit_faults(self):
        arr = np.zeros(8, dtype=np.float64)
        with pytest.raises(TypeError, match="float32"):
            HardwareFaultInjector(bit_flip(1.0), seed=0).perturb("dense", arr)

    def test_non_contiguous_array_matches_contiguous(self):
        base = sample((8, 8))
        transposed = np.ascontiguousarray(base.T).T  # F-contiguous view
        assert not transposed.flags["C_CONTIGUOUS"]
        contiguous = transposed.copy()
        spec = bit_flip(0.2)
        HardwareFaultInjector(spec, seed=9).perturb("conv2d", transposed)
        HardwareFaultInjector(spec, seed=9).perturb("conv2d", contiguous)
        np.testing.assert_array_equal(np.asarray(transposed), contiguous)

    def test_stats_tally(self):
        injector = HardwareFaultInjector(bit_flip(1.0), seed=0)
        count = injector.perturb("dense", sample((2, 4)))
        assert count == 8
        assert injector.stats.tensors_seen == 1
        assert injector.stats.tensors_hit == 1
        assert injector.stats.elements_faulted == 8


@pytest.fixture(scope="module")
def convnet():
    return build_model("convnet", image_shape=(3, 8, 8), num_classes=10, seed=3).eval()


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(1).random((6, 3, 8, 8)).astype(np.float32)


def forward(model, images) -> np.ndarray:
    with no_grad():
        return model(Tensor(images)).data


class TestInjectionContext:
    def test_activation_context_corrupts_then_restores(self, convnet, images):
        clean = forward(convnet, images)
        with hardware_fault_injection(bit_flip(0.01), seed=4) as injector:
            faulty = forward(convnet, images)
        assert injector.stats.elements_faulted > 0
        assert not np.array_equal(faulty, clean)
        # Exiting the context restores bitwise-clean inference.
        np.testing.assert_array_equal(forward(convnet, images), clean)

    def test_weight_context_restores_parameters_bitwise(self, convnet, images):
        saved = [param.data.copy() for _, param in convnet.named_parameters()]
        clean = forward(convnet, images)
        with hardware_fault_injection(
            bit_flip(0.01, target="weight"), seed=4, model=convnet
        ) as injector:
            faulty = forward(convnet, images)
        assert injector.stats.elements_faulted > 0
        assert not np.array_equal(faulty, clean)
        for (name, param), before in zip(convnet.named_parameters(), saved):
            np.testing.assert_array_equal(param.data, before, err_msg=name)
        np.testing.assert_array_equal(forward(convnet, images), clean)

    def test_weight_target_requires_model(self):
        with pytest.raises(ValueError, match="model"):
            with hardware_fault_injection(bit_flip(0.1, target="weight"), seed=0):
                pass

    def test_accepts_label_strings(self, convnet, images):
        with hardware_fault_injection("bit_flip@0.01:activation", seed=4) as injector:
            forward(convnet, images)
        assert injector.spec == bit_flip(0.01)

    def test_none_label_rejected(self):
        with pytest.raises(ValueError, match="none"):
            hardware_fault_injection("none", seed=0)

    def test_same_seed_reproduces_faulty_outputs(self, convnet, images):
        with hardware_fault_injection(bit_flip(0.01), seed=11):
            first = forward(convnet, images)
        with hardware_fault_injection(bit_flip(0.01), seed=11):
            second = forward(convnet, images)
        np.testing.assert_array_equal(first, second)

    def test_contexts_nest(self, convnet, images):
        clean = forward(convnet, images)
        with hardware_fault_injection(bit_flip(0.01), seed=1):
            with hardware_fault_injection(bit_flip(0.01), seed=2):
                inner = forward(convnet, images)
            with hardware_fault_injection(bit_flip(0.01), seed=2):
                inner_again = forward(convnet, images)
        np.testing.assert_array_equal(inner, inner_again)
        np.testing.assert_array_equal(forward(convnet, images), clean)
