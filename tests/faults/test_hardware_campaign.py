"""Hardware campaigns: determinism, serial==parallel, checkpoint resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ScaleSettings
from repro.faults.hardware import (
    HardwareCampaignResult,
    HardwareCampaignUnit,
    hardware_results_equivalent,
    run_campaign,
    run_campaign_unit,
)

#: Tiny scale: each cell fits in a couple of seconds.
SCALE = ScaleSettings(
    name="hw-test",
    dataset_sizes={"pneumonia": (48, 24)},
    image_size=8,
    epochs=2,
    batch_size=16,
    repeats=1,
)


def unit(**overrides) -> HardwareCampaignUnit:
    base = dict(
        dataset="pneumonia", model="convnet", scale=SCALE,
        rate=1e-2, trials=2,
    )
    base.update(overrides)
    return HardwareCampaignUnit(**base)


class TestUnit:
    def test_key_is_stable_and_scoped(self):
        u = unit()
        assert u.key == (
            "hw|pneumonia|convnet|baseline|none|bit_flip@0.01:activation"
            "|t2|rep0|hw-test"
        )
        assert unit(rate=1e-3).key != u.key
        assert unit(trials=3).key != u.key

    def test_trial_seeds_differ_by_trial(self):
        u = unit()
        assert u.trial_seed(0) != u.trial_seed(1)
        assert u.trial_seed(0) == unit().trial_seed(0)

    def test_invalid_fields_fail_at_construction(self):
        with pytest.raises(ValueError):
            unit(trials=0)
        with pytest.raises(ValueError):
            unit(rate=2.0)
        with pytest.raises(ValueError):
            unit(hw_type="gamma_ray")


class TestRunUnit:
    def test_rerun_is_identical(self):
        first = run_campaign_unit(unit())
        second = run_campaign_unit(unit())
        assert hardware_results_equivalent(first, second)
        assert len(first.trials) == 2
        assert 0.0 <= first.clean_accuracy <= 1.0
        for trial in first.trials:
            assert 0.0 <= trial["accuracy"] <= 1.0
            assert 0.0 <= trial["sdc_rate"] <= 1.0
            assert trial["faults"] > 0  # rate 1e-2 over convnet activations

    def test_trials_use_different_seeds(self):
        result = run_campaign_unit(unit(trials=3))
        # At this rate each trial lands on different fault sites; fault
        # counts all matching would mean the seed chain collapsed.
        assert len({t["faults"] for t in result.trials}) > 1

    def test_weight_target_runs_and_restores(self):
        result = run_campaign_unit(unit(target="weight", rate=1e-3))
        clean_again = run_campaign_unit(unit(target="weight", rate=1e-3))
        assert hardware_results_equivalent(result, clean_again)
        assert result.clean_accuracy == clean_again.clean_accuracy

    def test_dict_round_trip(self):
        result = run_campaign_unit(unit())
        assert hardware_results_equivalent(
            HardwareCampaignResult.from_dict(result.to_dict()), result
        )


class TestRunCampaign:
    def units(self):
        return [unit(rate=1e-3), unit(rate=1e-2)]

    def test_serial_matches_parallel(self):
        serial = run_campaign(self.units(), jobs=1)
        parallel = run_campaign(self.units(), jobs=2)
        assert len(serial) == len(parallel) == 2
        for a, b in zip(serial, parallel):
            assert hardware_results_equivalent(a, b)

    def test_checkpoint_resume_skips_completed(self, tmp_path):
        journal = tmp_path / "hw.jsonl"
        first = run_campaign(self.units(), checkpoint=journal)
        seen = []
        second = run_campaign(
            self.units(), checkpoint=journal, progress=seen.append
        )
        assert len(seen) == 2
        for a, b in zip(first, second):
            assert hardware_results_equivalent(a, b)
        # Replayed results decode through the codec, not re-measurement:
        # the journal is the source of truth on resume.
        text = journal.read_text()
        assert text.count('"kind": "cell"') == 2

    def test_trace_records_campaign_spans(self, tmp_path):
        from repro.telemetry import read_trace, validate_trace

        trace = tmp_path / "hw-trace.jsonl"
        run_campaign([unit()], trace=trace)
        events = read_trace(trace)
        stats = validate_trace(events)
        assert stats["spans"] > 0
        names = {event.get("name") for event in events}
        assert {"hw_campaign", "hw_unit", "hw_fit", "hw_trial"} <= names


class TestCompiledKernelMode:
    """Hardware campaigns compose with the compiled autodiff tape.

    Fitting runs compiled (record-once, replay); the armed injection tap
    around each measurement trial forces the per-step eager downgrade.  The
    campaign result must be bitwise-identical to plain fast-eager mode.
    """

    @staticmethod
    def _fresh_fit():
        # The fitted-cell memo is keyed without the kernel mode (the bitwise
        # guarantee makes it mode-agnostic); clear it so each mode actually
        # trains instead of replaying a module fitted by an earlier test.
        from repro.faults.hardware.campaign import _FITTED_CACHE

        _FITTED_CACHE.clear()

    def test_campaign_matches_fast_mode(self):
        from repro.nn import use_kernel_mode

        self._fresh_fit()
        with use_kernel_mode("compiled"):
            compiled = run_campaign_unit(unit())
        self._fresh_fit()
        with use_kernel_mode("fast"):
            fast = run_campaign_unit(unit())
        assert hardware_results_equivalent(compiled, fast)
        assert compiled.clean_accuracy == fast.clean_accuracy

    def test_compiled_fit_replays_steps(self):
        from repro.nn import use_kernel_mode
        from repro.telemetry import RecordingTelemetry, telemetry_scope

        self._fresh_fit()
        tel = RecordingTelemetry()
        with telemetry_scope(tel), use_kernel_mode("compiled"):
            run_campaign_unit(unit())
        (fit_event,) = [e for e in tel.events if e.get("name") == "compiled_fit"]
        assert fit_event["compiled_steps"] > 0
        # The injection tap only arms around measurement passes, never the
        # fit, so no training step should have downgraded because of it.
        assert fit_event["tap_fallback_steps"] == 0
