"""Unit tests for fault specifications and their combination algebra."""

from __future__ import annotations

import pytest

from repro.faults import (
    PAPER_FAULT_RATES,
    CombinedFaultSpec,
    FaultSpec,
    FaultType,
    mislabelling,
    removal,
    repetition,
)


class TestFaultSpec:
    def test_shorthand_constructors(self):
        assert mislabelling(0.1).fault_type is FaultType.MISLABELLING
        assert repetition(0.2).fault_type is FaultType.REPETITION
        assert removal(0.3).fault_type is FaultType.REMOVAL

    def test_accepts_string_fault_type(self):
        spec = FaultSpec("mislabelling", 0.1)
        assert spec.fault_type is FaultType.MISLABELLING

    def test_label_format(self):
        assert mislabelling(0.3).label == "mislabelling@30%"
        assert removal(0.05).label == "removal@5%"

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            mislabelling(-0.1)
        with pytest.raises(ValueError):
            mislabelling(1.5)

    def test_paper_rates(self):
        assert PAPER_FAULT_RATES == (0.1, 0.3, 0.5)

    def test_frozen(self):
        spec = mislabelling(0.1)
        with pytest.raises(AttributeError):
            spec.rate = 0.5


class TestCombination:
    def test_and_composes_two(self):
        combo = mislabelling(0.3) & removal(0.3)
        assert isinstance(combo, CombinedFaultSpec)
        assert combo.label == "mislabelling@30%+removal@30%"

    def test_and_chains_three(self):
        combo = mislabelling(0.1) & removal(0.1) & repetition(0.1)
        assert len(combo.faults) == 3
        assert [f.fault_type for f in combo.faults] == [
            FaultType.MISLABELLING,
            FaultType.REMOVAL,
            FaultType.REPETITION,
        ]

    def test_spec_and_combined(self):
        combo = removal(0.1) & repetition(0.1)
        wider = mislabelling(0.1) & combo
        assert len(wider.faults) == 3
        assert wider.faults[0].fault_type is FaultType.MISLABELLING

    def test_empty_combination_rejected(self):
        with pytest.raises(ValueError):
            CombinedFaultSpec(())
