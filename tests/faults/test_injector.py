"""Unit tests for the fault injector (the TF-DM substitute)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.faults import (
    FaultReport,
    inject,
    inject_mislabelling,
    inject_removal,
    inject_repetition,
    mislabelling,
    removal,
    repetition,
)


@pytest.fixture
def dataset(rng):
    n, k = 100, 5
    images = rng.random((n, 1, 4, 4)).astype(np.float32)
    labels = np.arange(n) % k
    return ArrayDataset(images, labels, k, "toy")


class TestMislabelling:
    def test_flips_exactly_rate_fraction(self, dataset, rng):
        faulty, report = inject_mislabelling(dataset, 0.3, rng)
        changed = (faulty.labels != dataset.labels).sum()
        assert changed == 30
        assert report.num_mislabelled == 30
        assert len(faulty) == len(dataset)

    def test_new_labels_differ_and_are_valid(self, dataset, rng):
        faulty, report = inject_mislabelling(dataset, 0.5, rng)
        flipped = report.mislabelled_indices
        assert (faulty.labels[flipped] != dataset.labels[flipped]).all()
        assert faulty.labels.max() < dataset.num_classes
        assert faulty.labels.min() >= 0

    def test_images_untouched(self, dataset, rng):
        faulty, _ = inject_mislabelling(dataset, 0.5, rng)
        np.testing.assert_array_equal(faulty.images, dataset.images)

    def test_original_not_mutated(self, dataset, rng):
        before = dataset.labels.copy()
        inject_mislabelling(dataset, 0.5, rng)
        np.testing.assert_array_equal(dataset.labels, before)

    def test_zero_rate_changes_nothing(self, dataset, rng):
        faulty, report = inject_mislabelling(dataset, 0.0, rng)
        np.testing.assert_array_equal(faulty.labels, dataset.labels)
        assert report.num_mislabelled == 0

    def test_protected_indices_never_flipped(self, dataset, rng):
        protected = np.arange(0, 50)
        faulty, report = inject_mislabelling(dataset, 0.5, rng, protected_indices=protected)
        np.testing.assert_array_equal(faulty.labels[:50], dataset.labels[:50])
        assert (report.mislabelled_indices >= 50).all()


class TestPairwiseMislabelling:
    """The class-dependent pair-noise extension (beyond the paper's protocol)."""

    def test_flips_to_successor_class(self, dataset, rng):
        faulty, report = inject_mislabelling(dataset, 0.4, rng, mode="pairwise")
        flipped = report.mislabelled_indices
        expected = (dataset.labels[flipped] + 1) % dataset.num_classes
        np.testing.assert_array_equal(faulty.labels[flipped], expected)

    def test_count_matches_rate(self, dataset, rng):
        _, report = inject_mislabelling(dataset, 0.2, rng, mode="pairwise")
        assert report.num_mislabelled == 20

    def test_unknown_mode_rejected(self, dataset, rng):
        with pytest.raises(ValueError, match="mode"):
            inject_mislabelling(dataset, 0.2, rng, mode="adversarial")


class TestRepetition:
    def test_appends_duplicates(self, dataset, rng):
        faulty, report = inject_repetition(dataset, 0.3, rng)
        assert len(faulty) == 130
        assert report.num_repeated == 30
        # Appended rows are copies of original rows.
        for new_idx, src in zip(range(100, 130), np.sort(report.repeated_source_indices)):
            pass  # order of sources is sorted in the report, not positionally
        sources = report.repeated_source_indices
        assert sources.min() >= 0
        assert sources.max() < 100

    def test_duplicates_match_sources(self, dataset, rng):
        faulty, _ = inject_repetition(dataset, 0.1, rng)
        appended = faulty.images[100:]
        # Every appended image exists in the original data.
        flat_orig = dataset.images.reshape(100, -1)
        for img in appended.reshape(len(appended), -1):
            assert (flat_orig == img).all(axis=1).any()

    def test_zero_rate(self, dataset, rng):
        faulty, report = inject_repetition(dataset, 0.0, rng)
        assert len(faulty) == 100
        assert report.num_repeated == 0


class TestRemoval:
    def test_removes_rate_fraction(self, dataset, rng):
        faulty, report = inject_removal(dataset, 0.3, rng)
        assert len(faulty) == 70
        assert report.num_removed == 30

    def test_never_deletes_everything(self, dataset, rng):
        faulty, _ = inject_removal(dataset, 1.0, rng)
        assert len(faulty) >= 1

    def test_remaining_rows_are_originals(self, dataset, rng):
        faulty, report = inject_removal(dataset, 0.5, rng)
        keep = np.ones(100, dtype=bool)
        keep[report.removed_indices] = False
        np.testing.assert_array_equal(faulty.images, dataset.images[keep])
        np.testing.assert_array_equal(faulty.labels, dataset.labels[keep])

    def test_protected_indices_survive(self, dataset, rng):
        protected = np.arange(90, 100)
        _, report = inject_removal(dataset, 0.5, rng, protected_indices=protected)
        assert not set(report.removed_indices) & set(protected)


class TestInjectDispatch:
    def test_single_spec(self, dataset):
        faulty, report = inject(dataset, mislabelling(0.2), seed=1)
        assert report.num_mislabelled == 20
        assert "mislabelling@20%" in report.spec_label

    def test_seed_reproducibility(self, dataset):
        a, _ = inject(dataset, mislabelling(0.4), seed=9)
        b, _ = inject(dataset, mislabelling(0.4), seed=9)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_rng_and_seed_mutually_exclusive(self, dataset, rng):
        with pytest.raises(ValueError):
            inject(dataset, mislabelling(0.1), rng=rng, seed=1)

    def test_combined_spec_applied_in_order(self, dataset):
        combo = mislabelling(0.2) & removal(0.1)
        faulty, report = inject(dataset, combo, seed=2)
        assert len(faulty) == 90
        assert report.num_mislabelled == 20
        assert report.num_removed == 10
        assert report.spec_label == "mislabelling@20%+removal@10%"

    def test_combined_all_three(self, dataset):
        combo = mislabelling(0.1) & removal(0.1) & repetition(0.1)
        faulty, report = inject(dataset, combo, seed=3)
        # 100 -> mislabel (100) -> remove 10 (90) -> repeat 9 (99)
        assert len(faulty) == 99

    def test_protected_remap_through_removal(self, dataset):
        protected = np.arange(0, 10)
        combo = removal(0.5) & mislabelling(0.5)
        faulty, report = inject(dataset, combo, seed=4, protected_indices=protected)
        after = report.protected_indices_after
        assert after is not None
        assert len(after) == 10
        # The protected rows kept their original labels and images.
        np.testing.assert_array_equal(faulty.labels[after], dataset.labels[:10])
        np.testing.assert_array_equal(faulty.images[after], dataset.images[:10])

    def test_report_summary_readable(self, dataset):
        _, report = inject(dataset, mislabelling(0.2), seed=1)
        text = report.summary()
        assert "20 mislabelled" in text
        assert "100 -> 100" in text


class TestFaultReportMerge:
    def test_merge_concatenates(self):
        a = FaultReport("x", 10, 10, mislabelled_indices=np.array([1, 2]))
        b = FaultReport("y", 10, 8, removed_indices=np.array([3]))
        merged = a.merge(b)
        assert merged.spec_label == "x+y"
        assert merged.original_size == 10
        assert merged.resulting_size == 8
        assert merged.num_mislabelled == 2
        assert merged.num_removed == 1
