"""Randomized invariant tests for the fault injectors.

Each invariant is checked over many seeded draws (deterministic seeds, so a
failure is reproducible, never flaky) across the paper's fault grid — the
three fault types at 10/30/50 % (§IV):

* affected counts are *exact*: ``round(rate * n)`` examples are touched,
  no more, no fewer, and the audit report indices name exactly them;
* injection is a pure function of the seed: same seed, same corruption;
* different seeds genuinely produce different corruptions;
* removal never empties a class at paper rates (the training set keeps
  every class represented, so stratified techniques cannot crash).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.faults import FaultType, PAPER_FAULT_RATES, inject, single_fault

N_DRAWS = 50
NUM_CLASSES = 10
PER_CLASS = 16  # large enough that emptying a class at 50 % removal is ~impossible


def make_dataset(seed: int = 0) -> ArrayDataset:
    """A small balanced dataset: NUM_CLASSES x PER_CLASS tiny images."""
    rng = np.random.default_rng(seed)
    n = NUM_CLASSES * PER_CLASS
    images = rng.normal(size=(n, 1, 4, 4)).astype(np.float32)
    labels = np.repeat(np.arange(NUM_CLASSES), PER_CLASS).astype(np.int64)
    return ArrayDataset(images, labels, NUM_CLASSES, "invariant-test", {})


GRID = [
    (fault_type, rate)
    for fault_type in FaultType
    for rate in PAPER_FAULT_RATES
]


@pytest.mark.parametrize("fault_type,rate", GRID)
def test_affected_counts_are_exact(fault_type, rate):
    """Every draw touches exactly round(rate * n) examples."""
    dataset = make_dataset()
    n = len(dataset)
    expected = int(round(rate * n))
    for seed in range(N_DRAWS):
        faulty, report = inject(dataset, single_fault(fault_type, rate), seed=seed)
        if fault_type is FaultType.MISLABELLING:
            assert report.num_mislabelled == expected
            assert len(faulty) == n
            changed = np.flatnonzero(faulty.labels != dataset.labels)
            # The report names exactly the changed examples; a flip never
            # lands back on the original label (offset is drawn from 1..K-1).
            assert np.array_equal(changed, report.mislabelled_indices)
            assert np.array_equal(faulty.images, dataset.images)
        elif fault_type is FaultType.REPETITION:
            assert report.num_repeated == expected
            assert len(faulty) == n + expected
            # Originals are untouched; every duplicate matches its source.
            assert np.array_equal(faulty.labels[:n], dataset.labels)
            assert np.array_equal(faulty.images[:n], dataset.images)
        else:  # REMOVAL
            assert report.num_removed == expected
            assert len(faulty) == n - expected
            keep = np.setdiff1d(np.arange(n), report.removed_indices)
            assert np.array_equal(faulty.labels, dataset.labels[keep])
            assert np.array_equal(faulty.images, dataset.images[keep])


@pytest.mark.parametrize("fault_type,rate", GRID)
def test_same_seed_is_deterministic(fault_type, rate):
    """Injection is a pure function of (dataset, spec, seed)."""
    dataset = make_dataset()
    spec = single_fault(fault_type, rate)
    for seed in range(0, N_DRAWS, 10):
        first, report_a = inject(dataset, spec, seed=seed)
        second, report_b = inject(dataset, spec, seed=seed)
        assert np.array_equal(first.labels, second.labels)
        assert np.array_equal(first.images, second.images)
        assert np.array_equal(report_a.mislabelled_indices, report_b.mislabelled_indices)
        assert np.array_equal(
            report_a.repeated_source_indices, report_b.repeated_source_indices
        )
        assert np.array_equal(report_a.removed_indices, report_b.removed_indices)


@pytest.mark.parametrize("fault_type,rate", GRID)
def test_different_seeds_draw_different_corruptions(fault_type, rate):
    """Distinct seeds must not collapse onto one corruption pattern."""
    dataset = make_dataset()
    spec = single_fault(fault_type, rate)
    signatures = set()
    for seed in range(N_DRAWS):
        _, report = inject(dataset, spec, seed=seed)
        indices = {
            FaultType.MISLABELLING: report.mislabelled_indices,
            FaultType.REPETITION: report.repeated_source_indices,
            FaultType.REMOVAL: report.removed_indices,
        }[fault_type]
        signatures.add(tuple(indices.tolist()))
    # All 50 seeded draws should be distinct; allow a freak collision or two.
    assert len(signatures) >= N_DRAWS - 2


@pytest.mark.parametrize("rate", PAPER_FAULT_RATES)
def test_removal_never_empties_a_class(rate):
    """At paper rates every class survives removal, across all draws."""
    dataset = make_dataset()
    spec = single_fault(FaultType.REMOVAL, rate)
    for seed in range(N_DRAWS):
        faulty, _ = inject(dataset, spec, seed=seed)
        counts = np.asarray(faulty.class_counts())
        assert len(counts) == NUM_CLASSES
        assert (counts > 0).all(), (
            f"seed {seed}: removal at {rate} emptied a class: {counts}"
        )


@pytest.mark.parametrize("fault_type,rate", GRID)
def test_protected_indices_are_never_touched(fault_type, rate):
    """The label-correction clean subset survives any fault untouched."""
    dataset = make_dataset()
    protected = np.arange(0, len(dataset), 7)  # every 7th example
    originals = dataset.labels[protected].copy()
    for seed in range(0, N_DRAWS, 10):
        faulty, report = inject(
            dataset, single_fault(fault_type, rate), seed=seed,
            protected_indices=protected,
        )
        assert report.protected_indices_after is not None
        after = report.protected_indices_after
        if fault_type is FaultType.REMOVAL:
            # Removal re-maps positions but may never delete a protected row.
            assert len(after) == len(protected)
        assert np.array_equal(faulty.labels[after], originals)
