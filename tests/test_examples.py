"""Smoke tests for the runnable example scripts (the fast ones)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_examples_directory_complete():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in scripts
    assert len(scripts) >= 9


def test_technique_selection_runs():
    result = _run("technique_selection.py")
    assert result.returncode == 0, result.stderr
    assert "Label Relaxation*" in result.stdout
    assert "re-implemented" in result.stdout


def test_fault_injection_tour_runs():
    result = _run("fault_injection_tour.py")
    assert result.returncode == 0, result.stderr
    assert "mislabelling@30%" in result.stdout
    assert "all clean labels intact after mislabel+removal: True" in result.stdout


@pytest.mark.slow
def test_quickstart_runs():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "golden accuracy" in result.stdout
    assert "AD=" in result.stdout
