"""Unit tests for noise-memorization analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import MemorizationReport, measure_memorization
from repro.data import SyntheticConfig, make_pneumonia_like
from repro.faults import inject, mislabelling, removal
from repro.mitigation import BaselineTechnique, TrainingBudget


class _FixedPredictor:
    """A FittedModel stand-in that returns canned predictions."""

    def __init__(self, predictions):
        self.predictions = np.asarray(predictions)

    def predict(self, images):
        return self.predictions[: len(images)]


@pytest.fixture(scope="module")
def injected():
    train, _ = make_pneumonia_like(SyntheticConfig(train_size=40, test_size=10, seed=6))
    faulty, report = inject(train, mislabelling(0.5), seed=2)
    return train, faulty, report


class TestMeasureMemorization:
    def test_full_memorizer(self, injected):
        original, faulty, report = injected
        model = _FixedPredictor(faulty.labels)  # predicts observed labels
        result = measure_memorization(model, faulty, original, report)
        assert result.noisy_label_fit_rate == 1.0
        assert result.true_label_recovery_rate == 0.0
        assert result.clean_fit_rate == 1.0
        assert not result.resisted_noise

    def test_perfect_resister(self, injected):
        original, faulty, report = injected
        model = _FixedPredictor(original.labels)  # predicts true labels
        result = measure_memorization(model, faulty, original, report)
        assert result.noisy_label_fit_rate == 0.0
        assert result.true_label_recovery_rate == 1.0
        assert result.resisted_noise

    def test_population_counts(self, injected):
        original, faulty, report = injected
        model = _FixedPredictor(faulty.labels)
        result = measure_memorization(model, faulty, original, report)
        assert result.num_mislabelled == report.num_mislabelled
        assert result.num_mislabelled + result.num_clean == len(original)

    def test_rejects_size_changing_faults(self, injected):
        original, _, _ = injected
        shrunk, report = inject(original, removal(0.3), seed=1)
        model = _FixedPredictor(shrunk.labels)
        with pytest.raises(ValueError, match="size-preserving"):
            measure_memorization(model, shrunk, original, report)

    def test_no_flips_reports_zero(self, injected):
        original, _, _ = injected
        clean, report = inject(original, mislabelling(0.0), seed=1)
        model = _FixedPredictor(original.labels)
        result = measure_memorization(model, clean, original, report)
        assert result.noisy_label_fit_rate == 0.0
        assert result.num_mislabelled == 0

    def test_str_readable(self, injected):
        original, faulty, report = injected
        result = measure_memorization(_FixedPredictor(faulty.labels), faulty, original, report)
        assert "memorized" in str(result)

    def test_real_model_end_to_end(self, injected):
        original, faulty, report = injected
        fitted = BaselineTechnique().fit(
            faulty, "convnet", TrainingBudget(epochs=4, batch_size=8), np.random.default_rng(0)
        )
        result = measure_memorization(fitted, faulty, original, report)
        assert isinstance(result, MemorizationReport)
        assert 0.0 <= result.noisy_label_fit_rate <= 1.0
        assert 0.0 <= result.clean_fit_rate <= 1.0
