"""Unit tests for ensemble-diversity statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    analyze_ensemble,
    pairwise_disagreement,
    q_statistic,
    simultaneous_failure_rate,
)


class TestPairwiseDisagreement:
    def test_identical_predictions(self):
        preds = np.array([0, 1, 2])
        assert pairwise_disagreement(preds, preds) == 0.0

    def test_fully_different(self):
        assert pairwise_disagreement(np.array([0, 0]), np.array([1, 1])) == 1.0

    def test_partial(self):
        assert pairwise_disagreement(np.array([0, 1, 2, 3]), np.array([0, 1, 0, 0])) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pairwise_disagreement(np.zeros(2), np.zeros(3))


class TestQStatistic:
    def test_perfectly_correlated_errors(self):
        labels = np.array([0, 0, 0, 0])
        a = np.array([0, 0, 1, 1])  # wrong on last two
        assert q_statistic(a, a, labels) == pytest.approx(1.0)

    def test_complementary_errors_negative(self):
        labels = np.array([0, 0, 0, 0])
        a = np.array([0, 0, 1, 1])  # wrong on {2,3}
        b = np.array([1, 1, 0, 0])  # wrong on {0,1}
        assert q_statistic(a, b, labels) == pytest.approx(-1.0)

    def test_degenerate_all_correct(self):
        labels = np.array([0, 1])
        assert q_statistic(labels, labels, labels) == 0.0


class TestSimultaneousFailures:
    def test_majority_failures_counted(self):
        labels = np.array([0, 0, 0])
        preds = np.array(
            [
                [0, 1, 1],  # member 1 wrong on {1,2}
                [0, 1, 0],  # member 2 wrong on {1}
                [0, 1, 0],  # member 3 wrong on {1}
            ]
        )
        # Input 0: 0 wrong; input 1: 3 wrong (majority); input 2: 1 wrong.
        assert simultaneous_failure_rate(preds, labels) == pytest.approx(1 / 3)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            simultaneous_failure_rate(np.zeros(3), np.zeros(3))

    def test_vote_error_bound(self, rng):
        # The majority vote's error rate can never exceed the simultaneous
        # failure rate plus ties — sanity-check on random data.
        labels = rng.integers(0, 3, 50)
        preds = rng.integers(0, 3, (5, 50))
        rate = simultaneous_failure_rate(preds, labels)
        assert 0.0 <= rate <= 1.0


class TestAnalyzeEnsemble:
    def test_full_report(self, rng):
        from repro.data import SyntheticConfig, make_pneumonia_like
        from repro.mitigation import EnsembleTechnique, TrainingBudget

        train, test = make_pneumonia_like(SyntheticConfig(train_size=40, test_size=20, seed=8))
        fitted = EnsembleTechnique(members=("convnet", "deconvnet", "vgg11")).fit(
            train, "ignored", TrainingBudget(epochs=3, batch_size=8), np.random.default_rng(0)
        )
        report = analyze_ensemble(fitted, test.images, test.labels)
        assert len(report.member_accuracies) == 3
        assert 0.0 <= report.mean_pairwise_disagreement <= 1.0
        assert -1.0 <= report.mean_q_statistic <= 1.0
        assert 0.0 <= report.simultaneous_failure_rate <= 1.0
        assert 0.0 <= report.ensemble_accuracy <= 1.0
        assert "disagreement" in str(report)
