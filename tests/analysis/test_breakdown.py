"""Unit tests for the per-class AD breakdown."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import per_class_accuracy_delta
from repro.metrics import accuracy_delta


class TestPerClassAD:
    def test_matches_overall_ad(self, rng):
        labels = rng.integers(0, 4, 100)
        golden = rng.integers(0, 4, 100)
        faulty = rng.integers(0, 4, 100)
        breakdown = per_class_accuracy_delta(golden, faulty, labels, 4)
        assert breakdown.overall_ad == pytest.approx(accuracy_delta(golden, faulty, labels))

    def test_per_class_values(self):
        labels = np.array([0, 0, 1, 1])
        golden = np.array([0, 0, 1, 1])  # all correct
        faulty = np.array([1, 0, 0, 0])  # breaks one class-0 input, both class-1
        breakdown = per_class_accuracy_delta(golden, faulty, labels, 3)
        assert breakdown.per_class_ad[0] == pytest.approx(0.5)
        assert breakdown.per_class_ad[1] == pytest.approx(1.0)
        assert np.isnan(breakdown.per_class_ad[2])  # class absent
        np.testing.assert_array_equal(breakdown.per_class_support, [2, 2, 0])

    def test_worst_classes_sorted(self):
        labels = np.array([0, 1, 2])
        golden = labels.copy()
        faulty = np.array([0, 0, 0])  # breaks classes 1 and 2
        breakdown = per_class_accuracy_delta(golden, faulty, labels, 3)
        worst = breakdown.worst_classes(top=2)
        assert {cls for cls, _ in worst} == {1, 2}
        assert all(ad == 1.0 for _, ad in worst)

    def test_support_counts_golden_correct_only(self):
        labels = np.array([0, 0])
        golden = np.array([0, 1])  # only first is golden-correct
        faulty = np.array([0, 0])
        breakdown = per_class_accuracy_delta(golden, faulty, labels, 1)
        assert breakdown.per_class_support[0] == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            per_class_accuracy_delta(np.zeros(2), np.zeros(3), np.zeros(3), 2)

    def test_str_mentions_worst(self):
        labels = np.array([0, 1])
        golden = labels.copy()
        faulty = np.array([1, 1])
        text = str(per_class_accuracy_delta(golden, faulty, labels, 2))
        assert "worst classes" in text
