"""Unit tests for confident-learning noise estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import cross_validated_probabilities, estimate_noise
from repro.data import ArrayDataset, SyntheticConfig, make_sensor_like
from repro.faults import inject, mislabelling
from repro.mitigation import TrainingBudget


def _dataset_with_probs(noise_rate: float, n=200, k=4, sharpness=0.9, seed=0):
    """A dataset plus oracle-quality out-of-sample probabilities."""
    rng = np.random.default_rng(seed)
    true_labels = rng.integers(0, k, n)
    images = rng.random((n, 1, 2, 2)).astype(np.float32)
    dataset = ArrayDataset(images, true_labels, k, "synthetic")
    faulty, report = inject(dataset, mislabelling(noise_rate), seed=seed + 1)

    # Probabilities concentrated on the TRUE label (a good out-of-sample model).
    probs = np.full((n, k), (1 - sharpness) / (k - 1), dtype=np.float64)
    probs[np.arange(n), true_labels] = sharpness
    return faulty, report, probs


class TestEstimateWithOracleProbabilities:
    @pytest.mark.parametrize("rate", [0.1, 0.3, 0.5])
    def test_recovers_injected_rate(self, rate):
        faulty, report, probs = _dataset_with_probs(rate)
        estimate = estimate_noise(faulty, probabilities=probs)
        assert estimate.estimated_noise_rate == pytest.approx(rate, abs=0.06)

    def test_suspects_are_the_mislabelled(self):
        faulty, report, probs = _dataset_with_probs(0.3)
        estimate = estimate_noise(faulty, probabilities=probs)
        assert estimate.precision_against(report.mislabelled_indices) > 0.95
        assert estimate.recall_against(report.mislabelled_indices) > 0.95

    def test_clean_dataset_near_zero(self):
        faulty, _, probs = _dataset_with_probs(0.0)
        estimate = estimate_noise(faulty, probabilities=probs)
        assert estimate.estimated_noise_rate < 0.02
        assert len(estimate.suspect_indices) < 5

    def test_confident_joint_shape_and_mass(self):
        faulty, _, probs = _dataset_with_probs(0.2)
        estimate = estimate_noise(faulty, probabilities=probs)
        assert estimate.confident_joint.shape == (4, 4)
        assert estimate.confident_joint.sum() <= len(faulty)

    def test_suspects_ranked_by_margin(self):
        faulty, _, probs = _dataset_with_probs(0.3)
        estimate = estimate_noise(faulty, probabilities=probs)
        labels = faulty.labels
        idx = estimate.suspect_indices
        margins = probs.max(axis=1) - probs[np.arange(len(faulty)), labels]
        suspect_margins = margins[idx]
        assert (np.diff(suspect_margins) <= 1e-12).all()

    def test_shape_mismatch_rejected(self):
        faulty, _, probs = _dataset_with_probs(0.1)
        with pytest.raises(ValueError, match="probabilities shape"):
            estimate_noise(faulty, probabilities=probs[:, :2])

    def test_metrics_on_empty_edge_cases(self):
        faulty, _, probs = _dataset_with_probs(0.0)
        estimate = estimate_noise(faulty, probabilities=probs)
        assert estimate.recall_against(np.array([])) == 0.0
        assert "%" in str(estimate)


class TestCrossValidation:
    def test_every_example_gets_probabilities(self):
        train, _ = make_sensor_like(SyntheticConfig(train_size=60, test_size=10, seed=4))
        budget = TrainingBudget(epochs=3, batch_size=16)
        probs = cross_validated_probabilities(
            train, "mlp", budget, np.random.default_rng(0), folds=3
        )
        assert probs.shape == (60, train.num_classes)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(60), atol=1e-4)

    def test_fold_validation(self):
        train, _ = make_sensor_like(SyntheticConfig(train_size=20, test_size=10, seed=4))
        budget = TrainingBudget(epochs=1)
        with pytest.raises(ValueError):
            cross_validated_probabilities(train, "mlp", budget, np.random.default_rng(0), folds=1)

    def test_end_to_end_detects_heavy_noise(self):
        # A learnable tabular task + 40% noise: the estimator should report
        # substantially more noise than for the clean dataset.
        train, _ = make_sensor_like(SyntheticConfig(train_size=120, test_size=10, seed=5))
        faulty, _ = inject(train, mislabelling(0.4), seed=6)
        budget = TrainingBudget(epochs=8, batch_size=16)
        clean_est = estimate_noise(train, "mlp", budget, np.random.default_rng(1), folds=3)
        noisy_est = estimate_noise(faulty, "mlp", budget, np.random.default_rng(1), folds=3)
        assert noisy_est.estimated_noise_rate > clean_est.estimated_noise_rate + 0.1
