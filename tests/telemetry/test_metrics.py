"""Unit tests for the live metrics registry (counters, gauges, histograms)."""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest

from repro.telemetry import (
    BATCH_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    NULL_METRICS,
    get_metrics,
    latency_summary_ms,
    log_buckets,
    metrics_scope,
    parse_prometheus_text,
    render_prometheus,
    set_metrics,
)


class TestBuckets:
    def test_log_buckets_are_strictly_ascending(self):
        buckets = log_buckets(1e-5, 10.0, per_decade=4)
        assert list(buckets) == sorted(set(buckets))
        assert buckets[0] == pytest.approx(1e-5)
        assert buckets[-1] == pytest.approx(10.0)
        # 6 decades x 4 per decade + the closing bound.
        assert len(buckets) == 25

    def test_log_buckets_validation(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(2.0, 1.0)

    def test_default_bucket_families(self):
        assert LATENCY_BUCKETS_S[0] == pytest.approx(1e-5)
        assert BATCH_SIZE_BUCKETS == (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class TestCounterGauge:
    def test_counter_inc_and_merge(self):
        counter = Counter("requests_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.merge({"type": "counter", "value": 7})
        assert counter.value == 12
        assert counter.snapshot() == {"type": "counter", "value": 12}

    def test_gauge_set_add_merge(self):
        gauge = Gauge("inflight")
        gauge.set(3.0)
        gauge.add(2.0)
        assert gauge.value == 5.0
        gauge.merge({"type": "gauge", "value": 1.5})  # incoming wins
        assert gauge.value == 1.5


class TestHistogram:
    def test_le_semantics(self):
        """Bucket bounds are inclusive upper bounds (Prometheus le)."""
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 9.0):
            hist.observe(value)
        assert hist.counts == [2, 2, 1, 1]  # <=1, <=2, <=4, +Inf
        assert hist.count == 6
        assert hist.min == 0.5 and hist.max == 9.0

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", buckets=(1.0, 1.0))

    def test_quantiles_against_numpy(self):
        """Estimated quantiles land within one bucket width of numpy's."""
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=-6.0, sigma=1.0, size=5000)
        hist = Histogram("lat", buckets=LATENCY_BUCKETS_S)
        for value in values:
            hist.observe(float(value))
        bounds = (0.0,) + tuple(LATENCY_BUCKETS_S) + (math.inf,)
        for q in (0.1, 0.5, 0.9, 0.95, 0.99):
            exact = float(np.quantile(values, q))
            estimate = hist.quantile(q)
            # Same bucket (or adjacent, when the exact value sits on an edge).
            exact_bucket = np.searchsorted(bounds, exact)
            est_bucket = np.searchsorted(bounds, estimate)
            assert abs(int(est_bucket) - int(exact_bucket)) <= 1, (q, exact, estimate)
            # And within the bucket's span numerically.
            assert estimate <= exact * 2.0 and estimate >= exact * 0.4

    def test_quantile_extremes_are_exact(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 3.0, 42.0):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.5
        assert hist.quantile(1.0) == 42.0

    def test_empty_histogram(self):
        hist = Histogram("h")
        assert hist.quantile(0.5) == 0.0
        assert hist.mean == 0.0
        snap = hist.snapshot()
        assert snap["min"] is None and snap["max"] is None

    def test_quantile_range_validation(self):
        hist = Histogram("h")
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_merge_requires_matching_buckets(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        other = Histogram("h", buckets=(1.0, 3.0))
        other.observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            hist.merge(other.snapshot())

    def test_merge_adds_counts_and_tracks_extremes(self):
        a = Histogram("h", buckets=(1.0, 2.0))
        b = Histogram("h", buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(5.0)
        a.merge(b.snapshot())
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.min == 0.5 and a.max == 5.0
        assert a.sum == pytest.approx(7.0)

    def test_latency_summary_ms(self):
        hist = Histogram("lat", buckets=LATENCY_BUCKETS_S)
        for ms in range(1, 101):  # 1..100 ms
            hist.observe(ms / 1e3)
        summary = latency_summary_ms(hist)
        assert set(summary) == {"p50_ms", "p95_ms", "p99_ms"}
        assert 30 < summary["p50_ms"] < 80
        assert summary["p95_ms"] <= summary["p99_ms"] <= 100.0


class TestRegistry:
    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.get("a").value == 0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_is_picklable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        snap = pickle.loads(pickle.dumps(registry.snapshot()))
        assert snap["c"]["value"] == 3
        assert snap["h"]["count"] == 1

    def test_merge_creates_missing_metrics(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(2)
        worker.gauge("g").set(1.5)
        worker.histogram("h", buckets=(1.0,)).observe(0.5)
        collector = MetricsRegistry()
        collector.merge(worker.snapshot())
        collector.merge(worker.snapshot())
        assert collector.get("c").value == 4
        assert collector.get("g").value == 1.5
        assert collector.get("h").count == 2

    def test_merge_type_mismatch_raises(self):
        collector = MetricsRegistry()
        collector.counter("m")
        with pytest.raises(TypeError, match="cannot merge"):
            collector.merge({"m": {"type": "gauge", "value": 1.0}})

    def test_snapshot_and_reset_round_trip(self):
        """Serial identity: snapshot_and_reset + merge == no-op on totals."""
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        before = registry.snapshot()
        snap = registry.snapshot_and_reset()
        assert registry.get("c").value == 0
        registry.merge(snap)
        assert registry.snapshot() == before


class TestGlobalRegistry:
    def test_default_is_null(self):
        assert get_metrics() is NULL_METRICS
        assert not get_metrics().enabled
        # Null handles swallow everything.
        get_metrics().counter("x").inc()
        get_metrics().histogram("h").observe(1.0)
        assert get_metrics().snapshot() == {}

    def test_scope_installs_and_restores(self):
        registry = MetricsRegistry()
        with metrics_scope(registry):
            assert get_metrics() is registry
            get_metrics().counter("c").inc()
        assert get_metrics() is NULL_METRICS
        assert registry.get("c").value == 1

    def test_set_metrics_and_clear(self):
        registry = MetricsRegistry()
        set_metrics(registry)
        try:
            assert get_metrics() is registry
        finally:
            set_metrics(None)
        assert get_metrics() is NULL_METRICS

    def test_foreign_pid_registry_is_invisible(self):
        """After a fork the parent's registry must not be double-counted."""
        registry = MetricsRegistry()
        registry._pid = registry._pid + 1  # simulate an inherited registry
        with metrics_scope(registry):
            assert get_metrics() is NULL_METRICS


class TestPrometheus:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("requests_total").inc(7)
        registry.gauge("inflight").set(2.5)
        hist = registry.histogram("latency_seconds", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.005, 0.05, 0.5):
            hist.observe(value)
        return registry

    def test_render_shape(self):
        text = render_prometheus(self._registry().snapshot())
        assert "# TYPE requests_total counter" in text
        assert "requests_total 7" in text
        assert "inflight 2.5" in text
        assert 'latency_seconds_bucket{le="0.001"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 5' in text  # cumulative
        assert "latency_seconds_count 5" in text
        assert text.endswith("\n")

    def test_round_trip(self):
        snapshot = self._registry().snapshot()
        parsed = parse_prometheus_text(render_prometheus(snapshot))
        for name, snap in snapshot.items():
            got = parsed[name]
            if snap["type"] == "histogram":
                assert got["buckets"] == pytest.approx(snap["buckets"])
                assert got["counts"] == snap["counts"]
                assert got["count"] == snap["count"]
                assert got["sum"] == pytest.approx(snap["sum"])
            else:
                assert got == {"type": snap["type"], "value": snap["value"]}

    def test_parse_rejects_missing_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            "h_sum 0.5\n"
            "h_count 1\n"
        )
        with pytest.raises(ValueError, match="missing \\+Inf"):
            parse_prometheus_text(text)

    def test_parse_rejects_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 0.5\n"
            "h_count 3\n"
        )
        with pytest.raises(ValueError, match="_count"):
            parse_prometheus_text(text)

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""
