"""Tests for trace reading, validation, tree rebuilding, and signatures."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    RecordingTelemetry,
    TraceError,
    hierarchy_signature,
    read_trace,
    span_tree,
    validate_trace,
)


def _study_events(unit_order=("a", "b")):
    """A well-formed two-unit study trace, units in the given order."""
    tel = RecordingTelemetry()
    with tel.span("study", cells=len(unit_order)):
        for key in unit_order:
            with tel.span("unit", key=key, technique="baseline", dataset="gtsrb"):
                with tel.span("attempt", attempt=1, key=key):
                    with tel.span("repetition", repetition=0):
                        with tel.span("epoch", epoch=0):
                            pass
    return tel.drain()


class TestReadTrace:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        events = _study_events()
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        assert read_trace(path) == events

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        events = _study_events()
        payload = "".join(json.dumps(e) + "\n" for e in events)
        path.write_text(payload + '{"ev": "span_start", "na')
        assert len(read_trace(path)) == len(events)

    def test_malformed_interior_line_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('not json\n{"ev": "counter", "name": "x"}\n')
        with pytest.raises(TraceError, match="malformed"):
            read_trace(path)

    def test_non_event_json_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "header"}\n{"ev": "counter"}\n')
        with pytest.raises(TraceError, match="not a trace event"):
            read_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('\n{"ev": "counter", "name": "x"}\n\n')
        assert len(read_trace(path)) == 1


class TestValidateTrace:
    def test_stats_on_valid_trace(self):
        events = _study_events()
        stats = validate_trace(events)
        assert stats == {"events": len(events), "spans": 9, "pids": 1}

    def test_unclosed_span_raises(self):
        events = _study_events()[:-1]  # drop the study span_end
        with pytest.raises(TraceError, match="left open"):
            validate_trace(events)

    def test_stray_end_raises(self):
        with pytest.raises(TraceError, match="without open span"):
            validate_trace([{"ev": "span_end", "span": "x", "name": "unit"}])

    def test_misnested_end_raises(self):
        events = _study_events()
        ends = [i for i, e in enumerate(events) if e["ev"] == "span_end"]
        events[ends[0]], events[ends[1]] = events[ends[1]], events[ends[0]]
        with pytest.raises(TraceError, match="innermost open span"):
            validate_trace(events)

    def test_unknown_kind_raises(self):
        with pytest.raises(TraceError, match="unknown event kind"):
            validate_trace([{"ev": "mystery", "name": "x"}])


class TestSpanTree:
    def test_rebuilds_hierarchy(self):
        roots = span_tree(_study_events())
        assert len(roots) == 1
        study = roots[0]
        assert study.name == "study"
        assert [c.name for c in study.children] == ["unit", "unit"]
        names = [n.name for n in study.walk()]
        assert names.count("epoch") == 2

    def test_end_attrs_merged_into_node(self):
        tel = RecordingTelemetry()
        with tel.span("epoch", epoch=0) as span:
            span.set(train_loss=0.25)
        node = span_tree(tel.drain())[0]
        assert node.attrs == {"epoch": 0, "train_loss": 0.25}
        assert node.dur_s >= 0.0


class TestHierarchySignature:
    def test_identical_for_reordered_units(self):
        # A parallel sweep completes units in arbitrary order; the signature
        # must not care.
        assert hierarchy_signature(_study_events(("a", "b"))) == \
            hierarchy_signature(_study_events(("b", "a")))

    def test_differs_for_different_plans(self):
        assert hierarchy_signature(_study_events(("a", "b"))) != \
            hierarchy_signature(_study_events(("a", "c")))

    def test_schedule_dependent_spans_excluded(self):
        def trace(with_golden):
            tel = RecordingTelemetry()
            with tel.span("study"):
                with tel.span("unit", key="a"):
                    if with_golden:
                        with tel.span("golden_fit", dataset="gtsrb"):
                            pass
            return tel.drain()

        # Serial memoizes golden training; a second worker repeats it.  The
        # signature treats both shapes as the same sweep.
        assert hierarchy_signature(trace(True)) == hierarchy_signature(trace(False))
        assert hierarchy_signature(trace(True), exclude=()) != \
            hierarchy_signature(trace(False), exclude=())
