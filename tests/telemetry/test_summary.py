"""Tests for trace summarization (the ``repro-study trace`` analysis)."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    RecordingTelemetry,
    TraceError,
    render_trace_summary,
    summarize_trace,
)


def _study_trace():
    """Synthetic two-unit study with retries, a divergence, and cache events."""
    tel = RecordingTelemetry()
    with tel.span("study", cells=2):
        with tel.span("unit", key="slow", technique="ensembles", dataset="gtsrb"):
            with tel.span("attempt", attempt=1, key="slow"):
                tel.event("divergence", epoch=1)
            tel.counter("retry", key="slow")
            with tel.span("attempt", attempt=2, key="slow"):
                with tel.span("faulty_fit"):
                    pass
        with tel.span("unit", key="fast", technique="baseline", dataset="gtsrb"):
            tel.counter("cache_hit", key="fast")
        tel.counter("checkpoint_skip", key="other")
    events = tel.drain()
    # Deterministic durations for assertions.
    for event in events:
        if event["ev"] == "span_end":
            event["dur_s"] = {"study": 10.0, "unit": 4.0, "attempt": 1.5,
                              "faulty_fit": 1.0}[event["name"]]
    return events


class TestSummarizeTrace:
    def test_phase_totals_and_tallies(self):
        summary = summarize_trace(_study_trace())
        count, seconds = summary.phase_totals["unit"]
        assert (count, seconds) == (2, 8.0)
        assert summary.phase_totals["attempt"] == (2, 3.0)
        assert summary.counters == {"retry": 1, "cache_hit": 1, "checkpoint_skip": 1}
        assert summary.point_events == {"divergence": 1}
        assert summary.total_s == 10.0
        assert summary.pids == 1

    def test_slowest_units_ranked_and_capped(self):
        summary = summarize_trace(_study_trace(), top=1)
        assert summary.slowest_units == [("slow", 4.0)]

    def test_technique_dataset_breakdown(self):
        summary = summarize_trace(_study_trace())
        assert summary.technique_dataset_s == {
            ("ensembles", "gtsrb"): 4.0,
            ("baseline", "gtsrb"): 4.0,
        }

    def test_reads_from_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("".join(json.dumps(e) + "\n" for e in _study_trace()))
        assert summarize_trace(path).counters["retry"] == 1

    def test_invalid_trace_is_refused(self):
        events = _study_trace()[:-1]  # unclosed study span
        with pytest.raises(TraceError):
            summarize_trace(events)


class TestRenderTraceSummary:
    def test_report_sections(self):
        text = render_trace_summary(summarize_trace(_study_trace()))
        assert "per-phase wall-clock:" in text
        assert "tallies:" in text
        assert "slowest cells:" in text
        assert "technique x dataset wall-clock:" in text
        assert "retry" in text and "divergence" in text
        assert "ensembles" in text

    def test_empty_trace_renders(self):
        text = render_trace_summary(summarize_trace([]))
        assert text.startswith("trace: 0 events")
