"""Tests for the live sweep progress reporter."""

from __future__ import annotations

import io

from repro.experiments.resilience import CellOutcome
from repro.telemetry import ProgressReporter, format_eta


class _Unit:
    def __init__(self, label="gtsrb/convnet/baseline"):
        self.label = label

    def describe(self):
        return self.label


class _Clock:
    """A hand-cranked monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _ok(pid=None, attempts=1, from_checkpoint=False, host=None):
    return CellOutcome(
        result=object(),
        attempts=attempts,
        from_checkpoint=from_checkpoint,
        pid=pid,
        host=host,
    )


def _failed(attempts=2):
    return CellOutcome(failure=object(), attempts=attempts)


class TestFormatEta:
    def test_bands(self):
        assert format_eta(None) == "?"
        assert format_eta(-3) == "0s"
        assert format_eta(41) == "41s"
        assert format_eta(192) == "3m12s"
        assert format_eta(7500) == "2h05m"


class TestProgressReporter:
    def test_counts_and_rolling_rate(self):
        clock = _Clock()
        reporter = ProgressReporter(total=4, stream=io.StringIO(), clock=clock)
        assert reporter.rate_cells_per_s() is None
        assert reporter.eta_s() is None

        for index in range(3):
            clock.now = float(index)  # one cell per second
            reporter.on_outcome(index, _Unit(), _ok())
        assert reporter.done == 3
        assert reporter.rate_cells_per_s() == 1.0
        assert reporter.eta_s() == 1.0

    def test_retries_failures_and_replays_tallied(self):
        reporter = ProgressReporter(total=3, stream=io.StringIO(), clock=_Clock())
        reporter.on_outcome(0, _Unit(), _ok(attempts=3))
        reporter.on_outcome(1, _Unit(), _failed(attempts=2))
        reporter.on_outcome(2, _Unit(), _ok(from_checkpoint=True))
        assert reporter.retries == 3  # (3-1) + (2-1)
        assert reporter.failures == 1
        assert reporter.replayed == 1

    def test_worker_activity_tracks_latest_cell_per_pid(self):
        reporter = ProgressReporter(total=3, stream=io.StringIO(), clock=_Clock())
        reporter.on_outcome(0, _Unit("cell-a"), _ok(pid=100))
        reporter.on_outcome(1, _Unit("cell-b"), _ok(pid=200))
        reporter.on_outcome(2, _Unit("cell-c"), _ok(pid=100))
        assert reporter.worker_activity == {("", 100): "cell-c", ("", 200): "cell-b"}
        assert "100:cell-c" in reporter.workers_line()

    def test_worker_activity_keys_by_host_and_pid(self):
        # Two cluster hosts can reuse the same pid: both rows must survive.
        reporter = ProgressReporter(total=3, stream=io.StringIO(), clock=_Clock())
        reporter.on_outcome(0, _Unit("cell-a"), _ok(pid=100, host="nodeA"))
        reporter.on_outcome(1, _Unit("cell-b"), _ok(pid=100, host="nodeB"))
        reporter.on_outcome(2, _Unit("cell-c"), _ok(pid=100))
        assert reporter.worker_activity == {
            ("nodeA", 100): "cell-a",
            ("nodeB", 100): "cell-b",
            ("", 100): "cell-c",
        }
        line = reporter.workers_line()
        assert "nodeA:100:cell-a" in line
        assert "nodeB:100:cell-b" in line
        # Local rows keep the pid-only format (hostless keys sort first).
        assert line.startswith("workers: 100:cell-c")

    def test_non_tty_prints_one_line_per_cell(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=2, stream=stream, clock=_Clock())
        reporter(0, _Unit("cell-a"), _ok())
        reporter(1, _Unit("cell-b"), _failed())
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "[1/2] cell-a ok" in lines[0]
        assert "[2/2] cell-b FAILED" in lines[1]

    def test_tty_repaints_status_line_in_place(self):
        class _Tty(io.StringIO):
            def isatty(self):
                return True

        stream = _Tty()
        reporter = ProgressReporter(total=2, stream=stream, clock=_Clock())
        reporter.on_outcome(0, _Unit(), _ok(pid=7))
        assert stream.getvalue().startswith("\r\x1b[2K")
        assert "\n" not in stream.getvalue()

    def test_finish_emits_closing_summary(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=1, stream=stream, clock=_Clock())
        reporter.on_outcome(0, _Unit(), _ok())
        reporter.finish()
        assert stream.getvalue().endswith(reporter.status_line() + "\n")
        assert "[1/1] 100%" in reporter.status_line()

    def test_status_line_with_zero_total(self):
        reporter = ProgressReporter(total=0, stream=io.StringIO(), clock=_Clock())
        assert "100%" in reporter.status_line()
