"""Tests for the telemetry core: spans, counters, sinks, and scoping."""

from __future__ import annotations

import json
import os

import pytest

from repro.telemetry import (
    NULL,
    FileTelemetry,
    NullTelemetry,
    RecordingTelemetry,
    get_telemetry,
    read_trace,
    set_telemetry,
    telemetry_scope,
    validate_trace,
)


class TestSpans:
    def test_span_emits_balanced_pair_with_duration(self):
        tel = RecordingTelemetry()
        with tel.span("work", key="k"):
            pass
        start, end = tel.events
        assert start["ev"] == "span_start" and start["name"] == "work"
        assert start["key"] == "k"
        assert start["parent"] is None
        assert end["ev"] == "span_end" and end["span"] == start["span"]
        assert end["dur_s"] >= 0.0
        assert start["pid"] == end["pid"] == os.getpid()

    def test_nested_spans_record_parentage(self):
        tel = RecordingTelemetry()
        with tel.span("outer") as outer:
            with tel.span("inner") as inner:
                pass
        starts = {e["name"]: e for e in tel.events if e["ev"] == "span_start"}
        assert starts["inner"]["parent"] == outer.id
        assert starts["outer"]["parent"] is None
        assert outer.id != inner.id

    def test_span_ids_unique_across_instances(self):
        # Successive per-unit recorders in one process must never collide.
        first = RecordingTelemetry()
        with first.span("unit"):
            pass
        second = RecordingTelemetry()
        with second.span("unit"):
            pass
        assert first.events[0]["span"] != second.events[0]["span"]

    def test_exception_still_closes_span_and_tags_error(self):
        tel = RecordingTelemetry()
        with pytest.raises(ValueError):
            with tel.span("work"):
                raise ValueError("boom")
        end = tel.events[-1]
        assert end["ev"] == "span_end"
        assert end["outcome"] == "error"
        assert end["error"] == "ValueError"
        validate_trace(tel.events)  # still balanced

    def test_set_attaches_attrs_to_end_event(self):
        tel = RecordingTelemetry()
        with tel.span("epoch", epoch=0) as span:
            span.set(train_loss=0.5)
        start, end = tel.events
        assert "train_loss" not in start
        assert end["train_loss"] == 0.5

    def test_point_emitters(self):
        tel = RecordingTelemetry()
        tel.counter("retry", key="k")
        tel.counter("cache_hit", value=3)
        tel.gauge("examples_per_s", 120.5)
        tel.event("divergence", epoch=2)
        kinds = [(e["ev"], e["name"]) for e in tel.events]
        assert kinds == [
            ("counter", "retry"),
            ("counter", "cache_hit"),
            ("gauge", "examples_per_s"),
            ("event", "divergence"),
        ]
        assert tel.events[0]["value"] == 1  # counter default increment
        assert tel.events[1]["value"] == 3
        assert tel.events[2]["value"] == 120.5


class TestRecordingTelemetry:
    def test_drain_returns_and_resets(self):
        tel = RecordingTelemetry()
        tel.counter("x")
        batch = tel.drain()
        assert len(batch) == 1
        assert tel.events == []
        assert tel.drain() == []

    def test_events_are_picklable_plain_dicts(self):
        import pickle

        tel = RecordingTelemetry()
        with tel.span("unit", key="k"):
            tel.counter("retry")
        assert pickle.loads(pickle.dumps(tel.drain()))


class TestWriteBatch:
    def test_batch_roots_reparented_onto_collector_span(self):
        worker = RecordingTelemetry()
        with worker.span("unit", key="k"):
            worker.counter("retry")
        batch = worker.drain()

        collector = RecordingTelemetry()
        with collector.span("study") as study:
            collector.write_batch(batch, parent=study.id)
        starts = {e["name"]: e for e in collector.events if e["ev"] == "span_start"}
        assert starts["unit"]["parent"] == study.id
        validate_trace(collector.events)

    def test_batch_without_parent_kept_verbatim(self):
        worker = RecordingTelemetry()
        with worker.span("unit"):
            pass
        batch = worker.drain()
        collector = RecordingTelemetry()
        collector.write_batch(batch)
        assert collector.events[0]["parent"] is None


class TestFileTelemetry:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with FileTelemetry(path) as tel:
            with tel.span("study", cells=2):
                tel.counter("checkpoint_skip", key="k")
        events = read_trace(path)
        assert validate_trace(events) == {"events": 3, "spans": 1, "pids": 1}
        # Flushed per line: every line is standalone JSON.
        for line in path.read_text().splitlines():
            assert json.loads(line)["ev"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "out" / "deep" / "trace.jsonl"
        with FileTelemetry(path) as tel:
            tel.counter("x")
        assert path.exists()

    def test_write_after_close_raises(self, tmp_path):
        tel = FileTelemetry(tmp_path / "trace.jsonl")
        tel.close()
        with pytest.raises(ValueError, match="closed"):
            tel.counter("x")
        tel.close()  # idempotent

    def test_unserializable_attrs_are_stringified(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with FileTelemetry(path) as tel:
            tel.event("divergence", loss=complex(1, 2))
        assert read_trace(path)[0]["loss"] == "(1+2j)"


class TestNullTelemetry:
    def test_all_emitters_are_noops(self):
        tel = NullTelemetry()
        with tel.span("work") as span:
            assert span.set(x=1) is span
        tel.counter("x")
        tel.gauge("y", 1.0)
        tel.event("z")
        tel.write_batch([{"ev": "counter"}])
        tel.close()
        assert not tel.enabled

    def test_null_span_is_a_shared_singleton(self):
        tel = NullTelemetry()
        assert tel.span("a") is tel.span("b") is NULL.span("c")


class TestGlobalHandle:
    def test_default_is_null(self):
        assert get_telemetry() is NULL

    def test_set_and_clear(self):
        tel = RecordingTelemetry()
        set_telemetry(tel)
        try:
            assert get_telemetry() is tel
        finally:
            set_telemetry(None)
        assert get_telemetry() is NULL

    def test_scope_restores_previous_handle(self):
        outer = RecordingTelemetry()
        inner = RecordingTelemetry()
        set_telemetry(outer)
        try:
            with telemetry_scope(inner) as scoped:
                assert scoped is inner
                assert get_telemetry() is inner
            assert get_telemetry() is outer
        finally:
            set_telemetry(None)

    def test_scope_restores_on_exception(self):
        inner = RecordingTelemetry()
        with pytest.raises(RuntimeError):
            with telemetry_scope(inner):
                raise RuntimeError
        assert get_telemetry() is NULL

    def test_scope_null_suppresses_emission(self):
        outer = RecordingTelemetry()
        with telemetry_scope(outer):
            with telemetry_scope(NULL):
                get_telemetry().counter("hidden")
            get_telemetry().counter("visible")
        assert [e["name"] for e in outer.events] == ["visible"]

    def test_foreign_pid_handle_is_ignored(self):
        # A forked worker inheriting the parent's handle must not write to
        # the parent's trace file; simulate the fork by faking the pid.
        tel = RecordingTelemetry()
        tel._pid = os.getpid() + 1
        set_telemetry(tel)
        try:
            assert get_telemetry() is NULL
        finally:
            set_telemetry(None)
