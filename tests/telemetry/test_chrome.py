"""Chrome trace-event export: conversion, clock anchoring, validation."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    FileTelemetry,
    chrome_trace_events,
    export_chrome_trace,
    read_trace,
    validate_chrome_trace,
)


def span(name, span_id, t, pid=1, wall=None, parent=None, **attrs):
    event = {"ev": "span_start", "name": name, "span": span_id,
             "parent": parent, "t": t, "pid": pid, **attrs}
    if wall is not None:
        event["wall"] = wall
    return event


def span_end(name, span_id, t, pid=1, dur_s=0.0, **attrs):
    return {"ev": "span_end", "name": name, "span": span_id, "t": t,
            "pid": pid, "dur_s": dur_s, **attrs}


class TestConversion:
    def test_spans_become_balanced_b_e_pairs(self):
        events = [
            span("study", "1", 0.0, wall=100.0),
            span("unit", "2", 0.1, parent="1"),
            span_end("unit", "2", 0.4),
            span_end("study", "1", 0.5),
        ]
        converted = chrome_trace_events(events)
        phases = [e["ph"] for e in converted]
        assert phases == ["B", "B", "E", "E", "M"]
        stats = validate_chrome_trace({"traceEvents": converted})
        assert stats == {"events": 5, "spans": 2, "tids": 1}

    def test_timestamps_are_microseconds_from_first_event(self):
        events = [
            span("study", "1", 10.0, wall=100.0),
            span_end("study", "1", 10.5),
        ]
        converted = chrome_trace_events(events)
        assert converted[0]["ts"] == 0.0
        assert converted[1]["ts"] == pytest.approx(0.5e6)

    def test_attrs_land_in_args_without_envelope_fields(self):
        events = [
            span("unit", "1", 0.0, wall=1.0, key="gtsrb|convnet", rate=0.1),
            span_end("unit", "1", 1.0),
        ]
        args = chrome_trace_events(events)[0]["args"]
        assert args == {"key": "gtsrb|convnet", "rate": 0.1}

    def test_point_events_become_instants(self):
        events = [
            span("study", "1", 0.0, wall=1.0),
            {"ev": "event", "name": "checkpoint", "t": 0.2, "pid": 1, "cells": 3},
            span_end("study", "1", 0.5),
        ]
        converted = chrome_trace_events(events)
        instant = converted[1]
        assert instant["ph"] == "i"
        assert instant["s"] == "t"
        assert instant["args"]["cells"] == 3

    def test_counters_accumulate_into_counter_track(self):
        events = [
            span("study", "1", 0.0, wall=1.0),
            {"ev": "counter", "name": "retries", "t": 0.1, "pid": 1, "value": 1},
            {"ev": "counter", "name": "retries", "t": 0.2, "pid": 1, "value": 2},
            span_end("study", "1", 0.5),
        ]
        converted = chrome_trace_events(events)
        tracks = [e for e in converted if e["ph"] == "C"]
        assert [t["args"]["retries"] for t in tracks] == [1, 3]

    def test_worker_pids_anchor_on_wall_clock(self):
        """Two processes with different perf_counter epochs align via wall."""
        events = [
            span("study", "1", 1000.0, pid=1, wall=500.0),
            span("unit", "2", 5.0, pid=2, wall=500.2),  # different epoch
            span_end("unit", "2", 5.3, pid=2),
            span_end("study", "1", 1000.6, pid=1),
        ]
        converted = chrome_trace_events(events)
        by_pid = {(e["pid"], e["ph"]): e["ts"] for e in converted if e["ph"] != "M"}
        # Worker's span starts 0.2s after the study start on the shared axis.
        assert by_pid[(2, "B")] == pytest.approx(0.2e6, rel=1e-6)
        assert by_pid[(2, "E")] == pytest.approx(0.5e6, rel=1e-6)
        # One metadata record per process.
        assert sum(1 for e in converted if e["ph"] == "M") == 2

    def test_out_of_order_funnel_timestamps_are_clamped(self):
        """Funneled batches can interleave out of clock order; ts must not
        decrease within a thread track."""
        events = [
            span("a", "1", 0.5, wall=10.5),
            span_end("a", "1", 0.9),
            span("b", "2", 0.4),  # written later, earlier clock
            span_end("b", "2", 0.6),
        ]
        converted = chrome_trace_events(events)
        ts = [e["ts"] for e in converted if e["ph"] != "M"]
        assert ts == sorted(ts)
        validate_chrome_trace({"traceEvents": converted})


class TestValidation:
    def test_rejects_unbalanced(self):
        events = [span("study", "1", 0.0, wall=1.0)]
        with pytest.raises(ValueError, match="open B"):
            validate_chrome_trace({"traceEvents": chrome_trace_events(events)})

    def test_rejects_mismatched_nesting(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 0.0},
            {"name": "b", "ph": "E", "pid": 1, "tid": 1, "ts": 1.0},
        ]}
        with pytest.raises(ValueError, match="innermost"):
            validate_chrome_trace(trace)

    def test_rejects_decreasing_timestamps(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 5.0},
            {"name": "a", "ph": "E", "pid": 1, "tid": 1, "ts": 1.0},
        ]}
        with pytest.raises(ValueError, match="decreases"):
            validate_chrome_trace(trace)

    def test_rejects_unknown_phase(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0},
        ]}
        with pytest.raises(ValueError, match="unknown phase"):
            validate_chrome_trace(trace)

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})


class TestExport:
    def test_export_writes_valid_json(self, tmp_path):
        events = [
            span("study", "1", 0.0, wall=1.0),
            span_end("study", "1", 0.5),
        ]
        out = tmp_path / "nested" / "chrome.json"
        stats = export_chrome_trace(events, out)
        assert stats["spans"] == 1
        trace = json.loads(out.read_text())
        assert trace["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(trace)["spans"] == 1

    def test_real_telemetry_round_trip(self, tmp_path):
        """A real FileTelemetry stream converts and validates end to end."""
        trace_path = tmp_path / "trace.jsonl"
        tel = FileTelemetry(trace_path)
        with tel.span("study", cells=2):
            for index in range(2):
                with tel.span("unit", index=index):
                    tel.counter("cells_done")
            tel.event("metrics_snapshot", metrics={})
        tel.close()
        events = read_trace(trace_path)
        stats = export_chrome_trace(events, tmp_path / "chrome.json")
        assert stats["spans"] == 3
        assert stats["tids"] == 1
