"""Unit tests for runtime-overhead accounting (paper §IV-E)."""

from __future__ import annotations

import pytest

from repro.metrics import OverheadResult, RuntimeCost, relative_overhead


class TestRuntimeCost:
    def test_addition(self):
        total = RuntimeCost(1.0, 2.0) + RuntimeCost(3.0, 4.0)
        assert total.training_s == 4.0
        assert total.inference_s == 6.0


class TestRelativeOverhead:
    def test_ensemble_like_ratios(self):
        baseline = RuntimeCost(training_s=10.0, inference_s=1.0)
        ensemble = RuntimeCost(training_s=50.0, inference_s=5.0)
        result = relative_overhead("ensemble", ensemble, baseline)
        assert result.training_overhead == pytest.approx(5.0)
        assert result.inference_overhead == pytest.approx(5.0)

    def test_baseline_against_itself_is_one(self):
        cost = RuntimeCost(training_s=7.0, inference_s=0.5)
        result = relative_overhead("baseline", cost, cost)
        assert result.training_overhead == pytest.approx(1.0)
        assert result.inference_overhead == pytest.approx(1.0)

    def test_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            relative_overhead("x", RuntimeCost(1.0, 1.0), RuntimeCost(0.0, 1.0))

    def test_str_format(self):
        result = OverheadResult("kd", 1.5, 1.0)
        assert "1.50x" in str(result)
