"""Unit tests for runtime-overhead accounting (paper §IV-E)."""

from __future__ import annotations

import pytest

from repro.metrics import OverheadResult, RuntimeCost, relative_overhead


class TestRuntimeCost:
    def test_addition(self):
        total = RuntimeCost(1.0, 2.0) + RuntimeCost(3.0, 4.0)
        assert total.training_s == 4.0
        assert total.inference_s == 6.0

    def test_total_combines_phases(self):
        assert RuntimeCost(1.5, 0.25).total_s == pytest.approx(1.75)
        assert RuntimeCost().total_s == 0.0

    def test_defaults_are_zero(self):
        cost = RuntimeCost()
        assert cost.training_s == 0.0 and cost.inference_s == 0.0

    def test_sum_builtin_accumulates(self):
        costs = [RuntimeCost(1.0, 0.1), RuntimeCost(2.0, 0.2), RuntimeCost(3.0, 0.3)]
        total = sum(costs, RuntimeCost())
        assert total.training_s == pytest.approx(6.0)
        assert total.inference_s == pytest.approx(0.6)
        assert total.total_s == pytest.approx(6.6)


class TestRelativeOverhead:
    def test_ensemble_like_ratios(self):
        baseline = RuntimeCost(training_s=10.0, inference_s=1.0)
        ensemble = RuntimeCost(training_s=50.0, inference_s=5.0)
        result = relative_overhead("ensemble", ensemble, baseline)
        assert result.training_overhead == pytest.approx(5.0)
        assert result.inference_overhead == pytest.approx(5.0)

    def test_baseline_against_itself_is_one(self):
        cost = RuntimeCost(training_s=7.0, inference_s=0.5)
        result = relative_overhead("baseline", cost, cost)
        assert result.training_overhead == pytest.approx(1.0)
        assert result.inference_overhead == pytest.approx(1.0)

    def test_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            relative_overhead("x", RuntimeCost(1.0, 1.0), RuntimeCost(0.0, 1.0))

    def test_rejects_zero_baseline_inference(self):
        with pytest.raises(ValueError, match="positive"):
            relative_overhead("x", RuntimeCost(1.0, 1.0), RuntimeCost(1.0, 0.0))

    def test_rejects_negative_baseline(self):
        with pytest.raises(ValueError):
            relative_overhead("x", RuntimeCost(1.0, 1.0), RuntimeCost(-1.0, 1.0))

    def test_zero_cost_technique_is_zero_overhead(self):
        # A technique with no extra inference cost (e.g. label smoothing's
        # free inference) divides cleanly to 0x, not an error.
        result = relative_overhead(
            "ls", RuntimeCost(0.0, 0.0), RuntimeCost(10.0, 1.0)
        )
        assert result.training_overhead == 0.0
        assert result.inference_overhead == 0.0

    def test_str_format(self):
        result = OverheadResult("kd", 1.5, 1.0)
        assert "1.50x" in str(result)
