"""Unit tests for confidence intervals and similarity judgements."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import (
    mean_confidence_interval,
    statistically_similar,
    summarize,
    welch_ttest,
)


class TestMeanConfidenceInterval:
    def test_single_value_zero_width(self):
        ci = mean_confidence_interval([0.4])
        assert ci.mean == 0.4
        assert ci.half_width == 0.0
        assert ci.n == 1

    def test_constant_sample_zero_width(self):
        ci = mean_confidence_interval([0.2, 0.2, 0.2])
        assert ci.half_width == pytest.approx(0.0, abs=1e-12)

    def test_95_interval_against_known_values(self):
        # For [1, 2, 3]: mean 2, sd 1, sem 1/sqrt(3), t(0.975, df=2) = 4.303.
        ci = mean_confidence_interval([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.half_width == pytest.approx(4.3026 / np.sqrt(3), rel=1e-3)
        assert ci.low == pytest.approx(ci.mean - ci.half_width)
        assert ci.high == pytest.approx(ci.mean + ci.half_width)

    def test_wider_confidence_wider_interval(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert (
            mean_confidence_interval(values, 0.99).half_width
            > mean_confidence_interval(values, 0.90).half_width
        )

    def test_more_samples_tighter_interval(self, rng):
        few = rng.normal(0, 1, 5)
        many = rng.normal(0, 1, 100)
        assert mean_confidence_interval(many).half_width < mean_confidence_interval(few).half_width

    def test_coverage_simulation(self, rng):
        # ~95% of intervals from a known distribution should cover the mean.
        hits = 0
        trials = 300
        for _ in range(trials):
            sample = rng.normal(10.0, 2.0, 15)
            ci = mean_confidence_interval(sample)
            hits += ci.low <= 10.0 <= ci.high
        assert 0.90 <= hits / trials <= 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0], confidence=1.0)

    def test_str_format(self):
        assert "±" in str(mean_confidence_interval([1.0, 2.0]))


class TestWelch:
    def test_identical_samples_high_p(self, rng):
        a = rng.normal(0, 1, 40)
        _, p = welch_ttest(a, a + rng.normal(0, 1e-9, 40))
        assert p > 0.5

    def test_separated_samples_low_p(self, rng):
        a = rng.normal(0, 1, 40)
        b = rng.normal(5, 1, 40)
        _, p = welch_ttest(a, b)
        assert p < 1e-6

    def test_needs_two_observations(self):
        with pytest.raises(ValueError):
            welch_ttest([1.0], [1.0, 2.0])


class TestStatisticallySimilar:
    def test_same_distribution_similar(self, rng):
        a = rng.normal(0.3, 0.05, 20)
        b = rng.normal(0.3, 0.05, 20)
        assert statistically_similar(a, b)

    def test_different_distributions_not_similar(self, rng):
        a = rng.normal(0.1, 0.02, 20)
        b = rng.normal(0.6, 0.02, 20)
        assert not statistically_similar(a, b)

    def test_degenerate_identical_zero_variance(self):
        assert statistically_similar([0.5, 0.5], [0.5, 0.5])

    def test_degenerate_different_zero_variance(self):
        assert not statistically_similar([0.1, 0.1], [0.9, 0.9])


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["mean"] == 2.0
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["n"] == 3
        assert s["std"] == pytest.approx(1.0)

    def test_single_value_std_zero(self):
        assert summarize([5.0])["std"] == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
