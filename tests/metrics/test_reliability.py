"""Unit tests for the AD metric and reliability comparisons (paper §III-C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import (
    ReliabilityResult,
    accuracy,
    accuracy_delta,
    compare_models,
    confusion_matrix,
    per_class_accuracy,
    reverse_accuracy_delta,
)


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([0, 1, 2, 2]), np.array([0, 1, 1, 2])) == 0.75

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0]), np.array([0, 1]))


class TestAccuracyDelta:
    def test_definition(self):
        # golden correct on {0,1,2}; faulty breaks {1,2} -> AD = 2/3.
        labels = np.array([0, 0, 0, 1])
        golden = np.array([0, 0, 0, 0])  # correct on first three
        faulty = np.array([0, 1, 1, 1])  # breaks positions 1 and 2
        assert accuracy_delta(golden, faulty, labels) == pytest.approx(2 / 3)

    def test_no_double_counting(self):
        # Inputs both models get wrong do not contribute.
        labels = np.array([0, 1])
        golden = np.array([1, 0])  # all wrong
        faulty = np.array([1, 0])  # all wrong
        assert accuracy_delta(golden, faulty, labels) == 0.0

    def test_identical_models_zero_ad(self, rng):
        labels = rng.integers(0, 5, 50)
        preds = rng.integers(0, 5, 50)
        assert accuracy_delta(preds, preds, labels) == 0.0

    def test_perfect_golden_total_break(self):
        labels = np.array([0, 1, 2])
        golden = labels.copy()
        faulty = (labels + 1) % 3
        assert accuracy_delta(golden, faulty, labels) == 1.0

    def test_ad_bounded(self, rng):
        labels = rng.integers(0, 4, 200)
        golden = rng.integers(0, 4, 200)
        faulty = rng.integers(0, 4, 200)
        ad = accuracy_delta(golden, faulty, labels)
        assert 0.0 <= ad <= 1.0

    def test_golden_all_wrong_returns_zero(self):
        labels = np.array([0, 0])
        golden = np.array([1, 1])
        faulty = np.array([0, 0])
        assert accuracy_delta(golden, faulty, labels) == 0.0


class TestReverseAD:
    def test_fixed_fraction(self):
        labels = np.array([0, 0, 0, 0])
        golden = np.array([1, 1, 0, 0])  # wrong on {0,1}
        faulty = np.array([0, 1, 0, 0])  # fixes position 0
        assert reverse_accuracy_delta(golden, faulty, labels) == pytest.approx(0.5)

    def test_golden_perfect_returns_zero(self):
        labels = np.array([0, 1])
        assert reverse_accuracy_delta(labels, labels, labels) == 0.0


class TestCompareModels:
    def test_returns_full_result(self, rng):
        labels = rng.integers(0, 3, 30)
        golden = labels.copy()
        faulty = labels.copy()
        faulty[:10] = (faulty[:10] + 1) % 3
        result = compare_models(golden, faulty, labels)
        assert isinstance(result, ReliabilityResult)
        assert result.golden_accuracy == 1.0
        assert result.faulty_accuracy == pytest.approx(2 / 3)
        assert result.accuracy_delta == pytest.approx(1 / 3)
        assert result.num_test == 30
        assert "AD=" in str(result)


class TestTopKAccuracy:
    def test_k1_matches_plain_accuracy(self, rng):
        from repro.metrics import top_k_accuracy

        probs = rng.random((30, 5))
        probs /= probs.sum(axis=1, keepdims=True)
        labels = rng.integers(0, 5, 30)
        assert top_k_accuracy(probs, labels, k=1) == pytest.approx(
            accuracy(probs.argmax(axis=1), labels)
        )

    def test_k_equals_classes_is_one(self, rng):
        from repro.metrics import top_k_accuracy

        probs = rng.random((10, 4))
        labels = rng.integers(0, 4, 10)
        assert top_k_accuracy(probs, labels, k=4) == 1.0

    def test_monotone_in_k(self, rng):
        from repro.metrics import top_k_accuracy

        probs = rng.random((50, 6))
        labels = rng.integers(0, 6, 50)
        values = [top_k_accuracy(probs, labels, k=k) for k in range(1, 7)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_validation(self, rng):
        from repro.metrics import top_k_accuracy

        with pytest.raises(ValueError):
            top_k_accuracy(rng.random((5, 3)), np.zeros(5, dtype=int), k=4)
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros(5), np.zeros(5, dtype=int))


class TestExpectedCalibrationError:
    def test_perfectly_calibrated_confident_model(self):
        from repro.metrics import expected_calibration_error

        # Always predicts class 0 with confidence 1.0 and is always right.
        probs = np.tile(np.array([[1.0, 0.0]]), (20, 1))
        labels = np.zeros(20, dtype=int)
        assert expected_calibration_error(probs, labels) == pytest.approx(0.0)

    def test_overconfident_model_has_high_ece(self):
        from repro.metrics import expected_calibration_error

        # Confidence ~1.0 but only 50% correct -> ECE ~0.5.
        probs = np.tile(np.array([[0.99, 0.01]]), (20, 1))
        labels = np.array([0, 1] * 10)
        ece = expected_calibration_error(probs, labels)
        assert ece == pytest.approx(0.49, abs=0.02)

    def test_bounded(self, rng):
        from repro.metrics import expected_calibration_error

        probs = rng.random((40, 3))
        probs /= probs.sum(axis=1, keepdims=True)
        labels = rng.integers(0, 3, 40)
        assert 0.0 <= expected_calibration_error(probs, labels) <= 1.0

    def test_validation(self):
        from repro.metrics import expected_calibration_error

        with pytest.raises(ValueError):
            expected_calibration_error(np.zeros((4, 2)), np.zeros(4, dtype=int), bins=0)


class TestPerClassAndConfusion:
    def test_per_class_accuracy(self):
        labels = np.array([0, 0, 1, 1, 2])
        preds = np.array([0, 1, 1, 1, 0])
        acc = per_class_accuracy(preds, labels, 4)
        np.testing.assert_allclose(acc[:3], [0.5, 1.0, 0.0])
        assert np.isnan(acc[3])

    def test_confusion_matrix(self):
        labels = np.array([0, 0, 1, 2])
        preds = np.array([0, 1, 1, 2])
        m = confusion_matrix(preds, labels, 3)
        expected = np.array([[1, 1, 0], [0, 1, 0], [0, 0, 1]])
        np.testing.assert_array_equal(m, expected)
        assert m.sum() == 4
