"""Unit tests for the repro-study command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_no_args(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"

    def test_csv_parsing(self):
        args = build_parser().parse_args(["fig3", "--models", "convnet, vgg16", "--rates", "0.1,0.5"])
        assert args.models == ("convnet", "vgg16")
        assert args.rates == (0.1, 0.5)

    def test_scale_choices(self):
        args = build_parser().parse_args(["--scale", "small", "table1"])
        assert args.scale == "small"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "huge", "table1"])

    def test_panel_requires_fault(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["panel", "--dataset", "gtsrb", "--model", "convnet"])

    def test_panel_fault_choices(self):
        args = build_parser().parse_args(
            ["panel", "--dataset", "gtsrb", "--model", "convnet", "--fault", "removal"]
        )
        assert args.fault == "removal"


class TestMain:
    def test_table1_prints_catalog(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Label Relaxation*" in out
        assert "re-implemented" in out

    def test_motivating_smoke(self, capsys, monkeypatch):
        # Use a fast model/rate at smoke scale to keep the test short.
        monkeypatch.setenv("REPRO_EPOCHS", "2")
        assert main(["motivating", "--model", "convnet", "--rate", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "golden accuracy" in out

    def test_panel_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EPOCHS", "2")
        code = main(
            [
                "panel",
                "--dataset",
                "pneumonia",
                "--model",
                "convnet",
                "--fault",
                "mislabelling",
                "--rates",
                "0.3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pneumonia, convnet, mislabelling" in out
        assert "30%" in out
