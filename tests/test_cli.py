"""Unit tests for the repro-study command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_no_args(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"

    def test_csv_parsing(self):
        args = build_parser().parse_args(["fig3", "--models", "convnet, vgg16", "--rates", "0.1,0.5"])
        assert args.models == ("convnet", "vgg16")
        assert args.rates == (0.1, 0.5)

    def test_scale_choices(self):
        args = build_parser().parse_args(["--scale", "small", "table1"])
        assert args.scale == "small"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "huge", "table1"])

    def test_panel_requires_fault(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["panel", "--dataset", "gtsrb", "--model", "convnet"])

    def test_panel_fault_choices(self):
        args = build_parser().parse_args(
            ["panel", "--dataset", "gtsrb", "--model", "convnet", "--fault", "removal"]
        )
        assert args.fault == "removal"

    def test_study_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.command == "study"
        assert args.checkpoint is None
        assert not args.resume
        assert args.max_attempts == 2

    def test_study_checkpoint_flags(self):
        args = build_parser().parse_args(
            ["study", "--checkpoint", "out/study.jsonl", "--resume", "--max-attempts", "3"]
        )
        assert args.checkpoint == "out/study.jsonl"
        assert args.resume
        assert args.max_attempts == 3

    def test_verbosity_flags(self):
        assert not build_parser().parse_args(["table1"]).verbose
        assert build_parser().parse_args(["-v", "table1"]).verbose
        assert build_parser().parse_args(["--quiet", "table1"]).quiet
        # Mutually exclusive.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["-v", "-q", "table1"])

    def test_study_telemetry_flags(self):
        args = build_parser().parse_args(["study"])
        assert args.trace is None and not args.progress
        args = build_parser().parse_args(
            ["study", "--trace", "out/trace.jsonl", "--progress"]
        )
        assert args.trace == "out/trace.jsonl"
        assert args.progress

    def test_trace_subcommand(self):
        args = build_parser().parse_args(["trace", "out/trace.jsonl"])
        assert args.command == "trace"
        assert args.file == "out/trace.jsonl"
        assert args.top == 5
        assert not args.strict
        assert args.export_chrome is None
        assert build_parser().parse_args(["trace", "t.jsonl", "--top", "3"]).top == 3
        args = build_parser().parse_args(
            ["trace", "t.jsonl", "--strict", "--export-chrome", "out/chrome.json"]
        )
        assert args.strict
        assert args.export_chrome == "out/chrome.json"

    def test_profile_subcommand(self):
        args = build_parser().parse_args(["profile"])
        assert args.command == "profile"
        assert args.model == "vgg11"
        assert args.batch == 4
        assert args.steps == 30
        assert args.image_shape == ("3", "32", "32")
        args = build_parser().parse_args(
            ["profile", "--model", "convnet", "--image-shape", "1,16,16",
             "--classes", "2", "--steps", "5", "--top", "3"]
        )
        assert args.model == "convnet"
        assert args.image_shape == ("1", "16", "16")
        assert args.classes == 2
        assert args.top == 3

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.model == "convnet"
        assert args.dataset == "gtsrb"
        assert args.technique == "baseline"
        assert args.fault == "none"
        assert args.state is None
        assert args.port == 8777
        assert args.max_batch_size == 8
        assert args.max_latency_ms == 2.0
        assert args.serve_workers == 2

    def test_serve_flags(self):
        args = build_parser().parse_args([
            "serve", "--dataset", "pneumonia", "--fault", "mislabelling@30%",
            "--state", "model.npz", "--port", "9000",
            "--max-batch-size", "16", "--max-latency-ms", "5.5",
            "--serve-workers", "4", "--trace", "out/serve.jsonl",
        ])
        assert args.dataset == "pneumonia"
        assert args.fault == "mislabelling@30%"
        assert args.state == "model.npz"
        assert args.port == 9000
        assert args.max_batch_size == 16
        assert args.max_latency_ms == 5.5
        assert args.serve_workers == 4
        assert args.trace == "out/serve.jsonl"


class TestMain:
    def test_table1_prints_catalog(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Label Relaxation*" in out
        assert "re-implemented" in out

    def test_motivating_smoke(self, capsys, monkeypatch):
        # Use a fast model/rate at smoke scale to keep the test short.
        monkeypatch.setenv("REPRO_EPOCHS", "2")
        assert main(["motivating", "--model", "convnet", "--rate", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "golden accuracy" in out

    def test_panel_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EPOCHS", "2")
        code = main(
            [
                "panel",
                "--dataset",
                "pneumonia",
                "--model",
                "convnet",
                "--fault",
                "mislabelling",
                "--rates",
                "0.3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pneumonia, convnet, mislabelling" in out
        assert "30%" in out

    def test_study_resume_requires_checkpoint(self, capsys):
        assert main(["study", "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_study_refuses_existing_checkpoint_without_resume(self, tmp_path, capsys):
        path = tmp_path / "study.jsonl"
        path.write_text('{"kind": "header"}\n')
        code = main(["study", "--checkpoint", str(path)])
        assert code == 2
        assert "already exists" in capsys.readouterr().err

    def test_study_checkpoint_and_resume_smoke(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EPOCHS", "2")
        path = tmp_path / "study.jsonl"
        out = tmp_path / "results.json"
        argv = [
            "study",
            "--models", "convnet",
            "--datasets", "pneumonia",
            "--faults", "mislabelling",
            "--rates", "0.3",
            "--techniques", "baseline",
            "--checkpoint", str(path),
            "--out", str(out),
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "1 cells ok" in first.out
        assert "1 executed" in first.out
        assert path.exists()
        assert out.exists()

        # Resuming replays the journaled cell without retraining.
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr()
        assert "1 replayed" in second.out
        assert "0 executed" in second.out

    def test_quiet_suppresses_diagnostics(self, capsys):
        assert main(["--quiet", "study", "--resume"]) == 2  # errors still show
        assert "requires --checkpoint" in capsys.readouterr().err

    def test_verbose_prefixes_logger_names(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EPOCHS", "2")
        argv = [
            "--verbose", "study",
            "--models", "convnet", "--datasets", "pneumonia",
            "--faults", "mislabelling", "--rates", "0.3",
            "--techniques", "baseline",
        ]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "repro.cli: [scale=" in err
        assert "repro.experiments" in err  # debug lines from the executors

    def test_study_trace_and_summarize_roundtrip(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EPOCHS", "2")
        trace = tmp_path / "trace.jsonl"
        argv = [
            "study",
            "--models", "convnet", "--datasets", "pneumonia",
            "--faults", "mislabelling", "--rates", "0.3",
            "--techniques", "baseline",
            "--trace", str(trace),
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "tracing to" in first.err
        assert trace.exists()

        assert main(["trace", str(trace)]) == 0
        report = capsys.readouterr().out
        assert "per-phase wall-clock:" in report
        assert "unit" in report and "epoch" in report
        assert "slowest cells:" in report

    def test_trace_command_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_trace_command_strict_rejects_corrupt_trace(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev": "span_start", "name": "study", "span": "1", "parent": null}\n')
        assert main(["trace", str(path), "--strict"]) == 2
        assert "left open" in capsys.readouterr().err

    def test_trace_command_tolerates_truncated_trace(self, tmp_path, capsys):
        """A killed sweep's trace summarizes with a repair warning, exit 0."""
        path = tmp_path / "truncated.jsonl"
        path.write_text(
            '{"ev": "span_start", "name": "study", "span": "1", "parent": null, '
            '"t": 0.0, "pid": 1}\n'
            '{"ev": "span_start", "name": "unit", "span": "2", "parent": "1", '
            '"t": 0.1, "pid": 1}\n'
            '{"ev": "span_end", "name": "unit", "span": "2", "t": 0.5, '
            '"dur_s": 0.4, "pid": 1, "outcome": "ok"}\n'
            '{"ev": "span_st'  # torn mid-write by the kill
        )
        assert main(["trace", str(path)]) == 0
        captured = capsys.readouterr()
        assert "synthesized span_end" in captured.err
        assert "per-phase wall-clock:" in captured.out
        assert "truncated trace" in captured.out

    def test_trace_command_export_chrome(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"ev": "span_start", "name": "study", "span": "1", "parent": null, '
            '"t": 0.0, "pid": 1, "wall": 100.0}\n'
            '{"ev": "span_end", "name": "study", "span": "1", "t": 0.5, '
            '"dur_s": 0.5, "pid": 1, "outcome": "ok"}\n'
        )
        out = tmp_path / "chrome.json"
        assert main(["trace", str(path), "--export-chrome", str(out)]) == 0
        assert "exported" in capsys.readouterr().err
        trace = json.loads(out.read_text())
        phases = [event["ph"] for event in trace["traceEvents"]]
        assert "B" in phases and "E" in phases

    def test_profile_command_smoke(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        code = main([
            "profile", "--model", "convnet", "--image-shape", "1,12,12",
            "--classes", "2", "--width", "2", "--batch", "2",
            "--steps", "3", "--warmup", "1", "--out", str(out),
        ])
        assert code == 0
        report = capsys.readouterr().out
        assert "profile: convnet" in report
        assert "conv2d" in report
        assert "coverage" in report
        import json

        payload = json.loads(out.read_text())
        assert payload["steps"] == 3
        assert payload["ops"] and payload["ops"][0]["calls"] > 0

    def test_profile_command_unknown_model(self, capsys):
        assert main(["profile", "--model", "transformer9000"]) == 2
        assert "error" in capsys.readouterr().err

    def test_serve_bad_state_file(self, tmp_path, capsys):
        code = main(["serve", "--state", str(tmp_path / "missing.npz")])
        assert code == 2
        assert "no such model state file" in capsys.readouterr().err

    def test_serve_invalid_batch_settings(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EPOCHS", "1")
        code = main([
            "serve", "--dataset", "pneumonia", "--model", "convnet",
            "--max-batch-size", "0",
        ])
        assert code == 2
        assert "max_batch_size" in capsys.readouterr().err

    def test_serve_end_to_end_smoke(self, capsys, monkeypatch):
        """Train, serve over HTTP, predict, shut down — the whole path."""
        import json
        import threading
        import time
        import urllib.request

        monkeypatch.setenv("REPRO_EPOCHS", "2")
        port = 8797  # fixed test port; the suite runs serially
        codes: dict[str, int] = {}
        thread = threading.Thread(
            target=lambda: codes.update(code=main([
                "serve", "--dataset", "pneumonia", "--model", "convnet",
                "--port", str(port), "--max-latency-ms", "1",
            ])),
            daemon=True,
        )
        thread.start()
        url = f"http://127.0.0.1:{port}"
        for _ in range(200):  # wait for train + bind
            try:
                urllib.request.urlopen(url + "/healthz", timeout=1).read()
                break
            except OSError:
                time.sleep(0.25)
        else:
            raise AssertionError("serve endpoint never came up")
        request = urllib.request.Request(
            url + "/predict",
            data=json.dumps({
                "model": "pneumonia/convnet/baseline/none",
                "inputs": [[[0.0] * 16] * 16],  # one grayscale sample
                "return": "labels",
            }).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            payload = json.loads(response.read())
        assert payload["count"] == 1
        assert payload["labels"][0] in (0, 1)
        shutdown = urllib.request.Request(
            url + "/shutdown", data=b"{}", method="POST"
        )
        urllib.request.urlopen(shutdown, timeout=10).read()
        thread.join(timeout=15)
        assert codes.get("code") == 0

    def test_hardware_faults_parser_defaults(self):
        args = build_parser().parse_args(["hardware-faults"])
        assert args.command == "hardware-faults"
        assert args.techniques == ("baseline", "label_smoothing")
        assert args.hw_types == ("bit_flip",)
        assert args.hw_rates == (1e-4, 1e-3)
        assert args.trials == 3
        assert args.jobs == 1
        assert args.bit is None

    def test_hardware_faults_resume_requires_checkpoint(self, capsys):
        assert main(["hardware-faults", "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_hardware_faults_invalid_axis_is_exit_2(self, capsys):
        assert main(["hardware-faults", "--hw-types", "gamma_ray"]) == 2
        assert "error" in capsys.readouterr().err

    def test_hardware_faults_smoke(self, tmp_path, capsys, monkeypatch):
        """A tiny cross-axis campaign end to end, with the JSON artifact."""
        import json

        monkeypatch.setenv("REPRO_EPOCHS", "2")
        out = tmp_path / "BENCH_hardware_faults.json"
        argv = [
            "hardware-faults",
            "--models", "convnet", "--datasets", "pneumonia",
            "--techniques", "baseline", "--data-faults", "none",
            "--hw-rates", "1e-2", "--trials", "2",
            "--out", str(out),
        ]
        assert main(argv) == 0
        table = capsys.readouterr().out
        assert "hw fault" in table
        assert "pneumonia/convnet/baseline/none" in table
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "hardware_faults"
        assert payload["units"] == 1
        assert payload["summary"][0]["sdc_rate"] >= 0.0

    def test_study_progress_smoke(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EPOCHS", "2")
        argv = [
            "study",
            "--models", "convnet", "--datasets", "pneumonia",
            "--faults", "mislabelling", "--rates", "0.3",
            "--techniques", "baseline",
            "--progress",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "[1/1]" in captured.err
        assert "retries 0" in captured.err
        assert "1 cells ok" in captured.out
