"""Integration tests: the full Fig. 2 workflow across module boundaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticConfig, load_dataset, make_gtsrb_like
from repro.experiments import ExperimentRunner, ScaleSettings
from repro.faults import inject, mislabelling, removal
from repro.metrics import accuracy, compare_models
from repro.mitigation import BaselineTechnique, TrainingBudget, build_technique, technique_names
from repro.models import build_model
from repro.nn import Adam, CrossEntropy, Trainer, evaluate_accuracy, load_into, save_model


class TestTrainingPipeline:
    def test_golden_model_learns_gtsrb_like(self):
        """A convnet must reach well-above-chance accuracy on clean data."""
        train, test = load_dataset("gtsrb", train_size=430, test_size=172, seed=0)
        model = build_model("convnet", train.image_shape, train.num_classes, seed=1)
        trainer = Trainer(
            model,
            CrossEntropy(),
            Adam(model.parameters(), lr=3e-3),
            epochs=12,
            batch_size=32,
            rng=np.random.default_rng(2),
            clip_norm=5.0,
        )
        trainer.fit(train.images, train.one_hot_labels())
        acc = evaluate_accuracy(model, test.images, test.labels)
        assert acc > 0.5  # chance is ~2.3% on 43 classes

    def test_mislabelling_degrades_baseline(self):
        """Paper §II: heavy mislabelling must hurt an unprotected model."""
        train, test = load_dataset("gtsrb", train_size=430, test_size=172, seed=0)
        budget = TrainingBudget(epochs=12)
        golden = BaselineTechnique().fit(train, "convnet", budget, np.random.default_rng(1))
        golden_acc = accuracy(golden.predict(test.images), test.labels)

        faulty_train, _ = inject(train, mislabelling(0.5), seed=9)
        faulty = BaselineTechnique().fit(faulty_train, "convnet", budget, np.random.default_rng(1))
        faulty_acc = accuracy(faulty.predict(test.images), test.labels)
        assert faulty_acc < golden_acc - 0.1

    def test_mislabelling_hurts_more_than_removal(self):
        """Paper §IV-C: removal faults produce much lower AD than mislabelling."""
        train, test = load_dataset("gtsrb", train_size=430, test_size=172, seed=0)
        budget = TrainingBudget(epochs=12)
        golden = BaselineTechnique().fit(train, "convnet", budget, np.random.default_rng(1))
        golden_pred = golden.predict(test.images)

        def ad_for(spec):
            faulty_train, _ = inject(train, spec, seed=9)
            fitted = BaselineTechnique().fit(
                faulty_train, "convnet", budget, np.random.default_rng(1)
            )
            return compare_models(golden_pred, fitted.predict(test.images), test.labels).accuracy_delta

        assert ad_for(mislabelling(0.5)) > ad_for(removal(0.5))


class TestModelPersistenceAcrossPipeline:
    def test_fitted_model_roundtrips_through_disk(self, tmp_path):
        train, test = make_gtsrb_like(SyntheticConfig(train_size=86, test_size=43, seed=5))
        budget = TrainingBudget(epochs=3)
        fitted = BaselineTechnique().fit(train, "convnet", budget, np.random.default_rng(0))
        path = tmp_path / "golden.npz"
        save_model(fitted.model, path)

        clone = build_model("convnet", train.image_shape, train.num_classes, seed=99)
        load_into(clone, path)
        from repro.nn import predict_labels

        np.testing.assert_array_equal(
            predict_labels(clone, test.images), fitted.predict(test.images)
        )


class TestAllTechniquesEndToEnd:
    @pytest.mark.parametrize("technique", technique_names())
    def test_runs_on_faulty_pneumonia(self, technique):
        """Every registered technique completes the full workflow."""
        train, test = load_dataset("pneumonia", train_size=40, test_size=20, seed=4)
        faulty, _ = inject(train, mislabelling(0.2), seed=1)
        if technique == "label_correction":
            faulty.metadata["clean_indices"] = np.arange(0, 8)
        kwargs = {"members": ("convnet", "deconvnet", "vgg11")} if technique == "ensemble" else {}
        tech = build_technique(technique, **kwargs)
        fitted = tech.fit(faulty, "convnet", TrainingBudget(epochs=3, batch_size=16), np.random.default_rng(0))
        predictions = fitted.predict(test.images)
        assert predictions.shape == (len(test),)
        assert fitted.cost.training_s > 0


class TestRunnerIntegration:
    def test_full_cell_with_every_metric(self):
        scale = ScaleSettings(
            name="it",
            dataset_sizes={"cifar10": (40, 20), "gtsrb": (86, 43), "pneumonia": (30, 16)},
            epochs=3,
            batch_size=16,
            repeats=2,
            seed=1,
        )
        runner = ExperimentRunner(scale)
        result = runner.run("gtsrb", "convnet", "label_smoothing", mislabelling(0.3))
        assert result.accuracy_delta.n == 2
        assert result.golden_accuracy.mean > 0.0
        assert result.mean_training_s > 0
        assert result.mean_inference_s > 0
        assert len(result.ad_values()) == 2
