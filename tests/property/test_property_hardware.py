"""Property-based tests for hardware-fault injector determinism.

The injection contract the campaigns lean on: the same ``(spec, seed)``
always strikes the same elements at the same bit positions, regardless of
which run, thread, or worker process performs the injection; and exiting an
injection context always restores bitwise-clean state.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.hardware import (
    HardwareFaultInjector,
    HardwareFaultSpec,
    hardware_fault_injection,
)
from repro.nn import Dense, Tensor, no_grad


@st.composite
def specs(draw):
    fault_type = draw(st.sampled_from(
        ["bit_flip", "stuck_at_0", "stuck_at_1", "random_value"]
    ))
    rate = draw(st.sampled_from([0.0, 0.01, 0.1, 0.5, 1.0]))
    tensor_probability = draw(st.sampled_from([0.0, 0.5, 1.0]))
    bit = draw(st.sampled_from([None, 0, 15, 31]))
    return HardwareFaultSpec(
        fault_type=fault_type, rate=rate,
        tensor_probability=tensor_probability, bit=bit,
    )


SEEDS = st.integers(0, 2**31 - 1)
SHAPES = st.sampled_from([(1,), (7,), (4, 9), (2, 3, 5)])


def sample(shape, seed=0) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


class TestInjectorProperties:
    @given(specs(), SEEDS, SHAPES)
    @settings(max_examples=60, deadline=None)
    def test_same_seed_same_flip_sites(self, spec, seed, shape):
        a, b = sample(shape), sample(shape)
        first = HardwareFaultInjector(spec, seed, record_sites=True)
        second = HardwareFaultInjector(spec, seed, record_sites=True)
        for site in ("conv2d", "dense", "conv2d"):
            first.perturb(site, a)
            second.perturb(site, b)
        assert first.flip_signature() == second.flip_signature()
        np.testing.assert_array_equal(a, b)
        assert first.stats.elements_faulted == second.stats.elements_faulted

    @given(specs(), SEEDS, SHAPES)
    @settings(max_examples=60, deadline=None)
    def test_perturbation_respects_rate_zero(self, spec, seed, shape):
        arr = sample(shape)
        before = arr.copy()
        count = HardwareFaultInjector(spec, seed).perturb("dense", arr)
        if spec.rate == 0.0 or spec.tensor_probability == 0.0:
            assert count == 0
            np.testing.assert_array_equal(arr, before)
        assert count <= arr.size

    @given(st.sampled_from([0.01, 0.1, 1.0]), SEEDS, SHAPES)
    @settings(max_examples=40, deadline=None)
    def test_bit_flip_is_involutory(self, rate, seed, shape):
        spec = HardwareFaultSpec(fault_type="bit_flip", rate=rate)
        arr = sample(shape)
        before = arr.copy()
        HardwareFaultInjector(spec, seed).perturb("dense", arr)
        HardwareFaultInjector(spec, seed).perturb("dense", arr)
        np.testing.assert_array_equal(arr, before)


class TestContextProperties:
    @given(specs(), SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_exiting_context_restores_clean_inference(self, spec, seed):
        layer = Dense(12, 4, rng=np.random.default_rng(0))
        inputs = sample((5, 12), seed=3)

        def forward() -> np.ndarray:
            with no_grad(), np.errstate(all="ignore"):
                return layer(Tensor(inputs)).data

        clean = forward()
        with hardware_fault_injection(spec, seed, model=layer):
            faulty_once = forward()
        with hardware_fault_injection(spec, seed, model=layer):
            faulty_twice = forward()
        # Same seed → identical corrupted outputs (cross-run determinism,
        # the property that makes --jobs N campaigns bitwise-reproducible).
        np.testing.assert_array_equal(faulty_once, faulty_twice)
        # Clean inference is restored bitwise after every context exit.
        np.testing.assert_array_equal(forward(), clean)
