"""Property-based tests for the autodiff core (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor

FLOATS = st.floats(-10.0, 10.0, allow_nan=False, width=32)


def small_arrays(max_side=4, min_dims=1, max_dims=3):
    return hnp.arrays(
        dtype=np.float32,
        shape=hnp.array_shapes(min_dims=min_dims, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=FLOATS,
    )


class TestAlgebraicIdentities:
    @given(small_arrays())
    def test_addition_commutes(self, x):
        a = Tensor(x)
        b = Tensor(x * 0.5 + 1.0)
        np.testing.assert_allclose((a + b).data, (b + a).data, rtol=1e-5)

    @given(small_arrays())
    def test_double_negation(self, x):
        np.testing.assert_array_equal((-(-Tensor(x))).data, x)

    @given(small_arrays())
    def test_sub_is_add_neg(self, x):
        a = Tensor(x)
        b = Tensor(np.roll(x, 1))
        np.testing.assert_allclose((a - b).data, (a + (-b)).data, rtol=1e-5)

    @given(small_arrays())
    def test_exp_log_roundtrip(self, x):
        positive = np.abs(x) + 0.5
        np.testing.assert_allclose(Tensor(positive).log().exp().data, positive, rtol=1e-4)

    @given(small_arrays())
    def test_relu_idempotent(self, x):
        once = Tensor(x).relu()
        twice = once.relu()
        np.testing.assert_array_equal(once.data, twice.data)

    @given(small_arrays())
    def test_sigmoid_bounded(self, x):
        out = Tensor(x).sigmoid().data
        assert (out > 0).all()
        assert (out < 1).all()


class TestGradientProperties:
    @given(small_arrays())
    def test_sum_gradient_is_ones(self, x):
        t = Tensor(x, requires_grad=True)
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(x))

    @given(small_arrays())
    def test_linearity_of_gradients(self, x):
        # grad of (2x + 3x) equals grad of 5x.
        t1 = Tensor(x, requires_grad=True)
        (t1 * 2.0 + t1 * 3.0).sum().backward()
        t2 = Tensor(x, requires_grad=True)
        (t2 * 5.0).sum().backward()
        np.testing.assert_allclose(t1.grad, t2.grad, rtol=1e-5)

    @given(small_arrays())
    def test_detach_blocks_gradient(self, x):
        t = Tensor(x, requires_grad=True)
        out = t.detach() * 2.0
        assert not out.requires_grad

    @given(small_arrays(max_side=3, min_dims=2, max_dims=2))
    @settings(max_examples=25)
    def test_reshape_preserves_gradient_mass(self, x):
        t = Tensor(x, requires_grad=True)
        t.reshape(-1).sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(x))

    @given(small_arrays())
    def test_mean_gradient_sums_to_one(self, x):
        t = Tensor(x, requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad.sum(), 1.0, rtol=1e-4)


class TestSoftmaxProperties:
    @given(small_arrays(min_dims=2, max_dims=2))
    def test_softmax_is_distribution(self, x):
        from repro.nn import softmax

        probs = softmax(Tensor(x), axis=1).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(x.shape[0]), rtol=1e-4)
        assert (probs >= 0).all()

    @given(small_arrays(min_dims=2, max_dims=2), st.floats(0.5, 10.0))
    @settings(max_examples=30)
    def test_softmax_shift_invariance(self, x, shift):
        from repro.nn import softmax

        a = softmax(Tensor(x), axis=1).data
        b = softmax(Tensor(x + shift), axis=1).data
        np.testing.assert_allclose(a, b, atol=1e-5)
