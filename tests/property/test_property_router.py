"""Property test: fleet router dispatch is a permutation.

For *arbitrary* interleavings of submits, dispatch steps, replica answers,
replica kills, and respawns, every accepted request must be answered
**exactly once** — with the payload produced by a *live* replica, never a
late result from an evicted one.  This is the invariant the chaos tests
exercise with real engines; here Hypothesis explores the scheduling space
symbolically with fake replicas and a manual pump.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import ModelKey, Router

KEY = ModelKey(model="convnet", dataset="gtsrb")


class ScriptedReplica:
    """A fake replica that buffers chunks; dead ones answer with poison.

    Live deliveries are ``sample * 2``; after :meth:`mark_dead` the replica
    keeps answering its buffered chunks with ``-sample`` — if the router
    ever accepts such a stale delivery, the final assertion catches the
    negative payload.
    """

    def __init__(self, slot: int, generation: int, router: Router) -> None:
        self.slot = slot
        self.generation = generation
        self.router = router
        self.chunks: list = []
        self.dead = False

    def send(self, chunk) -> None:
        self.chunks.append(chunk)

    def answer_one(self) -> bool:
        if not self.chunks:
            return False
        chunk = self.chunks[0]
        seq = chunk.seqs.pop(0)
        sample = chunk.samples.pop(0)
        if not chunk.seqs:
            self.chunks.pop(0)
        row = (sample * -1.0) if self.dead else (sample * 2.0)
        self.router.on_result(self.slot, self.generation, seq, row)
        return True

    def answer_all(self) -> None:
        while self.answer_one():
            pass

    def mark_dead(self) -> None:
        self.dead = True


@st.composite
def router_scripts(draw):
    """A bounded interleaving of router operations."""
    n_ops = draw(st.integers(5, 60))
    ops = []
    for _ in range(n_ops):
        ops.append(
            draw(
                st.one_of(
                    st.tuples(st.just("submit"), st.integers(0, 3)),
                    st.tuples(st.just("step"), st.just(0)),
                    st.tuples(st.just("answer"), st.integers(0, 2)),
                    st.tuples(st.just("kill"), st.integers(0, 2)),
                    st.tuples(st.just("respawn"), st.integers(0, 2)),
                )
            )
        )
    chunk = draw(st.integers(1, 4))
    replica_cap = draw(st.integers(1, 8))
    return ops, chunk, replica_cap


@given(router_scripts())
@settings(max_examples=80, deadline=None)
def test_every_accepted_request_answered_exactly_once(script):
    ops, chunk, replica_cap = script
    router = Router(
        max_queue=10_000, chunk=chunk, replica_cap=replica_cap,
        auto_dispatch=False,
    )
    slots = 3
    generations = [0] * slots
    replicas: "dict[int, ScriptedReplica]" = {}
    graveyard: "list[ScriptedReplica]" = []
    for position in range(slots):
        replica = ScriptedReplica(position, 0, router)
        replicas[position] = replica
        router.add_replica(position, replica.send, 0)

    submitted = []  # (value, future)
    counter = 0
    for op, arg in ops:
        if op == "submit":
            value = float(counter)
            counter += 1
            future = router.submit(
                KEY, np.full(2, value, dtype=np.float64), priority=arg
            )
            submitted.append((value, future))
        elif op == "step":
            router.step()
        elif op == "answer":
            target = replicas.get(arg % slots)
            if target is not None:
                target.answer_one()
            elif graveyard:
                graveyard[arg % len(graveyard)].answer_one()  # late result
        elif op == "kill":
            position = arg % slots
            target = replicas.pop(position, None)
            if target is not None:
                target.mark_dead()
                graveyard.append(target)
                router.replica_failed(position, target.generation)
        elif op == "respawn":
            position = arg % slots
            if position not in replicas:
                generations[position] += 1
                replica = ScriptedReplica(position, generations[position], router)
                replicas[position] = replica
                router.add_replica(position, replica.send, generations[position])

    # Recovery: guarantee at least one live replica, then drain to quiescence.
    if not replicas:
        generations[0] += 1
        replica = ScriptedReplica(0, generations[0], router)
        replicas[0] = replica
        router.add_replica(0, replica.send, generations[0])
    for _ in range(10_000):  # bounded drain; fails loudly rather than spins
        moved = router.pump()
        answered = 0
        for replica in replicas.values():
            before = len(replica.chunks)
            replica.answer_all()
            answered += before
        if not moved and not answered and router.queued() == 0:
            break
    else:
        raise AssertionError("router failed to drain within bound")
    # Dead replicas flush their buffers too — all must be dropped as late.
    for ghost in graveyard:
        ghost.answer_all()

    # The permutation invariant: every accepted request answered exactly
    # once, by a live replica (payload 2v, never the poison -v), and the
    # router's own accounting agrees.
    for value, future in submitted:
        assert future.done(), f"request {value} was accepted but never answered"
        row = future.result(timeout=0)
        assert row[0] == 2.0 * value, f"request {value} answered with {row[0]}"
    snap = router.snapshot()
    assert snap["accepted"] == len(submitted)
    assert snap["queued"] == 0
    router.close()
