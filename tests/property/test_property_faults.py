"""Property-based tests for the fault injector's invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import ArrayDataset
from repro.faults import (
    inject,
    mislabelling,
    removal,
    repetition,
)


@st.composite
def datasets(draw):
    n = draw(st.integers(10, 60))
    k = draw(st.integers(2, 6))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    images = rng.random((n, 1, 4, 4)).astype(np.float32)
    labels = rng.integers(0, k, n)
    return ArrayDataset(images, labels, k, "prop")


RATES = st.sampled_from([0.0, 0.1, 0.3, 0.5, 0.9])
SEEDS = st.integers(0, 2**16)


class TestMislabellingInvariants:
    @given(datasets(), RATES, SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_size_preserved_and_count_exact(self, ds, rate, seed):
        faulty, report = inject(ds, mislabelling(rate), seed=seed)
        assert len(faulty) == len(ds)
        expected = int(round(rate * len(ds)))
        assert report.num_mislabelled == expected
        assert (faulty.labels != ds.labels).sum() == expected

    @given(datasets(), RATES, SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_labels_stay_valid(self, ds, rate, seed):
        faulty, _ = inject(ds, mislabelling(rate), seed=seed)
        assert faulty.labels.min() >= 0
        assert faulty.labels.max() < ds.num_classes

    @given(datasets(), RATES, SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_images_never_touched(self, ds, rate, seed):
        faulty, _ = inject(ds, mislabelling(rate), seed=seed)
        np.testing.assert_array_equal(faulty.images, ds.images)


class TestRemovalInvariants:
    @given(datasets(), RATES, SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_size_shrinks_exactly(self, ds, rate, seed):
        faulty, report = inject(ds, removal(rate), seed=seed)
        expected_removed = min(int(round(rate * len(ds))), len(ds) - 1)
        assert len(faulty) == len(ds) - expected_removed
        assert report.num_removed == expected_removed

    @given(datasets(), RATES, SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_survivors_are_a_subsequence(self, ds, rate, seed):
        faulty, report = inject(ds, removal(rate), seed=seed)
        keep = np.ones(len(ds), dtype=bool)
        keep[report.removed_indices] = False
        np.testing.assert_array_equal(faulty.labels, ds.labels[keep])


class TestRepetitionInvariants:
    @given(datasets(), RATES, SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_size_grows_exactly(self, ds, rate, seed):
        faulty, report = inject(ds, repetition(rate), seed=seed)
        expected = int(round(rate * len(ds)))
        assert len(faulty) == len(ds) + expected
        assert report.num_repeated == expected

    @given(datasets(), RATES, SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_prefix_unchanged(self, ds, rate, seed):
        faulty, _ = inject(ds, repetition(rate), seed=seed)
        np.testing.assert_array_equal(faulty.labels[: len(ds)], ds.labels)
        np.testing.assert_array_equal(faulty.images[: len(ds)], ds.images)


class TestDeterminismAndComposition:
    @given(datasets(), RATES, SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_same_seed_same_outcome(self, ds, rate, seed):
        a, _ = inject(ds, mislabelling(rate), seed=seed)
        b, _ = inject(ds, mislabelling(rate), seed=seed)
        np.testing.assert_array_equal(a.labels, b.labels)

    @given(datasets(), SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_combined_size_arithmetic(self, ds, seed):
        spec = mislabelling(0.2) & removal(0.2) & repetition(0.2)
        n = len(ds)
        after_removal = n - min(int(round(0.2 * n)), n - 1)
        expected = after_removal + int(round(0.2 * after_removal))
        faulty, _ = inject(ds, spec, seed=seed)
        assert len(faulty) == expected

    @given(datasets(), SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_protected_indices_keep_labels_through_any_combo(self, ds, seed):
        protected = np.arange(min(5, len(ds)))
        spec = mislabelling(0.5) & removal(0.3)
        faulty, report = inject(ds, spec, seed=seed, protected_indices=protected)
        after = report.protected_indices_after
        np.testing.assert_array_equal(faulty.labels[after], ds.labels[protected])
