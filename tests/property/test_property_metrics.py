"""Property-based tests for the reliability metrics."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import from_one_hot, one_hot, smooth_labels
from repro.metrics import accuracy, accuracy_delta, confusion_matrix, reverse_accuracy_delta


@st.composite
def prediction_triples(draw):
    n = draw(st.integers(1, 60))
    k = draw(st.integers(2, 8))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, k, n),  # golden
        rng.integers(0, k, n),  # faulty
        rng.integers(0, k, n),  # labels
        k,
    )


class TestADProperties:
    @given(prediction_triples())
    @settings(max_examples=60, deadline=None)
    def test_ad_in_unit_interval(self, triple):
        golden, faulty, labels, _ = triple
        assert 0.0 <= accuracy_delta(golden, faulty, labels) <= 1.0

    @given(prediction_triples())
    @settings(max_examples=60, deadline=None)
    def test_identical_models_zero_ad(self, triple):
        golden, _, labels, _ = triple
        assert accuracy_delta(golden, golden, labels) == 0.0

    @given(prediction_triples())
    @settings(max_examples=60, deadline=None)
    def test_ad_decomposition(self, triple):
        # faulty_acc >= golden_acc * (1 - AD): the faulty model keeps at least
        # the unbroken golden-correct inputs.
        golden, faulty, labels, _ = triple
        g = accuracy(golden, labels)
        f = accuracy(faulty, labels)
        ad = accuracy_delta(golden, faulty, labels)
        assert f >= g * (1 - ad) - 1e-9

    @given(prediction_triples())
    @settings(max_examples=60, deadline=None)
    def test_reverse_ad_in_unit_interval(self, triple):
        golden, faulty, labels, _ = triple
        assert 0.0 <= reverse_accuracy_delta(golden, faulty, labels) <= 1.0

    @given(prediction_triples())
    @settings(max_examples=60, deadline=None)
    def test_accuracy_identity(self, triple):
        # faulty accuracy = golden_acc*(1-AD) + (1-golden_acc)*reverseAD.
        golden, faulty, labels, _ = triple
        g = accuracy(golden, labels)
        f = accuracy(faulty, labels)
        ad = accuracy_delta(golden, faulty, labels)
        rad = reverse_accuracy_delta(golden, faulty, labels)
        np.testing.assert_allclose(f, g * (1 - ad) + (1 - g) * rad, atol=1e-9)


class TestConfusionProperties:
    @given(prediction_triples())
    @settings(max_examples=40, deadline=None)
    def test_total_mass_and_diagonal(self, triple):
        _, preds, labels, k = triple
        m = confusion_matrix(preds, labels, k)
        assert m.sum() == len(labels)
        assert np.trace(m) == (preds == labels).sum()


class TestLabelTransformProperties:
    @given(st.integers(2, 10), st.integers(1, 50), st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_one_hot_roundtrip(self, k, n, seed):
        labels = np.random.default_rng(seed).integers(0, k, n)
        np.testing.assert_array_equal(from_one_hot(one_hot(labels, k)), labels)

    @given(
        st.integers(2, 10),
        st.integers(1, 30),
        st.floats(0.01, 0.95),
        st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_smoothing_preserves_argmax_and_mass(self, k, n, alpha, seed):
        labels = np.random.default_rng(seed).integers(0, k, n)
        targets = one_hot(labels, k)
        smoothed = smooth_labels(targets, alpha)
        np.testing.assert_allclose(smoothed.sum(axis=1), np.ones(n), rtol=1e-4)
        if alpha < (k - 1) / k:  # argmax preserved below the uniform point
            np.testing.assert_array_equal(smoothed.argmax(axis=1), labels)
