"""Property-based tests for the noise-robust loss functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor
from repro.nn.losses import (
    ActivePassiveLoss,
    CrossEntropy,
    MeanAbsoluteError,
    NormalizedCrossEntropy,
    ReverseCrossEntropy,
)


@st.composite
def logits_and_labels(draw):
    n = draw(st.integers(1, 12))
    k = draw(st.integers(2, 6))
    logits = draw(
        hnp.arrays(
            dtype=np.float32,
            shape=(n, k),
            elements=st.floats(-8.0, 8.0, allow_nan=False, width=32),
        )
    )
    seed = draw(st.integers(0, 2**16))
    labels = np.random.default_rng(seed).integers(0, k, n)
    return logits, labels, k


def _one_hot(labels, k):
    return np.eye(k, dtype=np.float32)[labels]


class TestSymmetryConditions:
    """Ghosh et al.: a loss with constant sum over all label assignments is
    robust to symmetric label noise.  MAE and (one-hot) RCE satisfy it; CE
    does not."""

    @given(logits_and_labels())
    @settings(max_examples=40, deadline=None)
    def test_mae_symmetry(self, case):
        logits, _, k = case
        t = Tensor(logits)
        total = sum(float(MeanAbsoluteError()(t, _one_hot(np.full(len(logits), c), k)).item()) for c in range(k))
        assert total == pytest.approx(2.0 * (k - 1), rel=1e-3)

    @given(logits_and_labels())
    @settings(max_examples=40, deadline=None)
    def test_rce_symmetry(self, case):
        logits, _, k = case
        t = Tensor(logits)
        total = sum(
            float(ReverseCrossEntropy(log_clip=-4.0)(t, _one_hot(np.full(len(logits), c), k)).item())
            for c in range(k)
        )
        assert total == pytest.approx(4.0 * (k - 1), rel=1e-3)

    @given(logits_and_labels())
    @settings(max_examples=40, deadline=None)
    def test_nce_bounded(self, case):
        logits, labels, k = case
        value = float(NormalizedCrossEntropy()(Tensor(logits), _one_hot(labels, k)).item())
        assert 0.0 < value <= 1.0 + 1e-6


class TestAPLLinearity:
    @given(logits_and_labels(), st.floats(0.1, 5.0), st.floats(0.1, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_weighted_sum(self, case, alpha, beta):
        logits, labels, k = case
        t = Tensor(logits)
        targets = _one_hot(labels, k)
        apl = float(ActivePassiveLoss(alpha=alpha, beta=beta)(t, targets).item())
        nce = float(NormalizedCrossEntropy()(t, targets).item())
        rce = float(ReverseCrossEntropy()(t, targets).item())
        assert apl == pytest.approx(alpha * nce + beta * rce, rel=1e-3, abs=1e-4)


class TestCEProperties:
    @given(logits_and_labels())
    @settings(max_examples=40, deadline=None)
    def test_nonnegative(self, case):
        logits, labels, k = case
        value = float(CrossEntropy()(Tensor(logits), _one_hot(labels, k)).item())
        assert value >= -1e-6

    @given(logits_and_labels(), st.floats(0.5, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_shift_invariance(self, case, shift):
        # CE over softmax is invariant to adding a constant to all logits.
        logits, labels, k = case
        targets = _one_hot(labels, k)
        a = float(CrossEntropy()(Tensor(logits), targets).item())
        b = float(CrossEntropy()(Tensor(logits + shift), targets).item())
        assert a == pytest.approx(b, rel=1e-3, abs=1e-4)

    @given(logits_and_labels())
    @settings(max_examples=40, deadline=None)
    def test_gradient_is_finite(self, case):
        logits, labels, k = case
        t = Tensor(logits, requires_grad=True)
        CrossEntropy()(t, _one_hot(labels, k)).backward()
        assert np.isfinite(t.grad).all()
