"""HTTP endpoint tests: routes, JSON shapes, error paths, concurrency.

The server binds to port 0 (OS-assigned) so tests never collide with a real
service or each other.  Responses on ``/predict`` must carry the same
bitwise logits as in-process inference — the HTTP layer adds JSON transport,
not numerics.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import BatchSettings, ServingEngine
from repro.serve.server import ServingServer

from .conftest import KEY


@pytest.fixture()
def server(registry):
    engine = ServingEngine(
        registry, BatchSettings(max_batch_size=8, max_latency_ms=3.0, workers=2)
    ).start()
    http = ServingServer(engine, port=0)
    thread = threading.Thread(
        target=http.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    try:
        yield http
    finally:
        http.shutdown()
        thread.join(timeout=5)
        http.server_close()
        engine.close()


def get(server: ServingServer, path: str) -> dict:
    with urllib.request.urlopen(server.url + path, timeout=10) as response:
        return json.loads(response.read())


def post(server: ServingServer, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def post_error(server: ServingServer, path: str, payload: dict) -> tuple[int, dict]:
    try:
        post(server, path, payload)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())
    raise AssertionError("expected an HTTP error")


class TestRoutes:
    def test_healthz(self, server):
        assert get(server, "/healthz") == {"status": "ok", "models": 1}

    def test_models_catalog(self, server):
        payload = get(server, "/models")
        assert [m["key"] for m in payload["models"]] == [KEY.id]

    def test_stats_shape(self, server):
        stats = get(server, "/stats")
        assert {"requests", "batches", "errors", "mean_batch"} <= set(stats)

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server, "/nope")
        assert excinfo.value.code == 404


class TestPredict:
    def test_logits_bitwise_equal(self, server, inputs, reference):
        payload = post(
            server, "/predict", {"model": KEY.id, "inputs": inputs[:5].tolist()}
        )
        assert payload["model"] == KEY.id
        assert payload["count"] == 5
        got = np.asarray(payload["logits"], dtype=np.float32)
        np.testing.assert_array_equal(got, reference[:5])
        assert payload["labels"] == reference[:5].argmax(axis=1).tolist()

    def test_single_sample_and_proba(self, server, inputs):
        payload = post(
            server, "/predict",
            {"model": KEY.id, "inputs": inputs[0].tolist(), "return": "proba"},
        )
        assert payload["count"] == 1
        proba = np.asarray(payload["proba"])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-5)

    def test_concurrent_clients_bitwise_equal(self, server, inputs, reference):
        clients = 4
        per_client = len(inputs) // clients
        results: dict[int, np.ndarray] = {}
        errors: list[BaseException] = []

        def client(index: int) -> None:
            shard = inputs[index * per_client : (index + 1) * per_client]
            try:
                payload = post(
                    server, "/predict", {"model": KEY.id, "inputs": shard.tolist()}
                )
                results[index] = np.asarray(payload["logits"], dtype=np.float32)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for index in range(clients):
            np.testing.assert_array_equal(
                results[index],
                reference[index * per_client : (index + 1) * per_client],
            )

    def test_unknown_model_is_400(self, server, inputs):
        code, body = post_error(
            server, "/predict",
            {"model": "cifar10/vgg16/baseline/none", "inputs": inputs[0].tolist()},
        )
        assert code == 400
        assert "no model registered" in body["error"]

    def test_missing_fields_are_400(self, server, inputs):
        code, body = post_error(server, "/predict", {"inputs": inputs[0].tolist()})
        assert code == 400 and "model" in body["error"]
        code, body = post_error(server, "/predict", {"model": KEY.id})
        assert code == 400 and "inputs" in body["error"]

    def test_wrong_rank_is_400(self, server):
        code, body = post_error(
            server, "/predict", {"model": KEY.id, "inputs": [[1.0, 2.0]]}
        )
        assert code == 400
        assert "dims" in body["error"]

    def test_bad_return_kind_is_400(self, server, inputs):
        code, body = post_error(
            server, "/predict",
            {"model": KEY.id, "inputs": inputs[0].tolist(), "return": "embeddings"},
        )
        assert code == 400
        assert "return kind" in body["error"]


class TestMetricsEndpoint:
    def test_metrics_prometheus_text(self, server, inputs):
        from repro.telemetry import parse_prometheus_text

        post(server, "/predict", {"model": KEY.id, "inputs": inputs[:4].tolist()})
        request = urllib.request.Request(server.url + "/metrics")
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        parsed = parse_prometheus_text(text)  # validates +Inf buckets, counts
        assert parsed["serve_requests_total"]["value"] >= 4
        assert parsed["serve_batches_total"]["value"] >= 1
        assert parsed["serve_errors_total"]["value"] == 0
        latency = parsed["serve_request_latency_seconds"]
        assert latency["type"] == "histogram"
        assert latency["count"] >= 4
        assert f'serve_request_latency_seconds_bucket{{le="+Inf"}}' in text

    def test_metrics_json(self, server, inputs):
        post(server, "/predict", {"model": KEY.id, "inputs": inputs[:2].tolist()})
        snapshot = get(server, "/metrics?format=json")
        assert snapshot["serve_requests_total"]["type"] == "counter"
        assert snapshot["serve_requests_total"]["value"] >= 2
        hist = snapshot["serve_request_latency_seconds"]
        assert hist["type"] == "histogram"
        assert hist["count"] == sum(hist["counts"])
        assert len(hist["counts"]) == len(hist["buckets"]) + 1  # +Inf overflow

    def test_stats_percentiles_match_histogram(self, server, inputs):
        """/stats p50/p95/p99 come from the same histogram /metrics serves."""
        from repro.telemetry import Histogram, latency_summary_ms

        post(server, "/predict", {"model": KEY.id, "inputs": inputs[:8].tolist()})
        stats = get(server, "/stats")
        assert {"p50_ms", "p95_ms", "p99_ms"} == set(stats["latency_ms"])
        assert {"p50", "p95", "p99", "counts", "buckets"} <= set(stats["batch_size"])

        # Rebuild the histogram from the served snapshot and recompute the
        # summary with the shared implementation — they must agree exactly.
        snapshot = get(server, "/metrics?format=json")
        served = snapshot["serve_request_latency_seconds"]
        hist = Histogram("rebuilt", buckets=served["buckets"])
        hist.merge(served)
        rebuilt = latency_summary_ms(hist)
        # The live histogram may have absorbed more requests between the two
        # GETs only if another test ran concurrently; the suite is serial, so
        # the snapshots agree.
        assert stats["latency_ms"] == rebuilt


class _SleepyModule:
    """Duck-typed module whose forward stalls long enough to trip timeouts."""

    def __init__(self, delay_s: float) -> None:
        self.delay_s = delay_s

    def eval(self) -> "_SleepyModule":
        return self

    def num_parameters(self) -> int:
        return 0

    def __call__(self, tensor):
        import time

        time.sleep(self.delay_s)
        return tensor


class TestRequestTimeout:
    def test_slow_prediction_returns_503(self, inputs):
        from repro.serve import ModelKey, ModelRegistry

        key = ModelKey(model="sleepy", dataset="gtsrb")
        reg = ModelRegistry()
        reg.register_module(key, _SleepyModule(delay_s=2.0))
        engine = ServingEngine(
            reg, BatchSettings(max_batch_size=8, max_latency_ms=1.0, workers=1)
        ).start()
        http = ServingServer(engine, port=0, request_timeout_s=0.1)
        thread = threading.Thread(
            target=http.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
        )
        thread.start()
        try:
            code, body = post_error(
                http, "/predict", {"model": key.id, "inputs": inputs[0].tolist()}
            )
            assert code == 503
            assert "timed out" in body["error"]
            # The server survives the timeout and keeps answering.
            assert get(http, "/healthz")["status"] == "ok"
        finally:
            http.shutdown()
            thread.join(timeout=5)
            http.server_close()
            engine.close()

    def test_timeout_validation(self, registry):
        engine = ServingEngine(registry, BatchSettings(max_latency_ms=1.0))
        with pytest.raises(ValueError, match="request_timeout_s"):
            ServingServer(engine, port=0, request_timeout_s=0.0)


class TestShutdown:
    def test_shutdown_route_stops_the_server(self, registry):
        engine = ServingEngine(registry, BatchSettings(max_latency_ms=1.0)).start()
        http = ServingServer(engine, port=0)
        thread = threading.Thread(
            target=http.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
        )
        thread.start()
        try:
            assert post(http, "/shutdown", {}) == {"status": "shutting down"}
            thread.join(timeout=5)
            assert not thread.is_alive()
        finally:
            http.server_close()
            engine.close()
