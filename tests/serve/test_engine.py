"""Batched-equivalence and behaviour tests for the micro-batching engine.

The central claim of the serving subsystem: **batching is invisible**.  For
every coalescing the engine might choose — batch caps of 1, 3, or 8, single
or concurrent clients, one or many workers — the logits returned for a
sample are bitwise-identical to a one-at-a-time ``predict_logits`` call
through the training stack.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve import BatchSettings, EngineClosedError, ServingEngine
from repro.telemetry import RecordingTelemetry, span_tree, validate_trace

from .conftest import KEY, NUM_CLASSES


def make_engine(registry, **kwargs) -> ServingEngine:
    defaults = dict(max_batch_size=8, max_latency_ms=2.0, workers=1)
    defaults.update(kwargs)
    return ServingEngine(registry, BatchSettings(**defaults))


class TestBatchedEquivalence:
    @pytest.mark.parametrize("max_batch_size", [1, 3, 8])
    def test_bitwise_equal_at_every_batch_cap(
        self, registry, inputs, reference, max_batch_size
    ):
        with make_engine(registry, max_batch_size=max_batch_size) as engine:
            out = engine.predict(KEY, inputs)
        np.testing.assert_array_equal(out, reference)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_concurrent_clients_bitwise_equal(
        self, registry, inputs, reference, workers
    ):
        """Many client threads; samples coalesce across clients arbitrarily."""
        clients = 4
        per_client = len(inputs) // clients
        results: dict[int, np.ndarray] = {}
        errors: list[BaseException] = []
        with make_engine(
            registry, max_batch_size=8, max_latency_ms=5.0, workers=workers
        ) as engine:

            def client(index: int) -> None:
                shard = inputs[index * per_client : (index + 1) * per_client]
                try:
                    results[index] = engine.predict(KEY, shard)
                except BaseException as exc:  # surface in the main thread
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        for index in range(clients):
            np.testing.assert_array_equal(
                results[index],
                reference[index * per_client : (index + 1) * per_client],
            )

    def test_single_sample_predict(self, registry, inputs, reference):
        with make_engine(registry) as engine:
            row = engine.predict(KEY, inputs[5])
        assert row.ndim == 1
        np.testing.assert_array_equal(row, reference[5])


class TestEngineBehaviour:
    def test_batches_actually_coalesce(self, registry, inputs):
        """Pre-submitted samples must not all run as singleton batches."""
        with make_engine(registry, max_batch_size=8, max_latency_ms=20.0) as engine:
            futures = [engine.submit(KEY, sample) for sample in inputs]
            for future in futures:
                future.result(timeout=30)
            stats = engine.stats.snapshot()
        assert stats["requests"] == len(inputs)
        assert stats["max_batch"] > 1
        assert stats["batches"] < len(inputs)

    def test_batch_cap_is_respected(self, registry, inputs):
        with make_engine(registry, max_batch_size=3, max_latency_ms=20.0) as engine:
            futures = [engine.submit(KEY, sample) for sample in inputs]
            for future in futures:
                future.result(timeout=30)
            assert engine.stats.max_batch <= 3

    def test_unknown_model_fails_on_submit(self, registry, inputs):
        with make_engine(registry) as engine:
            with pytest.raises(KeyError, match="no model registered"):
                engine.submit("cifar10/vgg16/baseline/none", inputs[0])

    def test_submit_after_close_raises(self, registry, inputs):
        # close() is terminal: a late submit must raise the typed
        # EngineClosedError (never enqueue a request nobody will serve).
        engine = make_engine(registry).start()
        engine.close()
        with pytest.raises(EngineClosedError, match="closed"):
            engine.submit(KEY, inputs[0])

    def test_submit_after_close_without_start_raises(self, registry, inputs):
        # Even an engine closed before ever starting refuses submissions
        # with the terminal error, not the recoverable "not running" one.
        engine = make_engine(registry)
        engine.close()
        with pytest.raises(EngineClosedError, match="closed"):
            engine.submit(KEY, inputs[0])
        with pytest.raises(EngineClosedError, match="closed"):
            engine.start()

    def test_submit_close_race_never_hangs_a_future(self, registry, inputs):
        # Regression for the submit()-after-close race: hammer submit from
        # several threads while the engine closes; every future obtained
        # must complete (result or error) — none may hang unserved.
        for _ in range(5):
            engine = make_engine(registry, max_latency_ms=0.1).start()
            futures, barrier = [], threading.Barrier(4)
            lock = threading.Lock()

            def submitter() -> None:
                barrier.wait()
                for i in range(20):
                    try:
                        future = engine.submit(KEY, inputs[i % len(inputs)])
                    except EngineClosedError:
                        return  # refused cleanly — the fix under test
                    with lock:
                        futures.append(future)

            threads = [threading.Thread(target=submitter) for _ in range(3)]
            for thread in threads:
                thread.start()
            barrier.wait()
            engine.close()
            for thread in threads:
                thread.join()
            for future in futures:
                # A timeout here IS the regression: a request accepted by
                # submit() that close() never served.
                try:
                    row = future.result(timeout=5)
                except EngineClosedError:
                    continue  # failed over cleanly at close
                assert row.shape == (NUM_CLASSES,)

    def test_close_fails_pending_futures(self, registry, inputs):
        engine = make_engine(registry, max_batch_size=64, max_latency_ms=60_000.0)
        engine.start()
        future = engine.submit(KEY, inputs[0])
        # One queued sample, a huge latency window, a batch that will never
        # fill: close() must fail it rather than hang the caller...
        engine.close()
        with pytest.raises(RuntimeError, match="closed|engine"):
            future.result(timeout=5)

    def test_inference_error_fails_whole_batch(self, registry):
        bad = np.zeros((2, 1, 8, 8), dtype=np.float32)  # wrong channel count
        with make_engine(registry, max_latency_ms=5.0) as engine:
            futures = [engine.submit(KEY, sample) for sample in bad]
            for future in futures:
                with pytest.raises(ValueError):
                    future.result(timeout=30)
            assert engine.stats.errors >= 1

    def test_settings_validation(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            BatchSettings(max_batch_size=0)
        with pytest.raises(ValueError, match="max_latency_ms"):
            BatchSettings(max_latency_ms=-1.0)
        with pytest.raises(ValueError, match="workers"):
            BatchSettings(workers=0)


class TestEngineTelemetry:
    def test_trace_is_valid_and_nested(self, registry, inputs, reference):
        telemetry = RecordingTelemetry()
        with ServingEngine(
            registry,
            BatchSettings(max_batch_size=4, max_latency_ms=2.0, workers=2),
            telemetry=telemetry,
        ) as engine:
            out = engine.predict(KEY, inputs)
        np.testing.assert_array_equal(out, reference)

        events = telemetry.events
        summary = validate_trace(events)
        assert summary["spans"] >= 2  # the root + at least one batch
        (root,) = span_tree(events)
        assert root.name == "serve"
        batch_spans = [c for c in root.children if c.name == "serve_batch"]
        assert batch_spans, "serve_batch spans must nest under the root"
        assert sum(s.attrs["batch"] for s in batch_spans) == len(inputs)
        for span in batch_spans:
            assert [g.name for g in span.children] == ["serve_infer"]
