"""Shared fixtures for the serving tests: a small registered ConvNet."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.registry import build_model
from repro.serve import ModelKey, ModelRegistry

IMAGE_SHAPE = (3, 8, 8)
NUM_CLASSES = 10
KEY = ModelKey(model="convnet", dataset="gtsrb")


@pytest.fixture(scope="module")
def registry() -> ModelRegistry:
    reg = ModelRegistry()
    module = build_model(
        "convnet", image_shape=IMAGE_SHAPE, num_classes=NUM_CLASSES, seed=3
    )
    reg.register_module(KEY, module)
    return reg


@pytest.fixture(scope="module")
def inputs() -> np.ndarray:
    rng = np.random.default_rng(0)
    return rng.standard_normal((24, *IMAGE_SHAPE)).astype(np.float32)


@pytest.fixture(scope="module")
def reference(registry, inputs) -> np.ndarray:
    """One-at-a-time logits through the *training* stack's plain
    ``predict_logits`` — the bitwise ground truth every batching must hit."""
    from repro.nn.trainer import predict_logits

    module = registry.get(KEY).module
    return np.concatenate(
        [predict_logits(module, inputs[i : i + 1]) for i in range(len(inputs))]
    )
