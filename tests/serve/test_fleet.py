"""Fleet tests: shared weights, bitwise equivalence, chaos, and HTTP 429s.

The chaos suite is the PR's test-archetype core: kill a replica mid-traffic
(thread backend: abrupt engine close; process backend: SIGKILL) and assert
the invariants the router guarantees — **zero lost accepted requests** and
**bitwise-identical responses** no matter which replica, batch, or respawn
served a sample.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serve import (
    BatchSettings,
    FleetSettings,
    ModelRegistry,
    ServingFleet,
    ServingServer,
    SharedWeights,
    ShedError,
)

from .conftest import KEY, NUM_CLASSES
from .loadgen import FleetTarget, make_schedule, run_closed_loop


def make_fleet(registry, **kwargs) -> ServingFleet:
    defaults = dict(
        replicas=2,
        backend="thread",
        health_interval_s=0.05,
        batch=BatchSettings(max_batch_size=4, max_latency_ms=1.0, workers=1),
    )
    defaults.update(kwargs)
    return ServingFleet(registry, FleetSettings(**defaults))


# ----------------------------------------------------------------------
# Shared-memory weights
# ----------------------------------------------------------------------

class TestSharedWeights:
    def test_attach_is_zero_copy_and_read_only(self, registry):
        import copy

        template = registry.get(KEY).module
        weights = SharedWeights(KEY, template)
        try:
            clone = copy.deepcopy(template)
            views = weights.attach(clone)
            assert views, "expected parameter/buffer views"
            for name, param in clone.named_parameters():
                assert not param.data.flags.writeable
                with pytest.raises(ValueError):
                    param.data[...] = 0.0
            # Same bytes as the template, but not the template's arrays.
            originals = dict(template.named_parameters())
            for name, param in clone.named_parameters():
                assert np.array_equal(param.data, originals[name].data)
                assert param.data.base is not originals[name].data
        finally:
            weights.close()

    def test_replicas_share_one_block(self, registry, inputs, reference):
        # N thread replicas of the same model must all point into the same
        # shared block — same underlying buffer address for each parameter.
        fleet = make_fleet(registry, replicas=3)
        with fleet:
            block = fleet._blocks[KEY]
            slots = list(fleet._slots.values())
            assert len(slots) == 3
            first_params = dict(
                slots[0].handle.registry.get(KEY).module.named_parameters()
            )
            for slot in slots[1:]:
                for name, param in slot.handle.registry.get(KEY).module.named_parameters():
                    a = param.data
                    b = first_params[name].data
                    assert np.shares_memory(a, b), f"{name} not shared"
            out = fleet.predict(KEY, inputs[:6])
            assert np.array_equal(out, reference[:6])

    def test_block_survives_template_registry(self, registry):
        template = registry.get(KEY).module
        weights = SharedWeights(KEY, template)
        reopened = weights.open()
        try:
            assert reopened.size >= weights.nbytes
        finally:
            reopened.close()
            weights.close()


# ----------------------------------------------------------------------
# Equivalence
# ----------------------------------------------------------------------

class TestFleetEquivalence:
    @pytest.mark.parametrize("replicas", [1, 2, 4])
    def test_bitwise_equal_to_single_engine(
        self, registry, inputs, reference, replicas
    ):
        with make_fleet(registry, replicas=replicas) as fleet:
            out = fleet.predict(KEY, inputs)
            assert out.dtype == reference.dtype
            assert np.array_equal(out, reference)

    def test_equal_under_concurrent_clients(self, registry, inputs, reference):
        with make_fleet(registry, replicas=3) as fleet:
            results: dict = {}
            errors: list = []

            def client(name: str, offset: int) -> None:
                try:
                    picks = [(offset + 3 * j) % len(inputs) for j in range(8)]
                    out = np.stack(
                        [fleet.predict(KEY, inputs[p], client=name) for p in picks]
                    )
                    results[name] = (picks, out)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(f"c{i}", i)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            for picks, out in results.values():
                assert np.array_equal(out, reference[picks])

    def test_process_backend_equivalence(self, registry, inputs, reference):
        with make_fleet(registry, replicas=2, backend="process") as fleet:
            out = fleet.predict(KEY, inputs[:8])
            assert np.array_equal(out, reference[:8])


# ----------------------------------------------------------------------
# Chaos
# ----------------------------------------------------------------------

class TestChaos:
    def test_thread_replica_kill_mid_traffic_loses_nothing(
        self, registry, inputs, reference
    ):
        # The headline chaos test: kill a replica while traffic flows.
        # Every accepted request must still be answered — correctly.
        with make_fleet(registry, replicas=3, max_queue=4096) as fleet:
            target = FleetTarget(fleet, KEY, inputs, timeout_s=30.0)
            schedule = make_schedule(
                120, rate=500.0, clients=("a", "b"), samples=len(inputs), seed=7
            )
            report_box: dict = {}

            def drive() -> None:
                report_box["report"] = run_closed_loop(target, schedule, concurrency=8)

            driver = threading.Thread(target=drive)
            driver.start()
            time.sleep(0.05)  # let traffic build before the kill
            fleet.kill_replica(0)
            driver.join(timeout=60)
            assert not driver.is_alive(), "load run hung after replica kill"
            report = report_box["report"]
            assert report.lost == 0
            assert report.errors == 0
            assert report.ok == report.accepted  # all accepted answered
            for outcome in report.outcomes:
                if outcome.status == "ok":
                    expected = int(np.argmax(reference[outcome.spec.sample]))
                    assert outcome.labels == (expected,)
            # The health monitor noticed and respawned into the slot.
            deadline = time.monotonic() + 10
            while fleet.describe()["respawns"] < 1 and time.monotonic() < deadline:
                time.sleep(0.02)
            described = fleet.describe()
            assert described["evictions"] >= 1
            assert described["respawns"] >= 1
            assert fleet.healthy_replicas() == 3

    def test_process_replica_sigkill_recovers(self, registry, inputs, reference):
        with make_fleet(registry, replicas=2, backend="process") as fleet:
            out = fleet.predict(KEY, inputs[:4])
            assert np.array_equal(out, reference[:4])
            victim_pid = fleet.replica_pids()[0]
            fleet.kill_replica(0)
            # Traffic through the outage: requests must fail over, and the
            # slot must come back at a new generation with a new pid.
            out = fleet.predict(KEY, inputs[4:10], timeout=30.0)
            assert np.array_equal(out, reference[4:10])
            deadline = time.monotonic() + 15
            while fleet.healthy_replicas() < 2 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert fleet.healthy_replicas() == 2
            assert victim_pid not in fleet.replica_pids()
            described = fleet.describe()
            assert described["evictions"] >= 1 and described["respawns"] >= 1
            out = fleet.predict(KEY, inputs[:4])
            assert np.array_equal(out, reference[:4])

    def test_slow_replica_overruns_deadline_and_is_evicted(
        self, registry, inputs, reference
    ):
        with make_fleet(
            registry, replicas=2, replica_deadline_s=0.3, health_interval_s=0.05
        ) as fleet:
            fleet.slow_replica(0, delay_s=5.0)
            out = fleet.predict(KEY, inputs[:6], timeout=30.0)
            assert np.array_equal(out, reference[:6])
            deadline = time.monotonic() + 10
            while fleet.describe()["evictions"] < 1 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert fleet.describe()["evictions"] >= 1

    def test_eviction_metrics_exposed(self, registry, inputs):
        with make_fleet(registry, replicas=2) as fleet:
            fleet.kill_replica(1)
            deadline = time.monotonic() + 10
            while fleet.describe()["respawns"] < 1 and time.monotonic() < deadline:
                time.sleep(0.02)
            snapshot = fleet.metrics.snapshot()
            assert snapshot["fleet_evictions_total"]["value"] >= 1
            assert snapshot["fleet_respawns_total"]["value"] >= 1


# ----------------------------------------------------------------------
# Admission behaviour through the fleet
# ----------------------------------------------------------------------

class TestFleetAdmission:
    def test_shed_raises_immediately_never_hangs(self, registry, inputs):
        with make_fleet(registry, replicas=1, max_queue=1) as fleet:
            fleet.slow_replica(0, delay_s=30.0)  # wedge so the queue fills
            accepted = []
            sheds = 0
            started = time.monotonic()
            for i in range(64):
                try:
                    accepted.append(fleet.submit(KEY, inputs[i % len(inputs)]))
                except ShedError as exc:
                    sheds += 1
                    assert exc.retry_after_s > 0
            elapsed = time.monotonic() - started
            assert sheds > 0
            assert elapsed < 5.0, "shedding must answer immediately, not block"

    def test_unknown_model_fails_fast(self, registry, inputs):
        with make_fleet(registry, replicas=1) as fleet:
            with pytest.raises(KeyError):
                fleet.submit("nope/nope/baseline/none", inputs[0])

    def test_submit_after_close_sheds(self, registry, inputs):
        fleet = make_fleet(registry, replicas=1)
        fleet.start()
        fleet.close()
        with pytest.raises(RuntimeError):
            fleet.submit(KEY, inputs[0])


# ----------------------------------------------------------------------
# HTTP surface (fleet mode)
# ----------------------------------------------------------------------

@pytest.fixture()
def fleet_http(registry):
    fleet = make_fleet(registry, replicas=2, max_queue=4096).start()
    server = ServingServer(fleet, port=0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    try:
        yield server, fleet
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        fleet.close()


def _get(url: str):
    import json
    import urllib.request

    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _post(url: str, payload: dict):
    import json
    import urllib.request

    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


class TestFleetHTTP:
    def test_fleet_endpoint_reports_replicas(self, fleet_http):
        server, _ = fleet_http
        payload = _get(f"{server.url}/fleet")
        assert payload["backend"] == "thread"
        assert len(payload["replicas"]) == 2
        assert all(r["alive"] for r in payload["replicas"])
        assert payload["settings"]["max_queue"] == 4096
        health = _get(f"{server.url}/healthz")
        assert health["replicas"] == 2

    def test_predict_routes_through_fleet(self, fleet_http, inputs, reference):
        server, _ = fleet_http
        status, payload = _post(
            f"{server.url}/predict",
            {"model": KEY.id, "inputs": inputs[:3].tolist(), "client": "t"},
        )
        assert status == 200
        assert np.array_equal(
            np.asarray(payload["logits"], dtype=np.float32), reference[:3]
        )

    def test_shed_maps_to_429_with_retry_after(self, registry, inputs):
        import urllib.error
        import urllib.request
        import json as jsonlib

        fleet = make_fleet(registry, replicas=1, max_queue=1).start()
        server = ServingServer(fleet, port=0)
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
        )
        thread.start()
        try:
            fleet.slow_replica(0, delay_s=30.0)
            saw_429 = None
            for i in range(64):
                body = jsonlib.dumps(
                    {"model": KEY.id, "inputs": inputs[0].tolist()}
                ).encode()
                request = urllib.request.Request(
                    f"{server.url}/predict", data=body,
                    headers={"Content-Type": "application/json"},
                )
                try:
                    urllib.request.urlopen(request, timeout=0.5)
                except urllib.error.HTTPError as exc:
                    if exc.code == 429:
                        saw_429 = exc
                        break
                    raise
                except TimeoutError:
                    continue  # accepted and in-flight behind the wedge
                except urllib.error.URLError:
                    continue
            assert saw_429 is not None, "queue never shed a request with 429"
            assert int(saw_429.headers["Retry-After"]) >= 1
            detail = jsonlib.loads(saw_429.read().decode())
            assert detail["reason"] in ("queue-full", "evicted")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            fleet.close()

    def test_stats_reflect_router(self, fleet_http, inputs):
        server, fleet = fleet_http
        _post(
            f"{server.url}/predict",
            {"model": KEY.id, "inputs": inputs[0].tolist()},
        )
        stats = _get(f"{server.url}/stats")
        assert stats["accepted"] >= 1
        assert "latency_ms" in stats and "router" in stats

    def test_metrics_expose_fleet_counters(self, fleet_http, inputs):
        import urllib.request

        server, _ = fleet_http
        _post(
            f"{server.url}/predict",
            {"model": KEY.id, "inputs": inputs[0].tolist()},
        )
        with urllib.request.urlopen(f"{server.url}/metrics", timeout=10) as resp:
            text = resp.read().decode("utf-8")
        assert "fleet_requests_total" in text
        assert "fleet_evictions_total" in text
        assert "fleet_replica0_latency_seconds" in text
