"""Unit tests for the fleet router: admission, fairness, dispatch, failover.

All tests drive the router by hand (``auto_dispatch=False`` + ``pump()``)
against fake replicas and a fake clock, so every scheduling decision is
deterministic — no threads, no sleeps, no real models.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import ModelKey, ReplicaGone, Router, ShedError, TokenBucket

KEY = ModelKey(model="convnet", dataset="gtsrb")
KEY_B = ModelKey(model="vgg11", dataset="cifar10")


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class FakeReplica:
    """A replica that records chunks and answers on demand (row = 2x sample)."""

    def __init__(self, slot: int, generation: int = 0) -> None:
        self.slot = slot
        self.generation = generation
        self.router: "Router | None" = None
        self.chunks: list = []
        self.fail_sends = False

    def register(self, router: Router) -> "FakeReplica":
        self.router = router
        router.add_replica(self.slot, self.send, self.generation)
        return self

    def send(self, chunk) -> None:
        if self.fail_sends:
            raise ReplicaGone(f"fake replica {self.slot} is gone")
        self.chunks.append(chunk)

    def answer_all(self) -> int:
        answered = 0
        while self.chunks:
            chunk = self.chunks.pop(0)
            for seq, sample in zip(chunk.seqs, chunk.samples):
                self.router.on_result(self.slot, self.generation, seq, sample * 2.0)
                answered += 1
        return answered


def make_router(**kwargs) -> Router:
    defaults = dict(max_queue=16, chunk=1, auto_dispatch=False)
    defaults.update(kwargs)
    return Router(**defaults)


def sample(value: float) -> np.ndarray:
    return np.full(2, value, dtype=np.float32)


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        assert bucket.deficit_s == pytest.approx(1.0)
        clock.advance(1.0)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.advance(100.0)  # a long idle period must not bank 1000 tokens
        for _ in range(3):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmission:
    def test_queue_bound_sheds_with_retry_after(self):
        router = make_router(max_queue=2)
        FakeReplica(0).register(router)
        router.submit(KEY, sample(1))
        router.submit(KEY, sample(2))
        with pytest.raises(ShedError) as excinfo:
            router.submit(KEY, sample(3))
        assert excinfo.value.reason == "queue-full"
        assert excinfo.value.retry_after_s > 0
        snap = router.snapshot()
        assert snap["shed"] == 1 and snap["accepted"] == 2

    def test_queue_bound_is_per_model(self):
        router = make_router(max_queue=1)
        router.submit(KEY, sample(1))
        router.submit(KEY_B, sample(2))  # other model's queue is independent
        with pytest.raises(ShedError):
            router.submit(KEY, sample(3))

    def test_evict_lowest_displaces_lower_priority(self):
        router = make_router(max_queue=2, shed_policy="evict-lowest")
        low = router.submit(KEY, sample(1), priority=0)
        router.submit(KEY, sample(2), priority=5)
        high = router.submit(KEY, sample(3), priority=3)  # displaces `low`
        assert isinstance(low.exception(timeout=1), ShedError)
        assert low.exception().reason == "evicted"
        assert not high.done()
        replica = FakeReplica(0).register(router)
        router.pump()
        replica.answer_all()
        assert high.result(timeout=1)[0] == pytest.approx(6.0)

    def test_evict_lowest_rejects_non_outranking_arrival(self):
        router = make_router(max_queue=1, shed_policy="evict-lowest")
        queued = router.submit(KEY, sample(1), priority=2)
        with pytest.raises(ShedError) as excinfo:
            router.submit(KEY, sample(2), priority=2)  # ties do not displace
        assert excinfo.value.reason == "queue-full"
        assert not queued.done()

    def test_submit_after_close_sheds(self):
        router = make_router()
        router.close()
        with pytest.raises(ShedError, match="shutdown"):
            router.submit(KEY, sample(1))


class TestFairness:
    def test_client_rate_limits_per_client(self):
        clock = FakeClock()
        router = make_router(client_rate=1.0, client_burst=2.0, clock=clock)
        router.submit(KEY, sample(1), client="greedy")
        router.submit(KEY, sample(2), client="greedy")
        with pytest.raises(ShedError) as excinfo:
            router.submit(KEY, sample(3), client="greedy")
        assert excinfo.value.reason == "client-rate"
        assert excinfo.value.retry_after_s == pytest.approx(1.0)
        clock.advance(1.0)
        router.submit(KEY, sample(4), client="greedy")  # refilled

    def test_greedy_client_cannot_starve_polite_one(self):
        # The starvation scenario: one client floods, another trickles.
        # Every polite request must be admitted; the greedy one saturates
        # its own bucket and eats all the sheds.
        clock = FakeClock()
        router = make_router(
            max_queue=1000, client_rate=5.0, client_burst=5.0, clock=clock
        )
        outcomes = {"greedy-ok": 0, "greedy-shed": 0, "polite-ok": 0}
        for tick in range(50):
            clock.advance(0.1)  # greedy offers 10/s against a 5/s allowance
            try:
                router.submit(KEY, sample(tick), client="greedy")
                outcomes["greedy-ok"] += 1
            except ShedError:
                outcomes["greedy-shed"] += 1
            if tick % 5 == 0:  # polite offers 2/s
                router.submit(KEY, sample(tick), client="polite")
                outcomes["polite-ok"] += 1
        assert outcomes["polite-ok"] == 10  # never shed
        assert outcomes["greedy-shed"] > 0
        # Greedy throughput converges on its allowance, not its offered rate.
        assert outcomes["greedy-ok"] <= 5 + 5 * 5  # burst + rate * 5s


class TestDispatch:
    def test_least_outstanding_balances_replicas(self):
        router = make_router()
        a = FakeReplica(0).register(router)
        b = FakeReplica(1).register(router)
        for i in range(6):
            router.submit(KEY, sample(i))
        router.pump()
        assert len(a.chunks) == 3 and len(b.chunks) == 3

    def test_chunking_groups_same_model(self):
        router = make_router(chunk=3)
        replica = FakeReplica(0).register(router)
        futures = [router.submit(KEY, sample(i)) for i in range(5)]
        router.pump()
        assert [len(c) for c in replica.chunks] == [3, 2]
        assert replica.chunks[0].stacked().shape == (3, 2)
        replica.answer_all()
        for i, future in enumerate(futures):
            assert future.result(timeout=1)[0] == pytest.approx(2.0 * i)

    def test_priority_order_under_saturation(self):
        router = make_router()
        replica = FakeReplica(0).register(router)
        order = []
        for i, priority in enumerate([0, 5, 1, 5, 2]):
            router.submit(KEY, sample(i), priority=priority)
        while router.step():
            chunk = replica.chunks[-1]
            order.extend(int(s[0]) for s in chunk.samples)
            replica.answer_all()
        # Priorities 5,5 first (FIFO within priority), then 2, 1, 0.
        assert order == [1, 3, 4, 2, 0]

    def test_replica_cap_stalls_dispatch(self):
        router = make_router(replica_cap=2, chunk=8)
        replica = FakeReplica(0).register(router)
        for i in range(5):
            router.submit(KEY, sample(i))
        router.pump()
        assert sum(len(c) for c in replica.chunks) == 2  # capped
        assert router.queued() == 3
        replica.answer_all()
        router.pump()
        assert sum(len(c) for c in replica.chunks) == 2

    def test_fifo_within_priority(self):
        router = make_router(chunk=8)
        replica = FakeReplica(0).register(router)
        futures = [router.submit(KEY, sample(i)) for i in range(4)]
        router.pump()
        assert list(replica.chunks[0].seqs) == sorted(replica.chunks[0].seqs)
        replica.answer_all()
        assert all(f.done() for f in futures)


class TestFailover:
    def test_replica_failure_requeues_and_redelivers_exactly_once(self):
        router = make_router(chunk=8)
        doomed = FakeReplica(0).register(router)
        futures = [router.submit(KEY, sample(i)) for i in range(4)]
        router.pump()
        assert router.replicas() == {0: 4}
        router.replica_failed(0, generation=0)
        assert router.queued() == 4  # everything requeued, nothing lost
        survivor = FakeReplica(1).register(router)
        router.pump()
        survivor.answer_all()
        for i, future in enumerate(futures):
            assert future.result(timeout=1)[0] == pytest.approx(2.0 * i)
        snap = router.snapshot()
        assert snap["redispatched"] == 4
        # The dead replica's buffered chunks must not double-deliver.
        doomed.answer_all()
        assert router.snapshot()["late_results"] == 4

    def test_send_exception_fails_the_replica_not_the_request(self):
        router = make_router()
        broken = FakeReplica(0).register(router)
        broken.fail_sends = True
        future = router.submit(KEY, sample(7))
        router.pump()
        assert router.replicas() == {}  # broken sender evicted
        assert not future.done()  # request survived, waiting for capacity
        healthy = FakeReplica(1).register(router)
        router.pump()
        healthy.answer_all()
        assert future.result(timeout=1)[0] == pytest.approx(14.0)
        assert router.queued() == 0

    def test_stale_generation_failure_is_ignored(self):
        router = make_router()
        FakeReplica(0).register(router)
        respawn = FakeReplica(0, generation=1)
        router.replica_failed(0, generation=0)
        respawn.register(router)
        router.submit(KEY, sample(1))
        router.pump()
        # The predecessor's late death report must not tear down the respawn.
        router.replica_failed(0, generation=0)
        assert router.replicas() == {0: 1}
        respawn.answer_all()

    def test_late_result_from_evicted_generation_is_dropped(self):
        router = make_router()
        old = FakeReplica(0).register(router)
        future = router.submit(KEY, sample(3))
        router.pump()
        seq = old.chunks[0].seqs[0]
        router.replica_failed(0, generation=0)
        FakeReplica(0, generation=1).register(router)
        router.on_result(0, 0, seq, sample(999))  # stale generation
        assert not future.done()
        assert router.snapshot()["late_results"] == 1

    def test_add_replica_rejects_stale_generation(self):
        router = make_router()
        FakeReplica(0, generation=3).register(router)
        with pytest.raises(ValueError, match="generation"):
            FakeReplica(0, generation=3).register(router)
        with pytest.raises(ValueError, match="generation"):
            FakeReplica(0, generation=2).register(router)

    def test_on_error_propagates_to_caller(self):
        router = make_router()
        replica = FakeReplica(0).register(router)
        future = router.submit(KEY, sample(1))
        router.pump()
        seq = replica.chunks[0].seqs[0]
        router.on_error(0, 0, seq, RuntimeError("inference exploded"))
        with pytest.raises(RuntimeError, match="exploded"):
            future.result(timeout=1)
        assert router.snapshot()["errors"] == 1


class TestLifecycle:
    def test_close_sheds_queued_and_outstanding(self):
        router = make_router()
        replica = FakeReplica(0).register(router)
        dispatched = router.submit(KEY, sample(1))
        router.pump()
        queued = router.submit(KEY, sample(2))
        router.close()
        for future in (dispatched, queued):
            exc = future.exception(timeout=1)
            assert isinstance(exc, ShedError) and exc.reason == "shutdown"
        assert not replica.chunks or router.snapshot()["queued"] == 0

    def test_close_is_idempotent(self):
        router = make_router()
        router.close()
        router.close()

    def test_auto_dispatch_thread_drives_without_pump(self):
        router = Router(max_queue=16, chunk=2, auto_dispatch=True)
        try:
            replica = FakeReplica(0)
            replica.router = router
            router.add_replica(0, replica.send)
            future = router.submit(KEY, sample(5))
            deadline = 5.0
            import time
            start = time.monotonic()
            while not replica.chunks and time.monotonic() - start < deadline:
                time.sleep(0.005)
            assert replica.chunks, "dispatcher thread never moved the request"
            replica.answer_all()
            assert future.result(timeout=5)[0] == pytest.approx(10.0)
        finally:
            router.close()

    def test_snapshot_shape(self):
        router = make_router()
        FakeReplica(0).register(router)
        router.submit(KEY, sample(1))
        snap = router.snapshot()
        assert snap["queued"] == 1
        assert snap["queues"] == {KEY.id: 1}
        assert snap["replicas"] == {"0": 0}
        assert snap["shed_policy"] == "reject"
        assert snap["max_queue"] == 16
        assert snap["retry_after_s"] > 0
