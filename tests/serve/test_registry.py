"""Tests for :mod:`repro.serve.registry`: keys, catalog, loading paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentConfig
from repro.models.registry import build_model
from repro.nn import StateFileError, save_model
from repro.nn.trainer import predict_logits
from repro.serve import ModelKey, ModelRegistry, ServableModel

from .conftest import IMAGE_SHAPE, KEY, NUM_CLASSES


class TestModelKey:
    def test_id_and_parse_roundtrip(self):
        key = ModelKey(
            model="vgg16", dataset="cifar10",
            technique="label_smoothing", fault_label="mislabelling@30%",
        )
        assert key.id == "cifar10/vgg16/label_smoothing/mislabelling@30%"
        assert ModelKey.parse(key.id) == key

    def test_defaults(self):
        key = ModelKey(model="convnet", dataset="gtsrb")
        assert key.technique == "baseline"
        assert key.fault_label == "none"

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="dataset/model/technique"):
            ModelKey.parse("just/two")


class TestRegistry:
    def test_register_and_get(self, registry):
        assert KEY in registry
        assert len(registry) == 1
        servable = registry.get(KEY)
        assert registry.get(KEY.id) is servable  # string lookup, same object

    def test_unknown_key_lists_known(self, registry):
        with pytest.raises(KeyError, match="gtsrb/convnet/baseline/none"):
            registry.get("cifar10/vgg16/baseline/none")

    def test_describe_shape(self, registry):
        (summary,) = registry.describe()
        assert summary["key"] == KEY.id
        assert summary["parameters"] > 0
        assert summary["source"] == "registered"


class TestServableModel:
    def test_predict_logits_matches_trainer(self, registry, inputs, reference):
        servable = registry.get(KEY)
        np.testing.assert_array_equal(servable.predict_logits(inputs), reference)

    def test_proba_and_labels_consistent(self, registry, inputs):
        servable = registry.get(KEY)
        proba = servable.predict_proba(inputs)
        labels = servable.predict_labels(inputs)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-5)
        np.testing.assert_array_equal(proba.argmax(axis=1), labels)


class TestLoadStateFile:
    def test_loads_saved_weights(self, tmp_path, inputs):
        trained = build_model(
            "convnet", image_shape=IMAGE_SHAPE, num_classes=NUM_CLASSES, seed=11
        ).eval()
        path = tmp_path / "cell.npz"
        save_model(trained, path)

        registry = ModelRegistry()
        servable = registry.load_state_file(
            path, KEY, image_shape=IMAGE_SHAPE, num_classes=NUM_CLASSES
        )
        expected = np.concatenate(
            [predict_logits(trained, inputs[i : i + 1]) for i in range(4)]
        )
        np.testing.assert_array_equal(servable.predict_logits(inputs[:4]), expected)
        assert servable.source.startswith("state-file:")

    def test_missing_file_raises(self, tmp_path):
        registry = ModelRegistry()
        with pytest.raises(StateFileError, match="no such model state file"):
            registry.load_state_file(
                tmp_path / "absent.npz", KEY,
                image_shape=IMAGE_SHAPE, num_classes=NUM_CLASSES,
            )

    def test_unknown_dataset_needs_explicit_geometry(self, tmp_path):
        registry = ModelRegistry()
        key = ModelKey(model="convnet", dataset="imagenet")
        with pytest.raises(StateFileError, match="unknown dataset"):
            registry.load_state_file(tmp_path / "x.npz", key)

    def test_grayscale_dataset_geometry_inferred(self, tmp_path):
        """Pneumonia models are 1-channel; inference must infer that."""
        trained = build_model(
            "convnet", image_shape=(1, 16, 16), num_classes=2, seed=5
        )
        path = tmp_path / "pneumonia.npz"
        save_model(trained, path)
        registry = ModelRegistry()
        key = ModelKey(model="convnet", dataset="pneumonia")
        servable = registry.load_state_file(path, key, scale="smoke")
        x = np.random.default_rng(0).standard_normal((2, 1, 16, 16)).astype(np.float32)
        assert servable.predict_logits(x).shape == (2, 2)


class TestRefitCell:
    def test_refit_is_deterministic(self, monkeypatch):
        """Two refits of the same cell register bitwise-identical models."""
        monkeypatch.setenv("REPRO_EPOCHS", "2")  # keep the fits fast
        config = ExperimentConfig(
            dataset="pneumonia", model="convnet", technique="baseline",
            fault_label="mislabelling@30%", repeats=1, scale="smoke",
        )
        first = ModelRegistry().refit_cell(config)
        second = ModelRegistry().refit_cell(config)
        state_a = first.module.state_dict()
        state_b = second.module.state_dict()
        assert set(state_a) == set(state_b)
        for name in state_a:
            np.testing.assert_array_equal(state_a[name], state_b[name])
        assert first.source.startswith("refit:smoke")

    def test_refit_rejects_ensemble(self, monkeypatch):
        monkeypatch.setenv("REPRO_EPOCHS", "1")
        config = ExperimentConfig(
            dataset="pneumonia", model="convnet", technique="ensemble",
            fault_label="none", repeats=1, scale="smoke",
        )
        with pytest.raises(ValueError, match="single servable"):
            ModelRegistry().refit_cell(config)
