"""Reusable load generator for the serving fleet (tests, chaos, benchmarks).

Deterministic by construction: a *schedule* — every request's arrival time,
client id, priority, and sample index — is derived entirely from a seed by
:func:`make_schedule`, so a failing run replays bit-for-bit from its seed.
The same schedules drive three consumers:

- the chaos tests in ``tests/serve/test_fleet.py`` (kill a replica mid-run,
  assert zero lost accepted requests),
- ``benchmarks/bench_fleet.py`` (single-engine baseline vs N-replica fleet),
- the CI ``fleet-smoke`` job (hundreds of concurrent HTTP connections
  against a ``repro-study serve --replicas`` process).

Two driving modes:

- :func:`run_closed_loop` — ``concurrency`` workers each issue their share
  of the schedule back-to-back (arrival times ignored).  Measures sustained
  throughput: the system is always saturated to exactly ``concurrency``
  in-flight requests.
- :func:`run_open_loop` — requests fire at their scheduled arrival times
  regardless of completions (bounded by a worker pool).  Measures latency
  under a target offered rate, and overload behaviour when the rate exceeds
  capacity.

Targets adapt the transport: :class:`FleetTarget` calls a
:class:`~repro.serve.fleet.ServingFleet` in-process; :class:`HTTPTarget`
speaks JSON to a running ``ServingServer`` (stdlib ``urllib`` only).  Both
normalise shedding into ``"shed"`` outcomes (fleet :class:`ShedError`,
HTTP 429) so reports are transport-independent.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field

import numpy as np

from repro.serve import ShedError

__all__ = [
    "RequestSpec",
    "Outcome",
    "LoadReport",
    "make_schedule",
    "FleetTarget",
    "HTTPTarget",
    "run_closed_loop",
    "run_open_loop",
]


@dataclass(frozen=True)
class RequestSpec:
    """One scheduled request: when, who, how urgent, which sample."""

    index: int
    at_s: float
    sample: int
    client: str
    priority: int = 0


@dataclass
class Outcome:
    """What happened to one request: ``ok`` | ``shed`` | ``error`` | ``lost``.

    ``lost`` means the request was *accepted* (not shed) but never answered
    within its deadline — the one outcome the chaos tests must never see.
    """

    spec: RequestSpec
    status: str
    latency_s: float = 0.0
    labels: "tuple[int, ...]" = ()
    error: str = ""
    retry_after_s: float = 0.0


@dataclass
class LoadReport:
    """Aggregated outcomes of one load run."""

    outcomes: "list[Outcome]" = field(default_factory=list)
    wall_s: float = 0.0

    def _by_status(self, status: str) -> "list[Outcome]":
        return [o for o in self.outcomes if o.status == status]

    @property
    def sent(self) -> int:
        return len(self.outcomes)

    @property
    def ok(self) -> int:
        return len(self._by_status("ok"))

    @property
    def shed(self) -> int:
        return len(self._by_status("shed"))

    @property
    def errors(self) -> int:
        return len(self._by_status("error"))

    @property
    def lost(self) -> int:
        """Accepted requests that never got an answer — must always be 0."""
        return len(self._by_status("lost"))

    @property
    def accepted(self) -> int:
        return self.sent - self.shed

    def latency_quantile(self, q: float) -> float:
        """Latency quantile in seconds over completed (``ok``) requests."""
        latencies = [o.latency_s for o in self._by_status("ok")]
        if not latencies:
            return 0.0
        return float(np.quantile(np.asarray(latencies), q))

    @property
    def throughput_rps(self) -> float:
        return self.ok / self.wall_s if self.wall_s > 0 else 0.0

    def ok_by_client(self) -> "dict[str, int]":
        counts: "dict[str, int]" = {}
        for outcome in self._by_status("ok"):
            counts[outcome.spec.client] = counts.get(outcome.spec.client, 0) + 1
        return counts

    def summary(self) -> dict:
        """JSON-shaped digest (recorded into ``BENCH_fleet.json``)."""
        return {
            "sent": self.sent,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "lost": self.lost,
            "wall_s": round(self.wall_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": round(self.latency_quantile(0.50) * 1e3, 3),
            "p99_ms": round(self.latency_quantile(0.99) * 1e3, 3),
        }


def make_schedule(
    n: int,
    rate: float,
    clients: "tuple[str, ...]" = ("c0",),
    samples: int = 1,
    priorities: "tuple[int, ...]" = (0,),
    seed: int = 0,
) -> "list[RequestSpec]":
    """A deterministic open-loop schedule: ``n`` Poisson arrivals at ``rate``/s.

    Every field of every request is a pure function of the arguments, so a
    failing run is replayed by its seed alone.  Clients, priorities, and
    sample indices are drawn uniformly from their pools.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1; got {n}")
    if rate <= 0:
        raise ValueError(f"rate must be positive; got {rate}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=n)
    at = np.cumsum(gaps) - gaps[0]  # first request fires immediately
    client_idx = rng.integers(0, len(clients), size=n)
    sample_idx = rng.integers(0, samples, size=n)
    priority_idx = rng.integers(0, len(priorities), size=n)
    return [
        RequestSpec(
            index=i,
            at_s=float(at[i]),
            sample=int(sample_idx[i]),
            client=clients[client_idx[i]],
            priority=priorities[priority_idx[i]],
        )
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# Targets
# ----------------------------------------------------------------------

class FleetTarget:
    """Drive a :class:`~repro.serve.fleet.ServingFleet` in-process."""

    def __init__(self, fleet, key, inputs: np.ndarray, timeout_s: float = 30.0) -> None:
        self.fleet = fleet
        self.key = key
        self.inputs = np.asarray(inputs)
        self.timeout_s = timeout_s

    def call(self, spec: RequestSpec) -> Outcome:
        sample = self.inputs[spec.sample % len(self.inputs)]
        started = time.monotonic()
        try:
            future = self.fleet.submit(
                self.key, sample, client=spec.client, priority=spec.priority
            )
        except ShedError as exc:
            return Outcome(spec, "shed", retry_after_s=exc.retry_after_s)
        try:
            row = future.result(timeout=self.timeout_s)
        except ShedError as exc:
            # Accepted then evicted/shut down — still a shed, not a loss.
            return Outcome(spec, "shed", retry_after_s=exc.retry_after_s)
        except (FutureTimeoutError, TimeoutError):
            return Outcome(spec, "lost", latency_s=time.monotonic() - started)
        except Exception as exc:  # noqa: BLE001 - recorded, not raised
            return Outcome(spec, "error", error=f"{type(exc).__name__}: {exc}")
        return Outcome(
            spec, "ok",
            latency_s=time.monotonic() - started,
            labels=(int(np.argmax(row)),),
        )


class HTTPTarget:
    """Drive a running :class:`~repro.serve.server.ServingServer` over HTTP."""

    def __init__(self, url: str, model: str, inputs: np.ndarray,
                 timeout_s: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.model = model
        self.inputs = np.asarray(inputs)
        self.timeout_s = timeout_s

    def call(self, spec: RequestSpec) -> Outcome:
        sample = self.inputs[spec.sample % len(self.inputs)]
        body = json.dumps({
            "model": self.model,
            "inputs": sample.tolist(),
            "return": "labels",
            "client": spec.client,
            "priority": spec.priority,
        }).encode("utf-8")
        request = urllib.request.Request(
            f"{self.url}/predict", data=body,
            headers={"Content-Type": "application/json"},
        )
        started = time.monotonic()
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                payload = json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", errors="replace")
            if exc.code == 429:
                retry_after = float(exc.headers.get("Retry-After", 1))
                return Outcome(spec, "shed", retry_after_s=retry_after)
            if exc.code == 503:
                return Outcome(spec, "lost", latency_s=time.monotonic() - started)
            return Outcome(spec, "error", error=f"HTTP {exc.code}: {detail[:200]}")
        except (urllib.error.URLError, TimeoutError, OSError) as exc:
            return Outcome(spec, "lost", latency_s=time.monotonic() - started,
                           error=str(exc))
        return Outcome(
            spec, "ok",
            latency_s=time.monotonic() - started,
            labels=tuple(payload.get("labels", ())),
        )


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------

def run_closed_loop(
    target, schedule: "list[RequestSpec]", concurrency: int = 8,
) -> LoadReport:
    """``concurrency`` workers issue their schedule shares back-to-back.

    Requests are split round-robin by index (deterministic), each worker
    sends sequentially; arrival times are ignored — the run measures
    sustained throughput at exactly ``concurrency`` in-flight requests.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1; got {concurrency}")
    report = LoadReport()
    lock = threading.Lock()

    def worker(shard: "list[RequestSpec]") -> None:
        for spec in shard:
            outcome = target.call(spec)
            with lock:
                report.outcomes.append(outcome)

    shards = [schedule[i::concurrency] for i in range(concurrency)]
    threads = [
        threading.Thread(target=worker, args=(shard,), daemon=True)
        for shard in shards if shard
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_s = time.monotonic() - started
    report.outcomes.sort(key=lambda o: o.spec.index)
    return report


def run_open_loop(
    target, schedule: "list[RequestSpec]", max_workers: int = 64,
    time_scale: float = 1.0,
) -> LoadReport:
    """Fire each request at ``at_s * time_scale``, independent of completions.

    A pool of ``max_workers`` threads services the arrivals; when the system
    falls behind the offered rate, arrivals queue at the pool (the
    closed-world approximation of an open-loop generator without unbounded
    thread spawn).  ``time_scale < 1`` compresses the schedule for tests.
    """
    report = LoadReport()
    lock = threading.Lock()
    semaphore = threading.Semaphore(max_workers)
    threads = []
    origin = time.monotonic()

    def fire(spec: RequestSpec) -> None:
        try:
            outcome = target.call(spec)
            with lock:
                report.outcomes.append(outcome)
        finally:
            semaphore.release()

    for spec in schedule:
        delay = origin + spec.at_s * time_scale - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        semaphore.acquire()
        thread = threading.Thread(target=fire, args=(spec,), daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    report.wall_s = time.monotonic() - origin
    report.outcomes.sort(key=lambda o: o.spec.index)
    return report
