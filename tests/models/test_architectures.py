"""Unit tests for the seven architectures of paper Table III."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    MODELS,
    PAPER_TABLE3,
    build_model,
    model_names,
    resnet18,
    resnet50,
    build_mobilenet,
    vgg11,
    vgg16,
)
from repro.nn import Adam, CrossEntropy, Tensor, Trainer

SHAPE_RGB = (3, 16, 16)
SHAPE_GRAY = (1, 16, 16)


class TestRegistry:
    def test_seven_models_in_table3_order(self):
        assert model_names() == [
            "convnet",
            "deconvnet",
            "vgg11",
            "vgg16",
            "resnet18",
            "mobilenet",
            "resnet50",
        ]

    def test_table3_has_seven_rows(self):
        assert len(PAPER_TABLE3) == 7

    def test_depth_classes(self):
        assert MODELS["convnet"].depth_class == "Moderate"
        assert MODELS["deconvnet"].depth_class == "Moderate"
        for deep in ("vgg11", "vgg16", "resnet18", "mobilenet", "resnet50"):
            assert MODELS[deep].depth_class == "Deep"

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="unknown model"):
            build_model("alexnet", SHAPE_RGB, 10)

    def test_case_insensitive(self):
        model = build_model("ConvNet", SHAPE_RGB, 10, seed=0)
        assert type(model).__name__ == "ConvNet"

    def test_rng_seed_exclusive(self):
        with pytest.raises(ValueError):
            build_model("convnet", SHAPE_RGB, 10, rng=np.random.default_rng(0), seed=1)

    def test_seeded_build_reproducible(self):
        a = build_model("vgg11", SHAPE_RGB, 5, seed=3)
        b = build_model("vgg11", SHAPE_RGB, 5, seed=3)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_lr_multiplier_attached(self):
        model = build_model("mobilenet", SHAPE_RGB, 10, seed=0)
        assert model.lr_multiplier > 1.0
        model = build_model("convnet", SHAPE_RGB, 10, seed=0)
        assert model.lr_multiplier == 1.0


class TestForwardShapes:
    @pytest.mark.parametrize("name", [
        "convnet", "deconvnet", "vgg11", "vgg16", "resnet18", "mobilenet", "resnet50",
    ])
    @pytest.mark.parametrize(("shape", "classes"), [(SHAPE_RGB, 43), (SHAPE_GRAY, 2)])
    def test_logit_shape(self, name, shape, classes, rng):
        model = build_model(name, shape, classes, seed=0)
        x = Tensor(rng.normal(size=(4, *shape)).astype(np.float32))
        model.eval()
        assert model(x).shape == (4, classes)

    @pytest.mark.parametrize("name", model_names())
    def test_finite_outputs(self, name, rng):
        model = build_model(name, SHAPE_RGB, 10, seed=0)
        model.eval()
        out = model(Tensor(rng.normal(size=(2, *SHAPE_RGB)).astype(np.float32)))
        assert np.isfinite(out.data).all()


class TestPaperDepths:
    def test_vgg_conv_counts(self):
        assert vgg11(SHAPE_RGB, 10, rng=np.random.default_rng(0)).num_conv_layers == 8
        assert vgg16(SHAPE_RGB, 10, rng=np.random.default_rng(0)).num_conv_layers == 13

    def test_resnet_conv_counts(self):
        # Table III: ResNet18 = 17 conv + 1 FC, ResNet50 = 49 conv + 1 FC.
        assert resnet18(SHAPE_RGB, 10, rng=np.random.default_rng(0)).num_conv_layers == 17
        assert resnet50(SHAPE_RGB, 10, rng=np.random.default_rng(0)).num_conv_layers == 49

    def test_mobilenet_conv_count(self):
        # Table III: MobileNet = 27 conv + 1 FC.
        model = build_mobilenet(SHAPE_RGB, 10, rng=np.random.default_rng(0))
        assert model.num_conv_layers == 27

    def test_deconvnet_has_dropout(self):
        from repro.nn import Dropout

        model = build_model("deconvnet", SHAPE_RGB, 10, seed=0)
        dropouts = [m for m in model.modules() if isinstance(m, Dropout)]
        assert dropouts
        assert all(d.rate == 0.5 for d in dropouts)

    def test_resnet50_uses_bottlenecks(self):
        from repro.models import BottleneckBlock

        model = resnet50(SHAPE_RGB, 10, rng=np.random.default_rng(0))
        blocks = [m for m in model.modules() if isinstance(m, BottleneckBlock)]
        assert len(blocks) == 16  # 3 + 4 + 6 + 3


class TestExtensionModels:
    def test_mlp_hidden_in_registry_default_list(self):
        assert "mlp" not in model_names()
        assert "mlp" in model_names(include_extensions=True)

    def test_mlp_forward_on_tabular_shape(self, rng):
        model = build_model("mlp", (1, 1, 24), 6, seed=0)
        from repro.nn import Tensor

        out = model(Tensor(rng.normal(size=(3, 1, 1, 24)).astype(np.float32)))
        assert out.shape == (3, 6)

    def test_mlp_depth_validation(self):
        from repro.models import MLP

        with pytest.raises(ValueError):
            MLP((1, 1, 8), 2, depth=0)


class TestVGGWithoutBatchNorm:
    def test_plain_vgg_builds_and_runs(self, rng):
        from repro.models.vgg import VGG

        model = VGG("vgg11", SHAPE_RGB, 10, rng=np.random.default_rng(0), batch_norm=False)
        from repro.nn import BatchNorm2D, Tensor

        assert not any(isinstance(m, BatchNorm2D) for m in model.modules())
        out = model(Tensor(rng.normal(size=(2, *SHAPE_RGB)).astype(np.float32)))
        assert out.shape == (2, 10)


class TestTrainability:
    @pytest.mark.parametrize("name", ["convnet", "deconvnet", "vgg11"])
    def test_model_overfits_tiny_batch(self, name, rng):
        # Every architecture must be able to drive its loss down on 16 samples.
        x = rng.normal(size=(16, *SHAPE_RGB)).astype(np.float32)
        y = np.eye(4, dtype=np.float32)[rng.integers(0, 4, 16)]
        model = build_model(name, SHAPE_RGB, 4, seed=0)
        trainer = Trainer(model, CrossEntropy(), Adam(model.parameters(), lr=3e-3),
                          epochs=25, batch_size=8, rng=rng, clip_norm=5.0)
        history = trainer.fit(x, y)
        assert history.loss_curve()[-1] < history.loss_curve()[0] * 0.5
