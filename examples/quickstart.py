#!/usr/bin/env python3
"""Quickstart: protect a model against mislabelled training data.

This walks the paper's core workflow (Fig. 2) end to end:

1. build a dataset (a synthetic stand-in for GTSRB traffic signs);
2. train a *golden* model on clean data;
3. inject mislabelling faults into the training labels;
4. train an unprotected *faulty* model and a label-smoothing-protected one;
5. compare them with the accuracy-delta (AD) reliability metric.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.data import load_dataset
from repro.faults import inject, mislabelling
from repro.metrics import compare_models
from repro.mitigation import (
    BaselineTechnique,
    LabelSmoothingTechnique,
    TrainingBudget,
)


def main() -> None:
    # 1. A small GTSRB-like dataset (43 traffic-sign classes).
    train, test = load_dataset("gtsrb", train_size=430, test_size=172, seed=0)
    print(f"dataset: {train.name} — {len(train)} train / {len(test)} test images, "
          f"{train.num_classes} classes")

    budget = TrainingBudget(epochs=18, batch_size=32)

    # 2. The golden model: a ConvNet trained on clean data.
    golden = BaselineTechnique().fit(train, "convnet", budget, np.random.default_rng(1))
    golden_pred = golden.predict(test.images)
    print(f"golden accuracy: {(golden_pred == test.labels).mean():.1%}")

    # 3. Inject 30 % mislabelling faults (uniformly random wrong labels).
    faulty_train, report = inject(train, mislabelling(0.3), seed=7)
    print(f"injected: {report.summary()}")

    # 4a. The unprotected baseline, trained on the faulty data.
    baseline = BaselineTechnique().fit(faulty_train, "convnet", budget, np.random.default_rng(1))
    # 4b. The same model protected with label smoothing.
    protected = LabelSmoothingTechnique(alpha=0.2).fit(
        faulty_train, "convnet", budget, np.random.default_rng(1)
    )

    # 5. Accuracy delta: of the test images the golden model classified
    # correctly, how many does each faulty model now get wrong?
    for name, fitted in (("baseline (unprotected)", baseline), ("label smoothing", protected)):
        result = compare_models(golden_pred, fitted.predict(test.images), test.labels)
        print(f"{name:24s} accuracy={result.faulty_accuracy:.1%}  AD={result.accuracy_delta:.1%}")

    print("\nLower AD = more resilient. See examples/pneumonia_case_study.py "
          "and examples/gtsrb_resilience_study.py for the full comparison.")


if __name__ == "__main__":
    main()
