#!/usr/bin/env python3
"""Reproduce the paper's survey-based technique selection (§III-A, Table I).

Prints Table I — the top three candidate techniques per TDFM approach scored
against the five selection criteria — and the representative chosen for each
approach (re-implemented where no candidate met every criterion).

Run:  python examples/technique_selection.py
"""

from __future__ import annotations

from repro.survey import render_table1, select_representatives


def main() -> None:
    print("Table I — candidate techniques vs selection criteria")
    print("(Code available? / Architecture-agnostic? / Tolerates artificial")
    print(" noise? / No pre-trained weights? / Standalone?)\n")
    print(render_table1())

    print("\nSelected representatives (paper §III-A):")
    for result in select_representatives().values():
        print(f"  {result}")

    print("\nThese five representatives are exactly the techniques implemented in")
    print("repro.mitigation: label smoothing, meta label correction, active-")
    print("passive robust loss, self distillation, and the 5-model ensemble.")


if __name__ == "__main__":
    main()
