#!/usr/bin/env python3
"""Beyond images: TDFM techniques on tabular data (paper §V future work).

The paper evaluates image classification only and names "other data types"
as future work.  Because the five TDFM techniques operate on labels, losses,
and training loops — never on pixels — they apply unchanged to any
classification task.  This example demonstrates that on a synthetic tabular
"sensor readings" dataset with an MLP.

Run:  python examples/tabular_future_work.py
"""

from __future__ import annotations

import numpy as np

from repro.data import SyntheticConfig, make_sensor_like
from repro.faults import inject, mislabelling
from repro.metrics import compare_models
from repro.mitigation import (
    BaselineTechnique,
    LabelSmoothingTechnique,
    RobustLossTechnique,
    TrainingBudget,
)


def main() -> None:
    train, test = make_sensor_like(SyntheticConfig(train_size=300, test_size=100, seed=0))
    print(f"tabular dataset: {len(train)} train vectors, "
          f"{train.image_shape[-1]} sensor channels, {train.num_classes} classes")

    budget = TrainingBudget(epochs=20, batch_size=32)
    golden = BaselineTechnique().fit(train, "mlp", budget, np.random.default_rng(1))
    golden_pred = golden.predict(test.images)
    print(f"golden MLP accuracy: {(golden_pred == test.labels).mean():.1%}\n")

    faulty_train, report = inject(train, mislabelling(0.3), seed=9)
    print(f"injected: {report.summary()}\n")

    techniques = {
        "baseline (unprotected)": BaselineTechnique(),
        "label smoothing": LabelSmoothingTechnique(alpha=0.2),
        "robust loss (NCE+RCE)": RobustLossTechnique(),
    }
    for name, technique in techniques.items():
        fitted = technique.fit(faulty_train, "mlp", budget, np.random.default_rng(1))
        result = compare_models(golden_pred, fitted.predict(test.images), test.labels)
        print(f"{name:24s} accuracy={result.faulty_accuracy:.1%}  AD={result.accuracy_delta:.1%}")

    print("\nThe same fault-injection and mitigation stack runs on non-image data")
    print("— the paper's §V future work, enabled by the label/loss-level design.")


if __name__ == "__main__":
    main()
