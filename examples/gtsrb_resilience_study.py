#!/usr/bin/env python3
"""Traffic-sign resilience study: one panel of the paper's Fig. 3.

Measures the AD of every TDFM technique on the GTSRB-like dataset for one
architecture, across fault rates, for a chosen fault type — then prints the
figure panel as a table and names the winner at each rate.

Run:  python examples/gtsrb_resilience_study.py [model] [fault_type]
      python examples/gtsrb_resilience_study.py convnet removal
"""

from __future__ import annotations

import sys

from repro.experiments import ExperimentRunner, ad_panel, render_panel
from repro.faults import FaultType


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "convnet"
    fault_type = FaultType(sys.argv[2]) if len(sys.argv) > 2 else FaultType.MISLABELLING

    runner = ExperimentRunner()
    rates = (0.1, 0.5) if runner.scale.name == "smoke" else (0.1, 0.3, 0.5)
    print(f"scale={runner.scale.name}, model={model}, fault={fault_type.value}, "
          f"rates={[f'{r:.0%}' for r in rates]}\n")

    panel = ad_panel(runner, "gtsrb", model, fault_type, rates)
    print(render_panel(panel))

    print("\nmost resilient technique per fault rate:")
    for rate in rates:
        winner = panel.winner_at(rate)
        ad = panel.series[winner].at(rate)
        print(f"  {rate:>4.0%}: {winner} (AD {ad.mean:.1%})")

    baseline = panel.series["baseline"]
    helped = [
        technique
        for technique, series in panel.series.items()
        if technique != "baseline"
        and series.at(rates[-1]).mean < baseline.at(rates[-1]).mean
    ]
    print(f"\ntechniques beating the unprotected baseline at {rates[-1]:.0%} faults: "
          f"{', '.join(helped) if helped else 'none'}")


if __name__ == "__main__":
    main()
