#!/usr/bin/env python3
"""Auditing a dataset for label noise with confident learning.

The paper injects faults at a known rate; practitioners face the inverse
problem: *how mislabelled is my training set?*  This example estimates the
noise rate of a corrupted dataset with the confident-learning machinery in
:mod:`repro.analysis` (the approach of the paper's reference [12]) and
checks the estimate against the injector's ground truth.

Run:  python examples/noise_audit.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import estimate_noise
from repro.data import load_dataset
from repro.faults import inject, mislabelling
from repro.mitigation import TrainingBudget


def main() -> None:
    train, _ = load_dataset("cifar10", train_size=240, test_size=20, seed=0)

    true_rate = 0.3
    faulty, report = inject(train, mislabelling(true_rate), seed=11)
    print(f"secretly injected: {report.summary()}\n")

    print("estimating label noise with 3-fold confident learning ...")
    estimate = estimate_noise(
        faulty,
        model_name="convnet",
        budget=TrainingBudget(epochs=12),
        rng=np.random.default_rng(1),
        folds=3,
    )

    print(f"\nestimated noise rate: {estimate.estimated_noise_rate:.1%} "
          f"(ground truth: {true_rate:.0%})")
    print(f"suspect examples flagged: {len(estimate.suspect_indices)}")
    print(f"precision of all flags:   "
          f"{estimate.precision_against(report.mislabelled_indices):.1%}")
    print(f"precision of top 20:      "
          f"{estimate.precision_against(report.mislabelled_indices, top=20):.1%}")
    print(f"recall of injected noise: "
          f"{estimate.recall_against(report.mislabelled_indices):.1%}")

    print("\nsample of the confident joint (observed label x estimated true label):")
    print(estimate.confident_joint[:5, :5])


if __name__ == "__main__":
    main()
