#!/usr/bin/env python3
"""The paper's motivating example: mislabelled chest X-rays (§II, §III-D).

A ResNet50 is trained on a (synthetic stand-in for the) Pneumonia dataset.
With 10 % of the training labels flipped, the unprotected model's accuracy
collapses; each of the five TDFM techniques is then applied to the faulty
training data and scored by accuracy delta.  The paper reports LS and Ens
as the most resilient for this configuration.

Run:  python examples/pneumonia_case_study.py          (smoke scale)
      REPRO_SCALE=small python examples/pneumonia_case_study.py
"""

from __future__ import annotations

from repro.experiments import (
    ExperimentRunner,
    motivating_example,
    render_motivating_example,
)
from repro.mitigation import TECHNIQUE_ABBREVIATIONS


def main() -> None:
    runner = ExperimentRunner()  # scale from REPRO_SCALE (default: smoke)
    print(f"running at scale '{runner.scale.name}' "
          f"({runner.scale.repeats} repetition(s) per configuration)\n")

    result = motivating_example(runner, dataset="pneumonia", model="resnet50", rate=0.1)

    print("== Pneumonia + ResNet50 + 10% mislabelling ==")
    print(render_motivating_example(result))

    best, best_ad = result.ranked_techniques()[0]
    print(f"\nmost resilient technique here: {TECHNIQUE_ABBREVIATIONS[best]} "
          f"(AD {best_ad:.1%})")
    print("paper reference (§III-D): LS 5%, LC 29%, RL 15%, KD 13%, Ens 5%")

    # The paper's headline: a patient's diagnosis flips with faulty data.
    drop = result.golden_accuracy.mean - result.baseline_faulty_accuracy.mean
    print(f"\nunprotected accuracy drop from 10% mislabelling: "
          f"{result.golden_accuracy.mean:.1%} -> "
          f"{result.baseline_faulty_accuracy.mean:.1%} (-{drop:.1%})")


if __name__ == "__main__":
    main()
