#!/usr/bin/env python3
"""Why faulty labels hurt: memorization and per-class damage.

Uses :mod:`repro.analysis` to open up the mechanism behind the paper's
findings on one configuration:

1. train an unprotected model and a label-smoothing-protected model on data
   with 30 % mislabelling;
2. measure how much injected noise each model *memorized* vs *resisted*;
3. decompose the resulting accuracy delta per class.

Run:  python examples/memorization_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import measure_memorization, per_class_accuracy_delta
from repro.data import load_dataset
from repro.faults import inject, mislabelling
from repro.mitigation import BaselineTechnique, LabelSmoothingTechnique, TrainingBudget


def main() -> None:
    train, test = load_dataset("gtsrb", train_size=430, test_size=172, seed=0)
    faulty_train, report = inject(train, mislabelling(0.3), seed=7)
    budget = TrainingBudget(epochs=18)
    print(f"training data: {report.summary()}\n")

    golden = BaselineTechnique().fit(train, "convnet", budget, np.random.default_rng(1))
    golden_pred = golden.predict(test.images)

    fitted = {
        "baseline": BaselineTechnique().fit(
            faulty_train, "convnet", budget, np.random.default_rng(1)
        ),
        "label smoothing": LabelSmoothingTechnique().fit(
            faulty_train, "convnet", budget, np.random.default_rng(1)
        ),
    }

    print("== noise memorization (on the training set) ==")
    for name, model in fitted.items():
        memo = measure_memorization(model, faulty_train, train, report)
        verdict = "resisted" if memo.resisted_noise else "memorized"
        print(f"  {name:16s} {memo}  -> noise {verdict}")

    print("\n== per-class damage (AD breakdown on the test set) ==")
    for name, model in fitted.items():
        breakdown = per_class_accuracy_delta(
            golden_pred, model.predict(test.images), test.labels, train.num_classes
        )
        print(f"  {name:16s} {breakdown}")

    print("\nA protected model memorizes less of the injected noise, which is")
    print("exactly why its accuracy delta stays lower (paper §IV-B).")


if __name__ == "__main__":
    main()
