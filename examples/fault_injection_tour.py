#!/usr/bin/env python3
"""A tour of the fault injector (the TF-DM substitute).

Demonstrates the three fault types of the paper — mislabelling, repetition,
removal — their audit reports, fault combination (§IV-C), and the clean-subset
protection used by the label-correction technique.

Run:  python examples/fault_injection_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.data import load_dataset
from repro.faults import inject, mislabelling, removal, repetition


def main() -> None:
    train, _ = load_dataset("cifar10", train_size=200, test_size=20, seed=0)
    print(f"original dataset: {len(train)} examples, {train.num_classes} classes\n")

    # --- single fault types -------------------------------------------------
    for spec in (mislabelling(0.3), repetition(0.3), removal(0.3)):
        faulty, report = inject(train, spec, seed=1)
        print(report.summary())

    # --- the audit trail ----------------------------------------------------
    faulty, report = inject(train, mislabelling(0.1), seed=2)
    flipped = report.mislabelled_indices
    print(f"\nmislabelling audit: {len(flipped)} flipped indices, e.g. {flipped[:5]}")
    example = flipped[0]
    print(f"  example #{example}: true label {train.labels[example]} "
          f"-> observed label {faulty.labels[example]}")

    # --- combined faults (paper §IV-C) --------------------------------------
    combo = mislabelling(0.2) & removal(0.2) & repetition(0.2)
    faulty, report = inject(train, combo, seed=3)
    print(f"\ncombined spec '{combo.label}':")
    print(f"  {report.summary()}")

    # --- clean-subset protection (for label correction, §III-B2) ------------
    clean = np.arange(0, 20)  # pretend the first 20 examples are expert-verified
    faulty, report = inject(train, mislabelling(0.5) & removal(0.3), seed=4,
                            protected_indices=clean)
    after = report.protected_indices_after
    survived = (faulty.labels[after] == train.labels[clean]).all()
    print(f"\nprotected clean subset: {len(clean)} examples reserved from injection")
    print(f"  all clean labels intact after mislabel+removal: {survived}")
    print(f"  their positions moved from {clean[:5]}... to {after[:5]}... after removal")


if __name__ == "__main__":
    main()
