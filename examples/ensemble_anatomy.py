#!/usr/bin/env python3
"""Inside the winning technique: anatomy of a voting ensemble (§III-B5).

Trains the paper's five-member ensemble on faulty data, then dissects it:
per-member accuracy, vote agreement, and cases where the majority vote
rescues inputs that individual members misclassify — the mechanism behind
the paper's headline finding that ensembles are the most resilient TDFM
technique.

Run:  python examples/ensemble_anatomy.py
"""

from __future__ import annotations

import numpy as np

from repro.data import load_dataset
from repro.faults import inject, mislabelling
from repro.metrics import accuracy
from repro.mitigation import EnsembleTechnique, TrainingBudget


def main() -> None:
    train, test = load_dataset("gtsrb", train_size=430, test_size=172, seed=0)
    faulty_train, report = inject(train, mislabelling(0.3), seed=5)
    print(f"training data: {report.summary()}\n")

    technique = EnsembleTechnique()  # the paper's 5 members
    print(f"training ensemble members: {', '.join(technique.members)} ...")
    fitted = technique.fit(
        faulty_train, "unused", TrainingBudget(epochs=18), np.random.default_rng(1)
    )

    # Per-member accuracy.
    print("\nper-member accuracy on the test set:")
    member_preds = {}
    for member in fitted.members:
        preds = member.predict(test.images)
        member_preds[member.name] = preds
        print(f"  {member.name:28s} {accuracy(preds, test.labels):6.1%}")

    ensemble_pred = fitted.predict(test.images)
    print(f"  {'ensemble (majority vote)':28s} {accuracy(ensemble_pred, test.labels):6.1%}")

    # Vote agreement distribution.
    agreement = fitted.agreement(test.images)
    print(f"\nmean vote agreement: {agreement.mean():.1%} "
          f"(unanimous on {(agreement == 1.0).mean():.1%} of inputs)")

    # Rescues: inputs where the vote is right but some member is wrong.
    all_preds = np.stack(list(member_preds.values()))
    member_wrong = (all_preds != test.labels[None, :]).any(axis=0)
    vote_right = ensemble_pred == test.labels
    rescued = int((member_wrong & vote_right).sum())
    print(f"inputs correctly classified by the vote despite at least one "
          f"member erring: {rescued}/{len(test)}")


if __name__ == "__main__":
    main()
