"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; this file lets ``pip install -e . --no-use-pep517`` (and plain
``pip install -e .`` on older pips) work.
"""

from setuptools import setup

setup()
