"""Fault specifications — the injection parameters of the study.

The paper (§I, §IV) injects three fault types at three rates (10/30/50 %)
and also evaluates *combinations* of fault types (§IV-C).  ``FaultSpec``
describes one fault; ``CombinedFaultSpec`` an ordered sequence of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["FaultType", "FaultSpec", "CombinedFaultSpec", "PAPER_FAULT_RATES"]

#: The fault percentages evaluated in the paper (§IV).
PAPER_FAULT_RATES = (0.1, 0.3, 0.5)


class FaultType(str, Enum):
    """The three training-data fault types of the paper (§I)."""

    MISLABELLING = "mislabelling"
    REPETITION = "repetition"
    REMOVAL = "removal"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class FaultSpec:
    """One fault injection: a type and the fraction of data it affects.

    ``rate`` follows the paper's convention: a rate of 0.3 for mislabelling
    means 30 % of the training examples get a wrong label; for removal, 30 %
    of the examples are deleted; for repetition, duplicates equal to 30 % of
    the dataset size are inserted.
    """

    fault_type: FaultType
    rate: float

    def __post_init__(self) -> None:
        if isinstance(self.fault_type, str) and not isinstance(self.fault_type, FaultType):
            object.__setattr__(self, "fault_type", FaultType(self.fault_type))
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1]; got {self.rate}")

    @property
    def label(self) -> str:
        """Short identifier, e.g. ``mislabelling@30%``."""
        return f"{self.fault_type.value}@{round(self.rate * 100)}%"

    def __and__(self, other: "FaultSpec | CombinedFaultSpec") -> "CombinedFaultSpec":
        """Compose faults: ``mislabel & removal`` applies both in order."""
        if isinstance(other, CombinedFaultSpec):
            return CombinedFaultSpec((self, *other.faults))
        return CombinedFaultSpec((self, other))


@dataclass(frozen=True)
class CombinedFaultSpec:
    """An ordered combination of faults, applied left to right (§IV-C)."""

    faults: tuple[FaultSpec, ...]

    def __post_init__(self) -> None:
        if len(self.faults) < 1:
            raise ValueError("combined spec needs at least one fault")

    @property
    def label(self) -> str:
        return "+".join(f.label for f in self.faults)

    def __and__(self, other: "FaultSpec | CombinedFaultSpec") -> "CombinedFaultSpec":
        if isinstance(other, CombinedFaultSpec):
            return CombinedFaultSpec((*self.faults, *other.faults))
        return CombinedFaultSpec((*self.faults, other))


def single_fault(fault_type: FaultType | str, rate: float) -> FaultSpec:
    """Build one :class:`FaultSpec` from a fault type (enum or its value).

    The planner's bridge from plain picklable fields (``fault_type``/``rate``
    in a :class:`~repro.experiments.plan.WorkUnit`) back to a spec — worker
    processes reconstruct the identical fault from the unit alone.
    """
    return FaultSpec(FaultType(fault_type), rate)


def spec_from_label(label: str) -> "FaultSpec | CombinedFaultSpec | None":
    """Parse a ``FaultSpec.label`` string back into a spec.

    The inverse of the ``label`` properties: ``"mislabelling@30%"`` round-trips
    to ``FaultSpec(MISLABELLING, 0.3)``, ``"a@10%+b@30%"`` to a
    :class:`CombinedFaultSpec`, and ``"none"`` (the archived label of clean
    cells) to ``None``.  Used by the serving registry to re-fit models from
    archived study results, whose configs carry only the label.
    """
    label = label.strip()
    if not label or label == "none":
        return None
    specs = []
    for part in label.split("+"):
        try:
            type_name, rate_text = part.split("@", 1)
            rate = float(rate_text.rstrip("%")) / 100.0
            specs.append(FaultSpec(FaultType(type_name), rate))
        except (ValueError, KeyError) as exc:
            raise ValueError(f"unparseable fault label {label!r}: {exc}") from None
    if len(specs) == 1:
        return specs[0]
    return CombinedFaultSpec(tuple(specs))


def mislabelling(rate: float) -> FaultSpec:
    """Shorthand constructor."""
    return FaultSpec(FaultType.MISLABELLING, rate)


def repetition(rate: float) -> FaultSpec:
    """Shorthand constructor."""
    return FaultSpec(FaultType.REPETITION, rate)


def removal(rate: float) -> FaultSpec:
    """Shorthand constructor."""
    return FaultSpec(FaultType.REMOVAL, rate)


__all__ += ["single_fault", "spec_from_label", "mislabelling", "repetition", "removal"]
