"""Hardware-fault campaigns — measure SDC rates of study-trained models.

A campaign crosses the paper's data-fault axis with the hardware axis: each
:class:`HardwareCampaignUnit` names one study cell (dataset, model,
mitigation technique, training-data fault) and one
:class:`~repro.faults.hardware.spec.HardwareFaultSpec`, and measures how the
cell's trained network degrades when that fault strikes at inference time.

Per unit the runner fits the cell's model deterministically (the same seed
chain as :meth:`repro.serve.registry.ModelRegistry.refit_cell`), records
clean test-set predictions, then runs ``trials`` injected inference passes —
each armed with :class:`~repro.faults.hardware.injector.hardware_fault_injection`
under a CRC32-derived trial seed — and reports accuracy and SDC rate (the
fraction of predictions that silently changed versus the clean pass).

Execution reuses the study harness's resilience machinery: results journal
through :class:`~repro.experiments.resilience.StudyCheckpoint` (with this
module's codec), ``--jobs N`` fans units across worker processes with
bitwise-identical results to the serial path, and telemetry batches funnel
back to a single-writer merged trace.
"""

from __future__ import annotations

import os
import zlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from ...log import get_logger
from ...metrics.stats import MeanWithCI, mean_confidence_interval
from ...telemetry import (
    FileTelemetry,
    NULL,
    NullTelemetry,
    RecordingTelemetry,
    Telemetry,
    telemetry_scope,
)
from ..spec import spec_from_label
from .injector import hardware_fault_injection
from .spec import HardwareFaultSpec

# Runtime imports of repro.experiments stay function-local: this module sits
# below experiments in the import graph (experiments.hardware_study and
# mitigation.fault_aware pull it in), so a top-level import would cycle.
if TYPE_CHECKING:
    from ...experiments.config import ScaleSettings
    from ...experiments.resilience import StudyCheckpoint

logger = get_logger("faults.hardware.campaign")

__all__ = [
    "HardwareCampaignUnit",
    "HardwareCampaignResult",
    "run_campaign_unit",
    "run_campaign",
    "hardware_results_equivalent",
]

#: Fixed inference chunk size.  The per-site visit counters of an armed
#: injector advance once per kernel call, so the chunking must be identical
#: everywhere for a trial seed to reproduce the same flip sites.
PREDICT_BATCH = 64


@dataclass(frozen=True)
class HardwareCampaignUnit:
    """One campaign cell: a study-trained model crossed with one hw spec.

    Frozen and built from plain strings/numbers so units pickle cleanly into
    worker processes; :attr:`spec` reconstructs the
    :class:`HardwareFaultSpec` on either side of the process boundary.
    """

    dataset: str
    model: str
    scale: ScaleSettings
    technique: str = "baseline"
    #: Training-data fault label (``repro.faults.spec`` grammar) or "none".
    data_fault: str = "none"
    hw_type: str = "bit_flip"
    target: str = "activation"
    rate: float = 1e-3
    tensor_probability: float = 1.0
    bit: "int | None" = None
    trials: int = 3
    repetition: int = 0
    clean_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1; got {self.trials}")
        self.spec  # construct once so invalid parameters fail at plan time

    @property
    def spec(self) -> HardwareFaultSpec:
        """The unit's hardware-fault spec (validates the raw fields)."""
        return HardwareFaultSpec(
            fault_type=self.hw_type,
            rate=self.rate,
            target=self.target,
            tensor_probability=self.tensor_probability,
            bit=self.bit,
        )

    @property
    def key(self) -> str:
        """Stable journal/result key for this unit."""
        return (
            f"hw|{self.dataset}|{self.model}|{self.technique}|{self.data_fault}"
            f"|{self.spec.label}|t{self.trials}|rep{self.repetition}|{self.scale.name}"
        )

    def trial_seed(self, trial: int) -> int:
        """Per-trial injection seed — CRC32-stable across processes."""
        from ...experiments.config import scale_fingerprint

        raw = f"{scale_fingerprint(self.scale)}|{self.key}|{trial}".encode()
        return zlib.crc32(raw) & 0x7FFFFFFF


@dataclass
class HardwareCampaignResult:
    """Measured outcome of one campaign unit.

    ``trials`` holds one dict per injected pass: ``accuracy`` (test accuracy
    under fault), ``sdc_rate`` (fraction of predictions changed versus the
    clean pass — silent data corruption), and ``faults`` (elements struck).
    """

    key: str
    dataset: str
    model: str
    technique: str
    data_fault: str
    spec_label: str
    clean_accuracy: float
    trials: list = field(default_factory=list)
    training_s: float = 0.0

    @property
    def faulty_accuracy(self) -> MeanWithCI:
        """Mean accuracy under injection, with 95 % CI across trials."""
        return mean_confidence_interval([t["accuracy"] for t in self.trials])

    @property
    def sdc_rate(self) -> MeanWithCI:
        """Mean silent-data-corruption rate, with 95 % CI across trials."""
        return mean_confidence_interval([t["sdc_rate"] for t in self.trials])

    @property
    def accuracy_drop(self) -> float:
        """Clean accuracy minus mean faulty accuracy."""
        return self.clean_accuracy - self.faulty_accuracy.mean

    def to_dict(self) -> dict:
        """JSON-shaped payload (the checkpoint/benchmark codec)."""
        return {
            "key": self.key,
            "dataset": self.dataset,
            "model": self.model,
            "technique": self.technique,
            "data_fault": self.data_fault,
            "spec_label": self.spec_label,
            "clean_accuracy": self.clean_accuracy,
            "trials": [dict(t) for t in self.trials],
            "training_s": self.training_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HardwareCampaignResult":
        """Inverse of :meth:`to_dict`."""
        return cls(**payload)


def hardware_results_equivalent(
    a: HardwareCampaignResult, b: HardwareCampaignResult
) -> bool:
    """Exact equality of two results — the serial == parallel criterion.

    Training seconds are wall-clock and excluded; everything else (including
    every per-trial accuracy/SDC value and fault count) must match exactly.
    """
    da, db = a.to_dict(), b.to_dict()
    da.pop("training_s")
    db.pop("training_s")
    return da == db


# ----------------------------------------------------------------------
# Per-process memoization
# ----------------------------------------------------------------------

#: Trained (module, training_s) per cell identity — a worker process fits
#: each study cell at most once across all its campaign units.
_FITTED_CACHE: dict[tuple, tuple] = {}
#: Loaded test sets per (scale fingerprint, dataset).
_TESTSET_CACHE: dict[tuple, object] = {}


def _fitted_cell(unit: HardwareCampaignUnit):
    """Deterministically (re-)fit the unit's study cell; memoized per process.

    Mirrors :meth:`repro.serve.registry.ModelRegistry.refit_cell`'s seed
    chain exactly — scale seed → ``derive_repetition_seed`` → injection RNG
    at ``seed + 0x5EED`` → fit RNG at ``seed + 1`` — so the measured network
    is byte-for-byte the one the data-fault study trained.
    """
    from ...data.registry import load_dataset
    from ...experiments.config import derive_repetition_seed, scale_fingerprint
    from ...experiments.runner import prepare_faulty_train
    from ...mitigation.base import SingleModelFitted
    from ...mitigation.registry import build_technique

    cell = (
        scale_fingerprint(unit.scale), unit.dataset, unit.model, unit.technique,
        unit.data_fault, unit.repetition, unit.clean_fraction,
    )
    cached = _FITTED_CACHE.get(cell)
    if cached is not None:
        return cached

    settings = unit.scale
    train_size, test_size = settings.sizes_for(unit.dataset)
    data_key = (scale_fingerprint(settings), unit.dataset)
    train, test = load_dataset(
        unit.dataset,
        train_size=train_size,
        test_size=test_size,
        image_size=settings.image_size,
        seed=settings.seed,
    )
    _TESTSET_CACHE[data_key] = test
    fault = spec_from_label(unit.data_fault)
    seed = derive_repetition_seed(settings.seed, unit.dataset, unit.model, unit.repetition)
    faulty_train = prepare_faulty_train(
        train, fault, unit.technique, unit.clean_fraction,
        np.random.default_rng(seed + 0x5EED),
    )
    technique = build_technique(unit.technique)
    fitted = technique.fit(
        faulty_train, unit.model, settings.budget(unit.dataset),
        np.random.default_rng(seed + 1),
    )
    if not isinstance(fitted, SingleModelFitted):
        raise ValueError(
            f"technique {unit.technique!r} does not produce a single network "
            f"(got {type(fitted).__name__}); hardware campaigns need one model "
            "to inject into"
        )
    entry = (fitted.model.eval(), float(fitted.cost.training_s))
    _FITTED_CACHE[cell] = entry
    return entry


def _test_set(unit: HardwareCampaignUnit):
    """The unit's test split (cached by :func:`_fitted_cell`'s load)."""
    from ...experiments.config import scale_fingerprint

    key = (scale_fingerprint(unit.scale), unit.dataset)
    test = _TESTSET_CACHE.get(key)
    if test is None:
        _fitted_cell(unit)
        test = _TESTSET_CACHE[key]
    return test


def _predict_labels(module, images: np.ndarray) -> np.ndarray:
    """Chunked eval-mode label predictions (fixed :data:`PREDICT_BATCH`).

    The chunking is part of the determinism contract: an armed injector's
    per-site visit counters advance once per kernel call, so the same seed
    reproduces the same flip sites only if every run chunks identically.
    """
    from ...nn import Tensor, no_grad

    out = []
    with no_grad():
        for start in range(0, len(images), PREDICT_BATCH):
            batch = np.ascontiguousarray(images[start:start + PREDICT_BATCH], dtype=np.float32)
            out.append(module(Tensor(batch)).data.argmax(axis=1))
    return np.concatenate(out) if out else np.empty(0, dtype=np.int64)


# ----------------------------------------------------------------------
# Unit execution
# ----------------------------------------------------------------------

def run_campaign_unit(unit: HardwareCampaignUnit) -> HardwareCampaignResult:
    """Fit the unit's cell, then measure it under ``unit.trials`` injections.

    Clean predictions are taken outside any injection context; each trial
    arms :class:`~repro.faults.hardware.injector.hardware_fault_injection`
    with :meth:`HardwareCampaignUnit.trial_seed` around one full test-set
    pass.  Deterministic per unit — not per schedule — so serial and worker
    execution yield identical results.
    """
    from ...telemetry import get_telemetry

    tel = get_telemetry()
    with tel.span("hw_fit", key=unit.key) as span:
        module, training_s = _fitted_cell(unit)
        span.set(training_s=round(training_s, 3))
    test = _test_set(unit)
    clean = _predict_labels(module, test.images)
    clean_accuracy = float((clean == test.labels).mean())
    spec = unit.spec
    trials = []
    for trial in range(unit.trials):
        seed = unit.trial_seed(trial)
        with tel.span("hw_trial", key=unit.key, trial=trial, seed=seed) as span:
            # Flipped exponent/sign bits legitimately produce inf/NaN that
            # propagate through the forward pass; silence numpy's warnings
            # for the corrupted passes only.
            with hardware_fault_injection(spec, seed, model=module) as injector, \
                    np.errstate(all="ignore"):
                faulty = _predict_labels(module, test.images)
            accuracy = float((faulty == test.labels).mean())
            sdc = float((faulty != clean).mean())
            span.set(
                accuracy=round(accuracy, 4), sdc_rate=round(sdc, 4),
                faults=injector.stats.elements_faulted,
            )
        trials.append({
            "accuracy": accuracy,
            "sdc_rate": sdc,
            "faults": int(injector.stats.elements_faulted),
        })
    return HardwareCampaignResult(
        key=unit.key,
        dataset=unit.dataset,
        model=unit.model,
        technique=unit.technique,
        data_fault=unit.data_fault,
        spec_label=spec.label,
        clean_accuracy=clean_accuracy,
        trials=trials,
        training_s=training_s,
    )


def _execute_unit(unit: HardwareCampaignUnit, trace: bool) -> tuple:
    """Run one unit, optionally under a recording telemetry scope.

    Returns ``(result, events)`` — the recorded batch rides back to the
    parent collector, the single writer of the merged trace (the same
    funnel pattern as :func:`repro.experiments.executors.execute_unit`).
    """
    if not trace:
        return run_campaign_unit(unit), []
    recorder = RecordingTelemetry()
    with telemetry_scope(recorder):
        with recorder.span(
            "hw_unit", key=unit.key, dataset=unit.dataset, model=unit.model,
            technique=unit.technique, data_fault=unit.data_fault,
            hw_fault=unit.spec.label,
        ):
            result = run_campaign_unit(unit)
    return result, recorder.drain()


def _execute_unit_in_worker(unit: HardwareCampaignUnit, trace: bool) -> tuple:
    """Top-level (hence picklable) pool-worker entry point."""
    return _execute_unit(unit, trace)


# ----------------------------------------------------------------------
# The campaign collector
# ----------------------------------------------------------------------

def run_campaign(
    units: Iterable[HardwareCampaignUnit],
    jobs: int = 1,
    checkpoint: "StudyCheckpoint | str | os.PathLike | None" = None,
    trace: "Telemetry | str | os.PathLike | None" = None,
    progress: "Callable[[HardwareCampaignResult], None] | None" = None,
) -> list[HardwareCampaignResult]:
    """Run campaign units; returns results in unit order.

    ``checkpoint`` journals completed units through
    :class:`~repro.experiments.resilience.StudyCheckpoint` with this module's
    result codec — a resumed campaign replays journaled units without
    re-fitting.  ``jobs > 1`` fans pending units across worker processes;
    per-unit determinism makes the parallel results bitwise-identical to
    serial.  ``trace`` (path or telemetry handle) merges per-unit telemetry
    batches into one ordered JSONL trace under a ``hw_campaign`` root span.
    """
    from ...experiments.config import scale_fingerprint
    from ...experiments.resilience import StudyCheckpoint

    units = list(units)

    tel: "Telemetry | NullTelemetry" = NULL
    owns_trace = False
    if isinstance(trace, (Telemetry, NullTelemetry)):
        tel = trace
    elif trace is not None:
        tel = FileTelemetry(trace)
        owns_trace = True

    ckpt = checkpoint
    if ckpt is not None and not isinstance(ckpt, StudyCheckpoint):
        fingerprint = f"hw|{scale_fingerprint(units[0].scale)}" if units else None
        ckpt = StudyCheckpoint(
            ckpt,
            fingerprint=fingerprint,
            encode=lambda r: r.to_dict(),
            decode=HardwareCampaignResult.from_dict,
        )

    results: dict[int, HardwareCampaignResult] = {}
    try:
        with tel.span("hw_campaign", units=len(units), jobs=jobs) as root:
            pending: list[tuple[int, HardwareCampaignUnit]] = []
            for index, unit in enumerate(units):
                if ckpt is not None and unit.key in ckpt:
                    results[index] = ckpt.completed[unit.key]
                    tel.counter("checkpoint_skip", key=unit.key)
                    if progress is not None:
                        progress(results[index])
                else:
                    pending.append((index, unit))

            def _collect(index: int, result: HardwareCampaignResult, events: list) -> None:
                results[index] = result
                if events:
                    tel.write_batch(events, parent=root.id)
                if ckpt is not None:
                    ckpt.record_success(units[index].key, result)
                if progress is not None:
                    progress(result)

            if pending and jobs > 1:
                pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
                try:
                    futures = {
                        pool.submit(_execute_unit_in_worker, unit, tel.enabled): index
                        for index, unit in pending
                    }
                    for future in as_completed(futures):
                        result, events = future.result()
                        _collect(futures[future], result, events)
                finally:
                    pool.shutdown(wait=True, cancel_futures=True)
            else:
                for index, unit in pending:
                    result, events = _execute_unit(unit, tel.enabled)
                    _collect(index, result, events)
    finally:
        if owns_trace:
            tel.close()

    return [results[index] for index in range(len(units))]
