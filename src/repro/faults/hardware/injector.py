"""Seeded, deterministic hardware-fault injection over kernel outputs/weights.

The injector applies a :class:`~repro.faults.hardware.spec.HardwareFaultSpec`
to float32 arrays by manipulating their IEEE-754 bit patterns through a
``uint32`` view.  Determinism discipline matches the study harness: every
struck tensor gets its own RNG derived by CRC32 from ``(seed, spec label,
site, visit index)``, so the k-th conv2d output of a forward pass is always
corrupted at the same element/bit positions for a given seed — across runs,
threads, and worker processes (Python's salted ``hash()`` is never used).

:class:`hardware_fault_injection` is the arming context manager:

- ``activation`` targets install a kernel output tap
  (:class:`repro.nn.functional.kernel_tap_scope`) on the calling thread;
- ``weight`` targets snapshot the model's parameters, corrupt them in place
  (an upset persisting for the context's lifetime), and restore the saved
  bytes bitwise on exit.

Exiting the context always restores bitwise-clean inference.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ...nn.functional import kernel_tap_scope
from .spec import FaultTarget, HardwareFaultSpec, HardwareFaultType, hardware_spec_from_label

__all__ = [
    "FlipRecord",
    "InjectionStats",
    "HardwareFaultInjector",
    "hardware_fault_injection",
    "derive_site_seed",
]


def derive_site_seed(seed: int, label: str, site: str, index: int) -> int:
    """Stable per-site RNG seed: CRC32 of ``(seed, spec label, site, visit)``.

    The same derivation trick as
    :func:`repro.experiments.config.derive_repetition_seed` — identical
    across processes, so serial and ``--jobs N`` campaigns flip the same bits.
    """
    key = f"{seed}|{label}|{site}|{index}".encode()
    return zlib.crc32(key) & 0x7FFFFFFF


@dataclass(frozen=True)
class FlipRecord:
    """One corrupted element: where it was struck and how its bits changed.

    ``bit`` is ``-1`` for ``random_value`` faults (no single bit position);
    ``before``/``after`` are the uint32 bit patterns, so determinism tests can
    compare exact flip sites across runs and workers.
    """

    site: str
    index: int
    bit: int
    before: int
    after: int


@dataclass
class InjectionStats:
    """Aggregate tallies for one armed injector."""

    tensors_seen: int = 0
    tensors_hit: int = 0
    elements_faulted: int = 0


class HardwareFaultInjector:
    """Applies one spec to arrays, deterministically per ``(seed, site, visit)``.

    ``record_sites=True`` additionally stores a :class:`FlipRecord` per
    corrupted element in :attr:`flips` — the evidence the determinism property
    tests compare; campaigns leave it off to keep trials allocation-free.
    """

    def __init__(
        self, spec: HardwareFaultSpec, seed: int, record_sites: bool = False
    ) -> None:
        self.spec = spec
        self.seed = int(seed)
        self.record_sites = record_sites
        self.stats = InjectionStats()
        self.flips: list[FlipRecord] = []
        self._site_counts: dict[str, int] = {}

    def flip_signature(self) -> tuple:
        """Hashable summary of every recorded flip (requires ``record_sites``)."""
        return tuple((f.site, f.index, f.bit, f.after) for f in self.flips)

    def perturb(self, site: str, array: np.ndarray) -> int:
        """Corrupt ``array`` in place per the spec; returns elements faulted.

        Each call advances the per-``site`` visit counter, so repeated strikes
        of the same op within one armed context draw independent (but
        deterministic) fault positions.  Non-contiguous arrays (e.g. the
        transposed outputs of the legacy kernels) are corrupted via a
        copy-and-write-back path that lands on the same elements.
        """
        index = self._site_counts.get(site, 0)
        self._site_counts[site] = index + 1
        self.stats.tensors_seen += 1
        rng = np.random.default_rng(
            derive_site_seed(self.seed, self.spec.label, site, index)
        )
        if self.spec.tensor_probability < 1.0 and rng.random() >= self.spec.tensor_probability:
            return 0
        contiguous = array.flags["C_CONTIGUOUS"]
        flat = array.reshape(-1) if contiguous else array.ravel()  # ravel copies here
        count = self._fault(flat, rng, f"{site}#{index}")
        if count and not contiguous:
            array[...] = flat.reshape(array.shape)
        if count:
            self.stats.tensors_hit += 1
            self.stats.elements_faulted += count
        return count

    def _fault(self, flat: np.ndarray, rng: np.random.Generator, site_tag: str) -> int:
        idx = np.flatnonzero(rng.random(flat.size) < self.spec.rate)
        if idx.size == 0:
            return 0
        if self.spec.fault_type is HardwareFaultType.RANDOM_VALUE:
            before = flat.view(np.uint32)[idx].copy() if self.record_sites else None
            amax = float(np.abs(flat).max()) or 1.0
            flat[idx] = rng.uniform(-amax, amax, idx.size).astype(flat.dtype)
            bits = np.full(idx.size, -1)
        else:
            if flat.dtype != np.float32:
                raise TypeError(
                    f"bit-level faults need float32 arrays; got dtype {flat.dtype}"
                )
            if self.spec.bit is not None:
                bits = np.full(idx.size, self.spec.bit, dtype=np.uint32)
            else:
                bits = rng.integers(0, 32, idx.size, dtype=np.uint32)
            masks = (np.uint32(1) << bits).astype(np.uint32)
            view = flat.view(np.uint32)
            before = view[idx].copy() if self.record_sites else None
            if self.spec.fault_type is HardwareFaultType.BIT_FLIP:
                view[idx] ^= masks
            elif self.spec.fault_type is HardwareFaultType.STUCK_AT_0:
                view[idx] &= ~masks
            else:  # STUCK_AT_1
                view[idx] |= masks
        if self.record_sites:
            after = flat.view(np.uint32)[idx]
            self.flips.extend(
                FlipRecord(site_tag, int(i), int(b), int(pre), int(post))
                for i, b, pre, post in zip(idx, bits, before, after)
            )
        return int(idx.size)


class hardware_fault_injection:
    """Arm an injector for the duration of a ``with`` block.

    >>> with hardware_fault_injection(spec, seed=7, model=net) as injector:
    ...     faulty = predict_labels(net, images)
    ... # weights / kernel outputs are bitwise-clean again here

    ``model`` is required for ``weight`` targets (its parameters are struck
    once on entry — a persistent upset — and restored bitwise on exit) and
    ignored for ``activation`` targets, which corrupt kernel outputs through
    the thread-local tap while the context is active.  ``spec`` may be a
    :class:`HardwareFaultSpec` or its label string.
    """

    def __init__(
        self,
        spec: "HardwareFaultSpec | str",
        seed: int,
        model=None,
        record_sites: bool = False,
    ) -> None:
        if isinstance(spec, str):
            parsed = hardware_spec_from_label(spec)
            if parsed is None:
                raise ValueError("cannot arm injection with the 'none' spec")
            spec = parsed
        self.spec = spec
        self.seed = int(seed)
        self.model = model
        self.record_sites = record_sites
        self.injector: HardwareFaultInjector | None = None
        self._saved: "list[tuple[object, np.ndarray]] | None" = None
        self._tap: kernel_tap_scope | None = None

    def __enter__(self) -> HardwareFaultInjector:
        self.injector = HardwareFaultInjector(
            self.spec, self.seed, record_sites=self.record_sites
        )
        if self.spec.target is FaultTarget.WEIGHT:
            if self.model is None:
                raise ValueError("weight-target injection needs model=<Module>")
            named = list(self.model.named_parameters())
            self._saved = [(param, param.data.copy()) for _, param in named]
            for name, param in named:
                self.injector.perturb(f"weight:{name}", param.data)
        else:
            self._tap = kernel_tap_scope(self._on_kernel_output)
            self._tap.__enter__()
        return self.injector

    def _on_kernel_output(self, site: str, array: np.ndarray) -> None:
        self.injector.perturb(site, array)

    def __exit__(self, *exc_info: object) -> None:
        if self._tap is not None:
            self._tap.__exit__(*exc_info)
            self._tap = None
        if self._saved is not None:
            for param, saved in self._saved:
                param.data[...] = saved
            self._saved = None
