"""Hardware-fault specifications — inference-time fault injection parameters.

The paper studies *training-data* faults; this package crosses its grid with
the sibling axis it never covered: transient hardware faults during
inference (TensorFI-style operator-level injection — Chen et al.).  A
:class:`HardwareFaultSpec` describes one injection configuration: the
corruption applied to an IEEE-754 float32 value (bit flip, stuck-at-0/1, or
random value), whether it strikes stored **weights** or computed
**activations**, and two rates — the per-element fault probability inside a
struck tensor and the per-tensor strike probability.

Mirrors the idiom of :mod:`repro.faults.spec` (frozen dataclass, validating
``__post_init__``, a round-trippable ``label``, shorthand constructors).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "HardwareFaultType",
    "FaultTarget",
    "HardwareFaultSpec",
    "DEFAULT_HW_RATES",
    "hardware_spec_from_label",
    "bit_flip",
    "stuck_at_0",
    "stuck_at_1",
    "random_value",
]

#: Default per-element fault rates for campaign sweeps.  At smoke-scale
#: activation tensors (10³–10⁴ elements) these span "usually one flip
#: somewhere" to "tens of flips per forward pass".
DEFAULT_HW_RATES = (1e-4, 1e-3, 1e-2)


class HardwareFaultType(str, Enum):
    """The four corruption models applied to a float32 value."""

    BIT_FLIP = "bit_flip"
    STUCK_AT_0 = "stuck_at_0"
    STUCK_AT_1 = "stuck_at_1"
    RANDOM_VALUE = "random_value"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class FaultTarget(str, Enum):
    """What the fault strikes: stored weights or computed activations."""

    WEIGHT = "weight"
    ACTIVATION = "activation"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class HardwareFaultSpec:
    """One hardware-fault injection configuration.

    ``rate`` is the independent per-element fault probability within a struck
    tensor; ``tensor_probability`` is the probability that an eligible tensor
    (a kernel output for ``activation`` targets, a parameter array for
    ``weight`` targets) is struck at all.  ``bit`` restricts bit-positioned
    fault types to one bit (0 = mantissa LSB … 31 = sign); ``None`` draws the
    bit uniformly per faulted element.  ``random_value`` ignores ``bit`` and
    replaces the element with a uniform draw from the tensor's value range.
    """

    fault_type: HardwareFaultType
    rate: float
    target: FaultTarget = FaultTarget.ACTIVATION
    tensor_probability: float = 1.0
    bit: int | None = None

    def __post_init__(self) -> None:
        if isinstance(self.fault_type, str) and not isinstance(self.fault_type, HardwareFaultType):
            object.__setattr__(self, "fault_type", HardwareFaultType(self.fault_type))
        if isinstance(self.target, str) and not isinstance(self.target, FaultTarget):
            object.__setattr__(self, "target", FaultTarget(self.target))
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"hardware fault rate must be in [0, 1]; got {self.rate}")
        if not 0.0 <= self.tensor_probability <= 1.0:
            raise ValueError(
                f"tensor_probability must be in [0, 1]; got {self.tensor_probability}"
            )
        if self.bit is not None and not 0 <= self.bit <= 31:
            raise ValueError(f"bit must be in [0, 31] for float32; got {self.bit}")

    @property
    def label(self) -> str:
        """Round-trippable identifier, e.g. ``bit_flip@0.001:activation``.

        Optional fields append ``|p<prob>`` and ``|b<bit>`` suffixes:
        ``stuck_at_1@0.0001:weight|p0.5|b30``.
        """
        text = f"{self.fault_type.value}@{self.rate:g}:{self.target.value}"
        if self.tensor_probability != 1.0:
            text += f"|p{self.tensor_probability:g}"
        if self.bit is not None:
            text += f"|b{self.bit}"
        return text


def hardware_spec_from_label(label: str) -> "HardwareFaultSpec | None":
    """Parse a :attr:`HardwareFaultSpec.label` string back into a spec.

    The inverse of the ``label`` property; ``"none"`` (the archived label of
    uninjected campaign rows) parses to ``None``.  Campaign units and CLI
    arguments carry specs in this form, so worker processes reconstruct the
    identical spec from plain strings.
    """
    label = label.strip()
    if not label or label == "none":
        return None
    head, *extras = label.split("|")
    try:
        type_and_rate, target_text = head.split(":", 1)
        type_name, rate_text = type_and_rate.split("@", 1)
        kwargs: dict = {
            "fault_type": HardwareFaultType(type_name),
            "rate": float(rate_text),
            "target": FaultTarget(target_text),
        }
        for extra in extras:
            if extra.startswith("p"):
                kwargs["tensor_probability"] = float(extra[1:])
            elif extra.startswith("b"):
                kwargs["bit"] = int(extra[1:])
            else:
                raise ValueError(f"unknown suffix {extra!r}")
        return HardwareFaultSpec(**kwargs)
    except (ValueError, KeyError) as exc:
        raise ValueError(f"unparseable hardware fault label {label!r}: {exc}") from None


def bit_flip(rate: float, target: "FaultTarget | str" = FaultTarget.ACTIVATION,
             **kwargs: object) -> HardwareFaultSpec:
    """Shorthand constructor."""
    return HardwareFaultSpec(HardwareFaultType.BIT_FLIP, rate, FaultTarget(target), **kwargs)


def stuck_at_0(rate: float, target: "FaultTarget | str" = FaultTarget.ACTIVATION,
               **kwargs: object) -> HardwareFaultSpec:
    """Shorthand constructor."""
    return HardwareFaultSpec(HardwareFaultType.STUCK_AT_0, rate, FaultTarget(target), **kwargs)


def stuck_at_1(rate: float, target: "FaultTarget | str" = FaultTarget.ACTIVATION,
               **kwargs: object) -> HardwareFaultSpec:
    """Shorthand constructor."""
    return HardwareFaultSpec(HardwareFaultType.STUCK_AT_1, rate, FaultTarget(target), **kwargs)


def random_value(rate: float, target: "FaultTarget | str" = FaultTarget.ACTIVATION,
                 **kwargs: object) -> HardwareFaultSpec:
    """Shorthand constructor."""
    return HardwareFaultSpec(HardwareFaultType.RANDOM_VALUE, rate, FaultTarget(target), **kwargs)
