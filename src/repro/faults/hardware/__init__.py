"""``repro.faults.hardware`` — inference-time hardware-fault injection.

The sibling axis to the package's training-data faults: seeded, deterministic
transient-fault injection into the kernel layer (bit flips, stuck-at bits,
random-value corruption of weights or activations), plus campaign machinery
measuring accuracy degradation and SDC rates of study-trained models.
"""

from .campaign import (
    HardwareCampaignResult,
    HardwareCampaignUnit,
    hardware_results_equivalent,
    run_campaign,
    run_campaign_unit,
)
from .injector import (
    FlipRecord,
    HardwareFaultInjector,
    InjectionStats,
    derive_site_seed,
    hardware_fault_injection,
)
from .spec import (
    DEFAULT_HW_RATES,
    FaultTarget,
    HardwareFaultSpec,
    HardwareFaultType,
    bit_flip,
    hardware_spec_from_label,
    random_value,
    stuck_at_0,
    stuck_at_1,
)

__all__ = [
    "HardwareFaultType",
    "FaultTarget",
    "HardwareFaultSpec",
    "DEFAULT_HW_RATES",
    "hardware_spec_from_label",
    "bit_flip",
    "stuck_at_0",
    "stuck_at_1",
    "random_value",
    "FlipRecord",
    "InjectionStats",
    "HardwareFaultInjector",
    "hardware_fault_injection",
    "derive_site_seed",
    "HardwareCampaignUnit",
    "HardwareCampaignResult",
    "run_campaign_unit",
    "run_campaign",
    "hardware_results_equivalent",
]
