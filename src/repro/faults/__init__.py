"""``repro.faults`` — fault injection.

Training-data faults (the TF-DM substitute) live at the package top level;
the :mod:`repro.faults.hardware` subpackage adds the orthogonal axis of
inference-time hardware faults (bit flips / stuck-at bits / random-value
corruption of weights and activations).
"""

from .injector import (
    FaultReport,
    inject,
    inject_mislabelling,
    inject_removal,
    inject_repetition,
)
from .spec import (
    PAPER_FAULT_RATES,
    CombinedFaultSpec,
    FaultSpec,
    FaultType,
    mislabelling,
    removal,
    repetition,
    single_fault,
    spec_from_label,
)

# Imported last: repro.faults.hardware depends on repro.faults.spec above.
from . import hardware

__all__ = [
    "hardware",
    "FaultType",
    "FaultSpec",
    "CombinedFaultSpec",
    "PAPER_FAULT_RATES",
    "mislabelling",
    "repetition",
    "removal",
    "single_fault",
    "spec_from_label",
    "FaultReport",
    "inject",
    "inject_mislabelling",
    "inject_repetition",
    "inject_removal",
]
