"""``repro.faults`` — training-data fault injection (the TF-DM substitute)."""

from .injector import (
    FaultReport,
    inject,
    inject_mislabelling,
    inject_removal,
    inject_repetition,
)
from .spec import (
    PAPER_FAULT_RATES,
    CombinedFaultSpec,
    FaultSpec,
    FaultType,
    mislabelling,
    removal,
    repetition,
    single_fault,
    spec_from_label,
)

__all__ = [
    "FaultType",
    "FaultSpec",
    "CombinedFaultSpec",
    "PAPER_FAULT_RATES",
    "mislabelling",
    "repetition",
    "removal",
    "single_fault",
    "spec_from_label",
    "FaultReport",
    "inject",
    "inject_mislabelling",
    "inject_repetition",
    "inject_removal",
]
