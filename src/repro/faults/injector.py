"""Training-data fault injection — the TF-DM substitute (DESIGN.md §1).

Implements the three fault types of the paper with the same semantics the
TF-DM tool [51] uses:

- *mislabelling*: a uniformly random fraction of examples gets a different
  label, drawn uniformly from the other classes;
- *repetition*: input-output pairs are duplicated (inserted copies equal to
  ``rate`` of the original size);
- *removal*: a uniformly random fraction of examples is deleted.

Every injection is seeded and returns a :class:`FaultReport` audit record so
experiments can verify exactly what was corrupted.  An optional
``protected_indices`` argument excludes the label-correction technique's
clean subset from injection (paper §III-B2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import ArrayDataset
from .spec import CombinedFaultSpec, FaultSpec, FaultType

__all__ = [
    "FaultReport",
    "inject",
    "inject_mislabelling",
    "inject_repetition",
    "inject_removal",
]


@dataclass
class FaultReport:
    """Audit record of one injection pass."""

    spec_label: str
    original_size: int
    resulting_size: int
    mislabelled_indices: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    repeated_source_indices: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    removed_indices: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: Positions of the caller's ``protected_indices`` in the *resulting*
    #: dataset (only set by :func:`inject`; None when nothing was protected).
    protected_indices_after: np.ndarray | None = None

    @property
    def num_mislabelled(self) -> int:
        return len(self.mislabelled_indices)

    @property
    def num_repeated(self) -> int:
        return len(self.repeated_source_indices)

    @property
    def num_removed(self) -> int:
        return len(self.removed_indices)

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.spec_label}: {self.original_size} -> {self.resulting_size} examples "
            f"({self.num_mislabelled} mislabelled, {self.num_repeated} repeated, "
            f"{self.num_removed} removed)"
        )

    def merge(self, other: "FaultReport") -> "FaultReport":
        """Combine two sequential reports (for combined fault specs)."""
        return FaultReport(
            spec_label=f"{self.spec_label}+{other.spec_label}",
            original_size=self.original_size,
            resulting_size=other.resulting_size,
            mislabelled_indices=np.concatenate(
                [self.mislabelled_indices, other.mislabelled_indices]
            ),
            repeated_source_indices=np.concatenate(
                [self.repeated_source_indices, other.repeated_source_indices]
            ),
            removed_indices=np.concatenate([self.removed_indices, other.removed_indices]),
        )


def _eligible_indices(
    size: int, protected_indices: np.ndarray | None
) -> np.ndarray:
    if protected_indices is None:
        return np.arange(size)
    mask = np.ones(size, dtype=bool)
    mask[np.asarray(protected_indices)] = False
    return np.flatnonzero(mask)


def inject_mislabelling(
    dataset: ArrayDataset,
    rate: float,
    rng: np.random.Generator,
    protected_indices: np.ndarray | None = None,
    mode: str = "uniform",
) -> tuple[ArrayDataset, FaultReport]:
    """Flip the labels of a random ``rate`` fraction of examples.

    ``mode="uniform"`` draws new labels uniformly from the *other* classes —
    the paper's "mislabelled (at random)" protocol (§IV).  ``mode="pairwise"``
    flips each corrupted label to its successor class ``(y + 1) % K`` — the
    class-dependent "pair noise" of the noisy-label literature, provided as
    an extension beyond the paper's protocol.
    """
    if mode not in ("uniform", "pairwise"):
        raise ValueError(f"mode must be 'uniform' or 'pairwise'; got {mode!r}")
    faulty = dataset.copy()
    eligible = _eligible_indices(len(dataset), protected_indices)
    count = int(round(rate * len(dataset)))
    count = min(count, len(eligible))
    chosen = rng.choice(eligible, size=count, replace=False) if count else np.empty(0, np.int64)
    for idx in chosen:
        offset = rng.integers(1, dataset.num_classes) if mode == "uniform" else 1
        faulty.labels[idx] = (faulty.labels[idx] + offset) % dataset.num_classes
    report = FaultReport(
        spec_label=f"mislabelling@{round(rate * 100)}%",
        original_size=len(dataset),
        resulting_size=len(faulty),
        mislabelled_indices=np.sort(chosen.astype(np.int64)),
    )
    return faulty, report


def inject_repetition(
    dataset: ArrayDataset,
    rate: float,
    rng: np.random.Generator,
    protected_indices: np.ndarray | None = None,  # noqa: ARG001 - repetition harms no labels
) -> tuple[ArrayDataset, FaultReport]:
    """Insert duplicate (image, label) pairs equal to ``rate`` of the size."""
    count = int(round(rate * len(dataset)))
    if count == 0:
        return dataset.copy(), FaultReport(
            spec_label=f"repetition@{round(rate * 100)}%",
            original_size=len(dataset),
            resulting_size=len(dataset),
        )
    sources = rng.choice(len(dataset), size=count, replace=True)
    images = np.concatenate([dataset.images, dataset.images[sources]], axis=0)
    labels = np.concatenate([dataset.labels, dataset.labels[sources]], axis=0)
    faulty = ArrayDataset(images, labels, dataset.num_classes, dataset.name, dict(dataset.metadata))
    report = FaultReport(
        spec_label=f"repetition@{round(rate * 100)}%",
        original_size=len(dataset),
        resulting_size=len(faulty),
        repeated_source_indices=np.sort(sources.astype(np.int64)),
    )
    return faulty, report


def inject_removal(
    dataset: ArrayDataset,
    rate: float,
    rng: np.random.Generator,
    protected_indices: np.ndarray | None = None,
) -> tuple[ArrayDataset, FaultReport]:
    """Delete a uniformly random ``rate`` fraction of examples."""
    eligible = _eligible_indices(len(dataset), protected_indices)
    count = int(round(rate * len(dataset)))
    count = min(count, max(len(eligible) - 1, 0))  # never delete everything
    removed = (
        rng.choice(eligible, size=count, replace=False) if count else np.empty(0, np.int64)
    )
    keep = np.ones(len(dataset), dtype=bool)
    keep[removed] = False
    faulty = dataset.subset(np.flatnonzero(keep), "removal-injected")
    faulty.name = dataset.name
    report = FaultReport(
        spec_label=f"removal@{round(rate * 100)}%",
        original_size=len(dataset),
        resulting_size=len(faulty),
        removed_indices=np.sort(removed.astype(np.int64)),
    )
    return faulty, report


_INJECTORS = {
    FaultType.MISLABELLING: inject_mislabelling,
    FaultType.REPETITION: inject_repetition,
    FaultType.REMOVAL: inject_removal,
}


def inject(
    dataset: ArrayDataset,
    spec: FaultSpec | CombinedFaultSpec,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    protected_indices: np.ndarray | None = None,
) -> tuple[ArrayDataset, FaultReport]:
    """Apply a fault spec (single or combined) to a dataset copy.

    Exactly one of ``rng`` or ``seed`` may be given; with neither, a fresh
    unseeded generator is used.  ``protected_indices`` refer to positions in
    the *input* dataset; composition with removal re-maps them internally.
    """
    if rng is not None and seed is not None:
        raise ValueError("pass either rng or seed, not both")
    rng = rng if rng is not None else np.random.default_rng(seed)

    faults = (spec,) if isinstance(spec, FaultSpec) else spec.faults

    # Thread the dataset through each fault in order, merging audit records
    # and re-mapping protected indices when removal shrinks the dataset.
    current = dataset
    combined_report: FaultReport | None = None
    protected = None if protected_indices is None else np.asarray(protected_indices)
    for fault in faults:
        injector = _INJECTORS[fault.fault_type]
        current, report = injector(current, fault.rate, rng, protected_indices=protected)
        if fault.fault_type is FaultType.REMOVAL and protected is not None:
            keep = np.ones(report.original_size, dtype=bool)
            keep[report.removed_indices] = False
            new_positions = np.cumsum(keep) - 1
            still_present = keep[protected]
            protected = new_positions[protected[still_present]]
        combined_report = report if combined_report is None else combined_report.merge(report)
    assert combined_report is not None
    if protected_indices is not None:
        combined_report.protected_indices_after = protected
    return current, combined_report
