"""The ``repro`` logger hierarchy.

Library modules log through ``logging.getLogger("repro.<area>")`` (via
:func:`get_logger`) and never configure handlers — embedding applications
keep full control.  The CLI calls :func:`setup_cli_logging` once, which
attaches a plain message-only stderr handler to the ``repro`` root logger so
default output is byte-identical to the historical ``print(..., sys.stderr)``
diagnostics; ``--verbose`` lowers the threshold to DEBUG (with a prefixed
format, since debug lines are for humans chasing a problem) and ``--quiet``
raises it to WARNING.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["get_logger", "setup_cli_logging"]

ROOT_LOGGER = "repro"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``name`` may omit the prefix)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def setup_cli_logging(
    verbose: bool = False,
    quiet: bool = False,
    stream: "IO[str] | None" = None,
) -> logging.Logger:
    """Configure the ``repro`` root logger for a CLI invocation.

    Idempotent: reconfigures (rather than stacks) the CLI handler, so tests
    calling ``main()`` repeatedly never duplicate output lines.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    if verbose:
        level, fmt = logging.DEBUG, "%(name)s: %(message)s"
    elif quiet:
        level, fmt = logging.WARNING, "%(message)s"
    else:
        level, fmt = logging.INFO, "%(message)s"

    for handler in list(logger.handlers):
        if getattr(handler, "_repro_cli", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(fmt))
    handler._repro_cli = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(level)
    # The CLI owns its output; don't also bubble to the (possibly configured)
    # root logger, which would double-print every line.
    logger.propagate = False
    return logger
