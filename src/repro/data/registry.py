"""Named dataset registry mirroring paper Table II.

Maps the paper's dataset names to the synthetic substitutes at several
pre-defined scales, so the experiment harness, the examples, and the
benchmarks all build datasets the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from .dataset import ArrayDataset
from .synthetic import SyntheticConfig, make_dataset_pair

__all__ = ["DatasetInfo", "DATASETS", "load_dataset", "dataset_names", "PAPER_TABLE2"]


@dataclass(frozen=True)
class DatasetInfo:
    """Registry entry: paper identity plus synthetic-substitute parameters."""

    name: str
    family: str
    num_classes: int
    #: image channels (chest X-rays are grayscale; the rest are RGB)
    channels: int
    task: str
    paper_train_size: int
    paper_test_size: int
    # Scaled default sizes used by this reproduction (paper ratios preserved:
    # pneumonia is ~1/10 the size of the other two).
    default_train_size: int
    default_test_size: int


DATASETS: dict[str, DatasetInfo] = {
    "cifar10": DatasetInfo(
        name="cifar10",
        family="cifar10-like",
        num_classes=10,
        channels=3,
        task="Objects and animals (10)",
        paper_train_size=50_000,
        paper_test_size=10_000,
        default_train_size=1000,
        default_test_size=300,
    ),
    "gtsrb": DatasetInfo(
        name="gtsrb",
        family="gtsrb-like",
        num_classes=43,
        channels=3,
        task="Traffic signs (43)",
        paper_train_size=39_209,
        paper_test_size=12_630,
        default_train_size=1075,  # 25 per class
        default_test_size=430,
    ),
    "pneumonia": DatasetInfo(
        name="pneumonia",
        family="pneumonia-like",
        num_classes=2,
        channels=1,
        task="Chest X-rays (2)",
        paper_train_size=5_239,
        paper_test_size=624,
        default_train_size=110,
        default_test_size=44,
    ),
}

#: Paper Table II rows, for report rendering.
PAPER_TABLE2 = [
    ("CIFAR-10", 50_000, 10_000, "Objects and animals (10)"),
    ("GTSRB", 39_209, 12_630, "Traffic signs (43)"),
    ("Pneumonia", 5_239, 624, "Chest X-rays (2)"),
]


def dataset_names() -> list[str]:
    """Registered dataset names (paper Table II order)."""
    return list(DATASETS)


def load_dataset(
    name: str,
    train_size: int | None = None,
    test_size: int | None = None,
    image_size: int = 16,
    seed: int = 0,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Build a (train, test) pair for a registered dataset name.

    Sizes default to the scaled-down values in the registry; pass explicit
    sizes to run larger (or smaller/smoke) configurations.
    """
    try:
        info = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; choices: {sorted(DATASETS)}") from None
    config = SyntheticConfig(
        train_size=train_size or info.default_train_size,
        test_size=test_size or info.default_test_size,
        image_size=image_size,
        seed=seed,
    )
    return make_dataset_pair(info.family, config)
