"""Seeded image augmentations for training pipelines.

Standard light augmentations over NCHW batches.  All transforms are
callable ``(batch) -> batch`` objects with their own seeded generator, so an
augmented training run stays exactly reproducible; compose them with
:class:`Compose` and plug the result into ``Trainer(input_transform=...)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Compose",
    "RandomHorizontalFlip",
    "RandomShift",
    "RandomBrightness",
    "GaussianNoise",
]


class Compose:
    """Apply transforms left to right."""

    def __init__(self, *transforms) -> None:
        if not transforms:
            raise ValueError("Compose needs at least one transform")
        self.transforms = transforms

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            batch = transform(batch)
        return batch

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.transforms)
        return f"Compose({inner})"


class RandomHorizontalFlip:
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1]; got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng()

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        batch = np.asarray(batch)
        if batch.ndim != 4:
            raise ValueError("expected an NCHW batch")
        out = batch.copy()
        flip = self.rng.random(len(batch)) < self.p
        out[flip] = out[flip, :, :, ::-1]
        return out

    def __repr__(self) -> str:
        return f"RandomHorizontalFlip(p={self.p})"


class RandomShift:
    """Translate each image by up to ``max_shift`` pixels (zero padding)."""

    def __init__(self, max_shift: int = 2, rng: np.random.Generator | None = None) -> None:
        if max_shift < 0:
            raise ValueError("max_shift must be >= 0")
        self.max_shift = max_shift
        self.rng = rng or np.random.default_rng()

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        batch = np.asarray(batch)
        if batch.ndim != 4:
            raise ValueError("expected an NCHW batch")
        if self.max_shift == 0:
            return batch.copy()
        out = np.zeros_like(batch)
        h, w = batch.shape[2:]
        shifts = self.rng.integers(-self.max_shift, self.max_shift + 1, size=(len(batch), 2))
        for i, (dy, dx) in enumerate(shifts):
            src_y = slice(max(0, -dy), min(h, h - dy))
            src_x = slice(max(0, -dx), min(w, w - dx))
            dst_y = slice(max(0, dy), min(h, h + dy))
            dst_x = slice(max(0, dx), min(w, w + dx))
            out[i, :, dst_y, dst_x] = batch[i, :, src_y, src_x]
        return out

    def __repr__(self) -> str:
        return f"RandomShift(max_shift={self.max_shift})"


class RandomBrightness:
    """Scale each image's intensity by a factor in ``[1-delta, 1+delta]``."""

    def __init__(self, delta: float = 0.2, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= delta < 1.0:
            raise ValueError(f"delta must be in [0, 1); got {delta}")
        self.delta = delta
        self.rng = rng or np.random.default_rng()

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        batch = np.asarray(batch)
        if batch.ndim != 4:
            raise ValueError("expected an NCHW batch")
        factors = self.rng.uniform(1 - self.delta, 1 + self.delta, size=(len(batch), 1, 1, 1))
        return (batch * factors).astype(batch.dtype)

    def __repr__(self) -> str:
        return f"RandomBrightness(delta={self.delta})"


class GaussianNoise:
    """Add zero-mean Gaussian pixel noise with standard deviation ``std``."""

    def __init__(self, std: float = 0.02, rng: np.random.Generator | None = None) -> None:
        if std < 0:
            raise ValueError("std must be >= 0")
        self.std = std
        self.rng = rng or np.random.default_rng()

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        batch = np.asarray(batch)
        noise = self.rng.normal(0.0, self.std, size=batch.shape).astype(batch.dtype)
        return batch + noise

    def __repr__(self) -> str:
        return f"GaussianNoise(std={self.std})"
