"""``repro.data`` — dataset containers, synthetic generators, and transforms."""

from .augment import (
    Compose,
    GaussianNoise,
    RandomBrightness,
    RandomHorizontalFlip,
    RandomShift,
)
from .dataset import ArrayDataset, DataLoader, stratified_indices, train_validation_split
from .registry import DATASETS, PAPER_TABLE2, DatasetInfo, dataset_names, load_dataset
from .synthetic import (
    SyntheticConfig,
    make_cifar10_like,
    make_dataset_pair,
    make_gtsrb_like,
    make_pneumonia_like,
    make_sensor_like,
)
from .transforms import (
    flatten_images,
    from_one_hot,
    normalize_images,
    one_hot,
    per_channel_standardize,
    smooth_labels,
)

__all__ = [
    "Compose",
    "RandomHorizontalFlip",
    "RandomShift",
    "RandomBrightness",
    "GaussianNoise",
    "ArrayDataset",
    "DataLoader",
    "train_validation_split",
    "stratified_indices",
    "SyntheticConfig",
    "make_cifar10_like",
    "make_gtsrb_like",
    "make_pneumonia_like",
    "make_sensor_like",
    "make_dataset_pair",
    "DatasetInfo",
    "DATASETS",
    "PAPER_TABLE2",
    "load_dataset",
    "dataset_names",
    "one_hot",
    "from_one_hot",
    "smooth_labels",
    "normalize_images",
    "per_channel_standardize",
    "flatten_images",
]
