"""Dataset containers, splits, and batch iteration.

The study's workflow (paper Fig. 2) needs a handful of dataset-level
operations beyond plain arrays: stratified clean-subset reservation for the
label-correction technique (§III-B2), train/validation splitting, and
deterministic shuffled batching.  ``ArrayDataset`` packages those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["ArrayDataset", "DataLoader", "train_validation_split", "stratified_indices"]


@dataclass
class ArrayDataset:
    """An in-memory image-classification dataset.

    Attributes
    ----------
    images:
        Float array of shape ``(N, C, H, W)`` in ``[0, 1]``.
    labels:
        Integer class labels of shape ``(N,)``.
    num_classes:
        Number of label classes ``K`` (labels are in ``[0, K)``).
    name:
        Human-readable identifier used in reports.
    """

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "dataset"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float32)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 4:
            raise ValueError(f"images must be (N, C, H, W); got shape {self.images.shape}")
        if self.labels.ndim != 1:
            raise ValueError(f"labels must be 1-D; got shape {self.labels.shape}")
        if len(self.images) != len(self.labels):
            raise ValueError(
                f"images ({len(self.images)}) and labels ({len(self.labels)}) differ in length"
            )
        if self.num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        if len(self.labels) and (self.labels.min() < 0 or self.labels.max() >= self.num_classes):
            raise ValueError("labels out of range for num_classes")

    def __len__(self) -> int:
        return len(self.images)

    @property
    def image_shape(self) -> tuple[int, int, int]:
        """(C, H, W) of a single image."""
        return tuple(self.images.shape[1:])  # type: ignore[return-value]

    def one_hot_labels(self) -> np.ndarray:
        """Labels as a one-hot ``(N, K)`` float matrix."""
        return np.eye(self.num_classes, dtype=np.float32)[self.labels]

    def subset(self, indices: np.ndarray, name_suffix: str = "subset") -> "ArrayDataset":
        """A new dataset restricted to ``indices`` (copies the arrays)."""
        indices = np.asarray(indices)
        return ArrayDataset(
            images=self.images[indices].copy(),
            labels=self.labels[indices].copy(),
            num_classes=self.num_classes,
            name=f"{self.name}/{name_suffix}",
            metadata=dict(self.metadata),
        )

    def copy(self) -> "ArrayDataset":
        """Deep copy (fault injection mutates copies, never originals)."""
        return ArrayDataset(
            images=self.images.copy(),
            labels=self.labels.copy(),
            num_classes=self.num_classes,
            name=self.name,
            metadata=dict(self.metadata),
        )

    def class_counts(self) -> np.ndarray:
        """Number of examples per class, length ``num_classes``."""
        return np.bincount(self.labels, minlength=self.num_classes)

    def split_clean_subset(
        self, fraction: float, rng: np.random.Generator
    ) -> tuple["ArrayDataset", "ArrayDataset"]:
        """Reserve a stratified clean fraction (label correction's γ, §III-B2).

        Returns ``(clean, remainder)``.  The clean subset is what the paper
        protects from fault injection so the secondary model can train on
        verified labels.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1); got {fraction}")
        clean_idx = stratified_indices(self.labels, fraction, self.num_classes, rng)
        mask = np.zeros(len(self), dtype=bool)
        mask[clean_idx] = True
        return self.subset(clean_idx, "clean"), self.subset(np.flatnonzero(~mask), "noisy")


def stratified_indices(
    labels: np.ndarray, fraction: float, num_classes: int, rng: np.random.Generator
) -> np.ndarray:
    """Pick ``fraction`` of indices per class (at least one where possible)."""
    chosen: list[np.ndarray] = []
    for cls in range(num_classes):
        cls_idx = np.flatnonzero(labels == cls)
        if len(cls_idx) == 0:
            continue
        take = max(1, int(round(fraction * len(cls_idx))))
        chosen.append(rng.choice(cls_idx, size=min(take, len(cls_idx)), replace=False))
    if not chosen:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.concatenate(chosen))


def train_validation_split(
    dataset: ArrayDataset, validation_fraction: float, rng: np.random.Generator
) -> tuple[ArrayDataset, ArrayDataset]:
    """Stratified train/validation split. Returns ``(train, validation)``."""
    val_idx = stratified_indices(dataset.labels, validation_fraction, dataset.num_classes, rng)
    mask = np.zeros(len(dataset), dtype=bool)
    mask[val_idx] = True
    return dataset.subset(np.flatnonzero(~mask), "train"), dataset.subset(val_idx, "val")


class DataLoader:
    """Deterministic shuffled mini-batch iterator over an :class:`ArrayDataset`."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng or np.random.default_rng()
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for lo in range(0, stop, self.batch_size):
            idx = order[lo : lo + self.batch_size]
            yield self.dataset.images[idx], self.dataset.labels[idx]
