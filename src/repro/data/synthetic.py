"""Synthetic stand-ins for the paper's three datasets.

The reproduction has no network access, so CIFAR-10, GTSRB, and the Pneumonia
chest X-ray set are substituted with procedurally generated datasets that
preserve the *properties the paper's findings depend on* (see DESIGN.md §1):

- ``cifar10-like``  — 10 classes, RGB, class subject placed over *cluttered
  backgrounds with distractor objects* (the paper attributes CIFAR-10's higher
  AD to exactly this clutter, §IV-D).
- ``gtsrb-like``    — 43 classes, RGB, a *centred* "traffic sign" (shape ×
  colour × inner glyph).  The large class count is what breaks label
  correction's secondary model in the paper (§IV-D), and the centred subject
  is why GTSRB shows lower AD.
- ``pneumonia-like``— 2 classes, grayscale, chest-radiograph-style images
  where the class signal is *diffuse texture* (opacity blotches), and the
  dataset is roughly one tenth the size of the others (§IV, Table II).

Every generator is fully seeded: the same seed reproduces the same dataset
bit-for-bit, which the experiment harness relies on for golden-model caching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import ArrayDataset

__all__ = [
    "SyntheticConfig",
    "make_cifar10_like",
    "make_gtsrb_like",
    "make_pneumonia_like",
    "make_sensor_like",
    "make_dataset_pair",
]


@dataclass(frozen=True)
class SyntheticConfig:
    """Size and difficulty knobs shared by the three generators."""

    train_size: int = 1000
    test_size: int = 250
    image_size: int = 16
    noise_std: float = 0.06
    seed: int = 0

    def __post_init__(self) -> None:
        if self.train_size < 1 or self.test_size < 1:
            raise ValueError("dataset sizes must be positive")
        if self.image_size < 8:
            raise ValueError("image_size must be >= 8")
        if self.noise_std < 0:
            raise ValueError("noise_std must be >= 0")


# ----------------------------------------------------------------------
# Shape primitives
# ----------------------------------------------------------------------

def _coordinate_grid(size: int) -> tuple[np.ndarray, np.ndarray]:
    """Normalised (y, x) grids in [-1, 1]."""
    axis = np.linspace(-1.0, 1.0, size, dtype=np.float32)
    return np.meshgrid(axis, axis, indexing="ij")


def _disk_mask(size: int, radius: float = 0.8) -> np.ndarray:
    yy, xx = _coordinate_grid(size)
    return (yy**2 + xx**2 <= radius**2).astype(np.float32)


def _triangle_mask(size: int) -> np.ndarray:
    yy, xx = _coordinate_grid(size)
    # Upward triangle: below the two slanted edges, above the base.
    return ((yy >= -0.75) & (yy <= 0.8) & (np.abs(xx) <= (yy + 0.8) * 0.55)).astype(np.float32)


def _diamond_mask(size: int, radius: float = 0.85) -> np.ndarray:
    yy, xx = _coordinate_grid(size)
    return (np.abs(yy) + np.abs(xx) <= radius).astype(np.float32)


def _square_mask(size: int, half: float = 0.7) -> np.ndarray:
    yy, xx = _coordinate_grid(size)
    return ((np.abs(yy) <= half) & (np.abs(xx) <= half)).astype(np.float32)


_SIGN_SHAPES = (_disk_mask, _triangle_mask, _diamond_mask, _square_mask)

_SIGN_COLOURS = np.array(
    [
        [0.85, 0.10, 0.10],  # red
        [0.10, 0.25, 0.85],  # blue
        [0.90, 0.75, 0.10],  # yellow
        [0.95, 0.95, 0.95],  # white
        [0.15, 0.65, 0.20],  # green
    ],
    dtype=np.float32,
)


def _gaussian_bump(size: int, cy: float, cx: float, sigma: float) -> np.ndarray:
    """A 2-D Gaussian blob with centre in normalised [-1, 1] coordinates."""
    yy, xx = _coordinate_grid(size)
    return np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma**2)).astype(np.float32)


def _jitter(image: np.ndarray, rng: np.random.Generator, max_shift: int) -> np.ndarray:
    """Random integer translation (circular) plus brightness scaling."""
    if max_shift > 0:
        dy = int(rng.integers(-max_shift, max_shift + 1))
        dx = int(rng.integers(-max_shift, max_shift + 1))
        image = np.roll(image, (dy, dx), axis=(-2, -1))
    brightness = float(rng.uniform(0.85, 1.15))
    return image * brightness


# ----------------------------------------------------------------------
# CIFAR-10-like: objects over cluttered backgrounds
# ----------------------------------------------------------------------

def _cifar_prototypes(num_classes: int, size: int, seed: int) -> np.ndarray:
    """One smooth RGB "object" prototype per class (low-frequency pattern)."""
    rng = np.random.default_rng(seed)
    protos = np.empty((num_classes, 3, size, size), dtype=np.float32)
    for cls in range(num_classes):
        cls_rng = np.random.default_rng(seed * 1009 + cls)
        # Sum of a few random Gaussian blobs with class-specific colours.
        canvas = np.zeros((3, size, size), dtype=np.float32)
        for _ in range(3):
            cy, cx = cls_rng.uniform(-0.5, 0.5, size=2)
            sigma = cls_rng.uniform(0.25, 0.5)
            colour = cls_rng.uniform(0.2, 1.0, size=3).astype(np.float32)
            bump = _gaussian_bump(size, cy, cx, sigma)
            canvas += colour[:, None, None] * bump[None]
        protos[cls] = canvas / max(canvas.max(), 1e-6)
    return protos


def _clutter(size: int, rng: np.random.Generator, num_blobs: int = 3) -> np.ndarray:
    """Random distractor blobs — the background clutter of CIFAR-10-like images."""
    canvas = np.zeros((3, size, size), dtype=np.float32)
    for _ in range(num_blobs):
        cy, cx = rng.uniform(-1.0, 1.0, size=2)
        sigma = rng.uniform(0.1, 0.3)
        colour = rng.uniform(0.0, 0.9, size=3).astype(np.float32)
        canvas += colour[:, None, None] * _gaussian_bump(size, cy, cx, sigma)[None]
    return canvas


def make_cifar10_like(config: SyntheticConfig | None = None) -> tuple[ArrayDataset, ArrayDataset]:
    """Generate the (train, test) pair of the CIFAR-10 substitute."""
    config = config or SyntheticConfig()
    num_classes = 10
    protos = _cifar_prototypes(num_classes, config.image_size, config.seed)

    def generate(count: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        images = np.empty((count, 3, config.image_size, config.image_size), dtype=np.float32)
        for i, cls in enumerate(labels):
            subject = _jitter(protos[cls], rng, max_shift=2)
            background = 0.45 * _clutter(config.image_size, rng)
            image = 0.75 * subject + background
            image += rng.normal(0.0, config.noise_std, size=image.shape).astype(np.float32)
            images[i] = np.clip(image, 0.0, 1.0)
        return images, labels

    train_rng = np.random.default_rng(config.seed)
    test_rng = np.random.default_rng(config.seed + 10_000)
    train_x, train_y = generate(config.train_size, train_rng)
    test_x, test_y = generate(config.test_size, test_rng)
    meta = {"family": "cifar10-like", "paper_dataset": "CIFAR-10", "seed": config.seed}
    return (
        ArrayDataset(train_x, train_y, num_classes, "cifar10-like/train", dict(meta)),
        ArrayDataset(test_x, test_y, num_classes, "cifar10-like/test", dict(meta)),
    )


# ----------------------------------------------------------------------
# GTSRB-like: 43 centred traffic signs
# ----------------------------------------------------------------------

def _sign_prototype(cls: int, size: int, seed: int) -> np.ndarray:
    """Deterministic sign prototype: shape × border colour × inner glyph."""
    shape_fn = _SIGN_SHAPES[cls % len(_SIGN_SHAPES)]
    colour = _SIGN_COLOURS[cls % len(_SIGN_COLOURS)]
    mask = shape_fn(size)
    inner = shape_fn(size) * _square_mask(size, half=0.45)

    glyph_rng = np.random.default_rng(seed * 2003 + cls)
    glyph = (glyph_rng.random((size, size)) < 0.5).astype(np.float32)
    # Low-pass the glyph slightly so it is learnable at low resolution.
    glyph = 0.5 * glyph + 0.25 * np.roll(glyph, 1, axis=0) + 0.25 * np.roll(glyph, 1, axis=1)

    image = np.empty((3, size, size), dtype=np.float32)
    border = mask - inner
    for ch in range(3):
        image[ch] = border * colour[ch] + inner * glyph * 0.9
    return image


def make_gtsrb_like(config: SyntheticConfig | None = None) -> tuple[ArrayDataset, ArrayDataset]:
    """Generate the (train, test) pair of the GTSRB substitute (43 classes)."""
    config = config or SyntheticConfig()
    num_classes = 43
    protos = np.stack(
        [_sign_prototype(cls, config.image_size, config.seed) for cls in range(num_classes)]
    )

    def generate(count: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        images = np.empty((count, 3, config.image_size, config.image_size), dtype=np.float32)
        for i, cls in enumerate(labels):
            # Signs are tightly centred (the property the paper credits for
            # GTSRB's lower AD): brightness jitter only, no translation.
            subject = _jitter(protos[cls], rng, max_shift=1)
            background = rng.uniform(0.25, 0.55) * np.ones_like(subject)
            mask = (subject.sum(axis=0, keepdims=True) > 0.05).astype(np.float32)
            image = subject * mask + background * (1 - mask)
            image += rng.normal(0.0, config.noise_std, size=image.shape).astype(np.float32)
            images[i] = np.clip(image, 0.0, 1.0)
        return images, labels

    train_rng = np.random.default_rng(config.seed + 1)
    test_rng = np.random.default_rng(config.seed + 10_001)
    train_x, train_y = generate(config.train_size, train_rng)
    test_x, test_y = generate(config.test_size, test_rng)
    meta = {"family": "gtsrb-like", "paper_dataset": "GTSRB", "seed": config.seed}
    return (
        ArrayDataset(train_x, train_y, num_classes, "gtsrb-like/train", dict(meta)),
        ArrayDataset(test_x, test_y, num_classes, "gtsrb-like/test", dict(meta)),
    )


# ----------------------------------------------------------------------
# Pneumonia-like: binary chest-radiograph textures
# ----------------------------------------------------------------------

def _chest_base(size: int, rng: np.random.Generator) -> np.ndarray:
    """Radiograph-style base image: bright mediastinum, darker lung fields."""
    yy, xx = _coordinate_grid(size)
    base = 0.55 + 0.15 * (1 - np.abs(xx))  # bright central column
    left_lung = _gaussian_bump(size, 0.0, -0.45, 0.38)
    right_lung = _gaussian_bump(size, 0.0, 0.45, 0.38)
    base = base - 0.35 * left_lung - 0.35 * right_lung
    base += 0.05 * rng.standard_normal((size, size)).astype(np.float32)
    return base.astype(np.float32)


def make_pneumonia_like(config: SyntheticConfig | None = None) -> tuple[ArrayDataset, ArrayDataset]:
    """Generate the (train, test) pair of the Pneumonia substitute.

    Class 0 = normal, class 1 = pneumonia (opacity blotches in lung fields).
    Defaults follow the paper's 1:10 size ratio versus the other datasets.
    """
    config = config or SyntheticConfig(train_size=100, test_size=40)
    num_classes = 2

    def generate(count: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        images = np.empty((count, 1, config.image_size, config.image_size), dtype=np.float32)
        for i, cls in enumerate(labels):
            image = _chest_base(config.image_size, rng)
            if cls == 1:
                # Pneumonia: several diffuse opacities inside the lung fields.
                for _ in range(int(rng.integers(2, 5))):
                    side = rng.choice([-0.45, 0.45])
                    cy = rng.uniform(-0.4, 0.4)
                    cx = side + rng.uniform(-0.15, 0.15)
                    sigma = rng.uniform(0.12, 0.22)
                    image += rng.uniform(0.25, 0.45) * _gaussian_bump(config.image_size, cy, cx, sigma)
            image += rng.normal(0.0, config.noise_std, size=image.shape).astype(np.float32)
            images[i, 0] = np.clip(image, 0.0, 1.0)
        return images, labels

    train_rng = np.random.default_rng(config.seed + 2)
    test_rng = np.random.default_rng(config.seed + 10_002)
    train_x, train_y = generate(config.train_size, train_rng)
    test_x, test_y = generate(config.test_size, test_rng)
    meta = {"family": "pneumonia-like", "paper_dataset": "Pneumonia", "seed": config.seed}
    return (
        ArrayDataset(train_x, train_y, num_classes, "pneumonia-like/train", dict(meta)),
        ArrayDataset(test_x, test_y, num_classes, "pneumonia-like/test", dict(meta)),
    )


# ----------------------------------------------------------------------
# Sensor-like tabular data (extension: the paper's §V future work is to
# "expand our evaluation to other data types")
# ----------------------------------------------------------------------

def make_sensor_like(
    config: SyntheticConfig | None = None, num_classes: int = 6, num_features: int = 24
) -> tuple[ArrayDataset, ArrayDataset]:
    """Generate a tabular "sensor readings" classification dataset.

    This goes beyond the paper's image-only evaluation (its stated future
    work): each example is a vector of ``num_features`` sensor channels drawn
    from a class-specific multivariate profile (cluster mean + correlated
    noise).  Vectors are packed as ``(N, 1, 1, F)`` images so the entire
    fault-injection and mitigation stack applies unchanged; pair it with the
    ``mlp`` model from :mod:`repro.models`.
    """
    config = config or SyntheticConfig(train_size=300, test_size=100)
    profile_rng = np.random.default_rng(config.seed * 7919 + 13)
    means = profile_rng.uniform(0.35, 0.65, size=(num_classes, num_features)).astype(np.float32)
    # A shared correlation structure makes features informative jointly.
    mixing = profile_rng.normal(0.0, 0.15, size=(num_features, num_features)).astype(np.float32)

    def generate(count: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        latent = rng.normal(0.0, 1.0, size=(count, num_features)).astype(np.float32)
        vectors = means[labels] + config.noise_std * 2.5 * (latent @ mixing)
        vectors = np.clip(vectors, 0.0, 1.0)
        return vectors.reshape(count, 1, 1, num_features), labels

    train_rng = np.random.default_rng(config.seed + 3)
    test_rng = np.random.default_rng(config.seed + 10_003)
    train_x, train_y = generate(config.train_size, train_rng)
    test_x, test_y = generate(config.test_size, test_rng)
    meta = {
        "family": "sensor-like",
        "paper_dataset": None,  # extension beyond the paper (§V future work)
        "seed": config.seed,
    }
    return (
        ArrayDataset(train_x, train_y, num_classes, "sensor-like/train", dict(meta)),
        ArrayDataset(test_x, test_y, num_classes, "sensor-like/test", dict(meta)),
    )


_FAMILIES = {
    "cifar10-like": make_cifar10_like,
    "gtsrb-like": make_gtsrb_like,
    "pneumonia-like": make_pneumonia_like,
    "sensor-like": make_sensor_like,
}


def make_dataset_pair(
    family: str, config: SyntheticConfig | None = None
) -> tuple[ArrayDataset, ArrayDataset]:
    """Build a (train, test) pair by family name."""
    try:
        builder = _FAMILIES[family]
    except KeyError:
        raise KeyError(f"unknown dataset family {family!r}; choices: {sorted(_FAMILIES)}") from None
    return builder(config)
