"""Label and image transforms used by the training pipelines."""

from __future__ import annotations

import numpy as np

__all__ = [
    "one_hot",
    "from_one_hot",
    "smooth_labels",
    "normalize_images",
    "per_channel_standardize",
    "flatten_images",
]


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels -> one-hot float matrix of shape ``(N, K)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D; got shape {labels.shape}")
    if len(labels) and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for num_classes")
    return np.eye(num_classes, dtype=np.float32)[labels]


def from_one_hot(targets: np.ndarray) -> np.ndarray:
    """One-hot (or soft) targets -> integer labels via argmax."""
    targets = np.asarray(targets)
    if targets.ndim != 2:
        raise ValueError(f"targets must be 2-D; got shape {targets.shape}")
    return targets.argmax(axis=1)


def smooth_labels(targets: np.ndarray, alpha: float) -> np.ndarray:
    """Classic uniform label smoothing (paper §III-B1).

    ``q_i = (1 - alpha) * p_i + alpha / K`` — e.g. ``alpha=0.1`` maps
    ``[0, 1, 0]`` to ``[0.033, 0.933, 0.033]``.
    """
    if not 0.0 <= alpha < 1.0:
        raise ValueError(f"alpha must be in [0, 1); got {alpha}")
    targets = np.asarray(targets, dtype=np.float32)
    if targets.ndim != 2:
        raise ValueError("targets must be one-hot encoded (N, K)")
    num_classes = targets.shape[1]
    return (1.0 - alpha) * targets + alpha / num_classes


def normalize_images(images: np.ndarray) -> np.ndarray:
    """Scale images into [0, 1] by their global min/max."""
    images = np.asarray(images, dtype=np.float32)
    lo, hi = images.min(), images.max()
    if hi - lo < 1e-12:
        return np.zeros_like(images)
    return (images - lo) / (hi - lo)


def per_channel_standardize(images: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Standardise each channel to zero mean / unit variance across the dataset."""
    images = np.asarray(images, dtype=np.float32)
    if images.ndim != 4:
        raise ValueError("expected (N, C, H, W) images")
    mean = images.mean(axis=(0, 2, 3), keepdims=True)
    std = images.std(axis=(0, 2, 3), keepdims=True)
    return (images - mean) / (std + eps)


def flatten_images(images: np.ndarray) -> np.ndarray:
    """(N, C, H, W) -> (N, C*H*W), e.g. for MLP secondary models."""
    images = np.asarray(images)
    return images.reshape(images.shape[0], -1)
