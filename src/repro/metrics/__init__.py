"""``repro.metrics`` — reliability (AD), statistics, and overhead accounting."""

from .overhead import OverheadResult, RuntimeCost, relative_overhead
from .reliability import (
    ReliabilityResult,
    accuracy,
    accuracy_delta,
    compare_models,
    confusion_matrix,
    expected_calibration_error,
    per_class_accuracy,
    reverse_accuracy_delta,
    top_k_accuracy,
)
from .stats import (
    MeanWithCI,
    mean_confidence_interval,
    statistically_similar,
    summarize,
    welch_ttest,
)

__all__ = [
    "accuracy",
    "accuracy_delta",
    "reverse_accuracy_delta",
    "compare_models",
    "ReliabilityResult",
    "per_class_accuracy",
    "confusion_matrix",
    "top_k_accuracy",
    "expected_calibration_error",
    "MeanWithCI",
    "mean_confidence_interval",
    "welch_ttest",
    "statistically_similar",
    "summarize",
    "RuntimeCost",
    "OverheadResult",
    "relative_overhead",
]
