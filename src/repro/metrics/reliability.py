"""Reliability metrics — paper §III-C.

The study's central metric is the *accuracy delta* (AD): the proportion of
test images misclassified by the faulty model out of all test images that the
golden model classified correctly.  AD isolates the damage done by faulty
training data without double-counting inputs that both models get wrong.
A more resilient model has a *lower* AD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "accuracy",
    "accuracy_delta",
    "reverse_accuracy_delta",
    "ReliabilityResult",
    "compare_models",
    "per_class_accuracy",
    "confusion_matrix",
    "top_k_accuracy",
    "expected_calibration_error",
]


def _check_lengths(*arrays: np.ndarray) -> None:
    lengths = {len(a) for a in arrays}
    if len(lengths) != 1:
        raise ValueError(f"arrays differ in length: {sorted(lengths)}")


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of hard predictions against integer labels."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    _check_lengths(predictions, labels)
    if len(labels) == 0:
        raise ValueError("cannot compute accuracy of zero predictions")
    return float((predictions == labels).mean())


def accuracy_delta(
    golden_predictions: np.ndarray,
    faulty_predictions: np.ndarray,
    labels: np.ndarray,
) -> float:
    """The AD of paper §III-C.

    ``AD = |{golden correct AND faulty wrong}| / |{golden correct}|``

    Returns 0.0 when the golden model classified nothing correctly (the
    technique can then not be blamed for any *additional* misclassification).
    """
    golden_predictions = np.asarray(golden_predictions)
    faulty_predictions = np.asarray(faulty_predictions)
    labels = np.asarray(labels)
    _check_lengths(golden_predictions, faulty_predictions, labels)
    golden_correct = golden_predictions == labels
    n_golden_correct = int(golden_correct.sum())
    if n_golden_correct == 0:
        return 0.0
    broken = golden_correct & (faulty_predictions != labels)
    return float(broken.sum() / n_golden_correct)


def reverse_accuracy_delta(
    golden_predictions: np.ndarray,
    faulty_predictions: np.ndarray,
    labels: np.ndarray,
) -> float:
    """Fraction fixed by the faulty model among inputs the golden model missed.

    The paper reports this to be insignificant (§III-C); we expose it so that
    claim can be checked experimentally.
    """
    golden_predictions = np.asarray(golden_predictions)
    faulty_predictions = np.asarray(faulty_predictions)
    labels = np.asarray(labels)
    _check_lengths(golden_predictions, faulty_predictions, labels)
    golden_wrong = golden_predictions != labels
    n_golden_wrong = int(golden_wrong.sum())
    if n_golden_wrong == 0:
        return 0.0
    fixed = golden_wrong & (faulty_predictions == labels)
    return float(fixed.sum() / n_golden_wrong)


@dataclass(frozen=True)
class ReliabilityResult:
    """Full golden-vs-faulty comparison for one configuration."""

    golden_accuracy: float
    faulty_accuracy: float
    accuracy_delta: float
    reverse_accuracy_delta: float
    num_test: int

    def __str__(self) -> str:
        return (
            f"golden={self.golden_accuracy:.1%} faulty={self.faulty_accuracy:.1%} "
            f"AD={self.accuracy_delta:.1%} reverse-AD={self.reverse_accuracy_delta:.1%}"
        )


def compare_models(
    golden_predictions: np.ndarray,
    faulty_predictions: np.ndarray,
    labels: np.ndarray,
) -> ReliabilityResult:
    """Compute the full reliability comparison of paper Fig. 2."""
    return ReliabilityResult(
        golden_accuracy=accuracy(golden_predictions, labels),
        faulty_accuracy=accuracy(faulty_predictions, labels),
        accuracy_delta=accuracy_delta(golden_predictions, faulty_predictions, labels),
        reverse_accuracy_delta=reverse_accuracy_delta(
            golden_predictions, faulty_predictions, labels
        ),
        num_test=len(np.asarray(labels)),
    )


def top_k_accuracy(probabilities: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of inputs whose true label is among the k most probable classes."""
    probabilities = np.asarray(probabilities)
    labels = np.asarray(labels)
    if probabilities.ndim != 2:
        raise ValueError("probabilities must be (N, K)")
    _check_lengths(probabilities, labels)
    if not 1 <= k <= probabilities.shape[1]:
        raise ValueError(f"k must be in [1, {probabilities.shape[1]}]; got {k}")
    top = np.argsort(-probabilities, axis=1)[:, :k]
    return float((top == labels[:, None]).any(axis=1).mean())


def expected_calibration_error(
    probabilities: np.ndarray, labels: np.ndarray, bins: int = 10
) -> float:
    """ECE: mean |confidence − accuracy| over equal-width confidence bins.

    Label smoothing and distillation change model *calibration* as a side
    effect of their noise mitigation; ECE quantifies that.  Lower is better.
    """
    probabilities = np.asarray(probabilities)
    labels = np.asarray(labels)
    if probabilities.ndim != 2:
        raise ValueError("probabilities must be (N, K)")
    _check_lengths(probabilities, labels)
    if bins < 1:
        raise ValueError("bins must be >= 1")
    confidence = probabilities.max(axis=1)
    correct = probabilities.argmax(axis=1) == labels
    edges = np.linspace(0.0, 1.0, bins + 1)
    ece = 0.0
    n = len(labels)
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (confidence > lo) & (confidence <= hi) if lo > 0 else (confidence <= hi)
        if not mask.any():
            continue
        gap = abs(float(correct[mask].mean()) - float(confidence[mask].mean()))
        ece += (mask.sum() / n) * gap
    return float(ece)


def per_class_accuracy(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Accuracy per class; NaN for classes absent from ``labels``."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    _check_lengths(predictions, labels)
    result = np.full(num_classes, np.nan)
    for cls in range(num_classes):
        mask = labels == cls
        if mask.any():
            result[cls] = float((predictions[mask] == cls).mean())
    return result


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """``M[i, j]`` = count of true class ``i`` predicted as class ``j``."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    _check_lengths(predictions, labels)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix
