"""Runtime-overhead accounting — paper §IV-E.

Each mitigation technique reports the wall-clock training and inference time
of its fitted model; overheads are expressed relative to the baseline
(plain cross-entropy training of the same architecture), matching the paper's
"1×, 1.5×, 5×" style of reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RuntimeCost", "OverheadResult", "relative_overhead"]


@dataclass
class RuntimeCost:
    """Wall-clock seconds spent training and running inference.

    The per-phase numbers this module aggregates come from the same span
    timers the telemetry layer writes to trace files (``faulty_fit`` /
    ``inference`` spans), so Table 5-style overhead reports and
    ``repro-study trace`` summaries agree on where time went.
    """

    training_s: float = 0.0
    inference_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Combined training + inference wall-clock."""
        return self.training_s + self.inference_s

    def __add__(self, other: "RuntimeCost") -> "RuntimeCost":
        return RuntimeCost(
            training_s=self.training_s + other.training_s,
            inference_s=self.inference_s + other.inference_s,
        )


@dataclass(frozen=True)
class OverheadResult:
    """Overhead of a technique relative to the baseline."""

    technique: str
    training_overhead: float  # e.g. 5.0 means 5x baseline training time
    inference_overhead: float

    def __str__(self) -> str:
        return (
            f"{self.technique}: training {self.training_overhead:.2f}x, "
            f"inference {self.inference_overhead:.2f}x"
        )


def relative_overhead(
    technique: str, cost: RuntimeCost, baseline: RuntimeCost
) -> OverheadResult:
    """Express a technique's cost as a multiple of the baseline's."""
    if baseline.training_s <= 0 or baseline.inference_s <= 0:
        raise ValueError("baseline costs must be positive")
    return OverheadResult(
        technique=technique,
        training_overhead=cost.training_s / baseline.training_s,
        inference_overhead=cost.inference_s / baseline.inference_s,
    )
