"""Statistics for experiment aggregation.

The paper averages 20 repetitions per configuration and reports 95 %
confidence intervals (Figs. 3 & 4 error bars) and "statistically similar"
judgements (§IV-C).  This module provides those: t-based confidence
intervals, Welch's t-test, and a small summary container.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as scipy_stats

__all__ = [
    "MeanWithCI",
    "mean_confidence_interval",
    "welch_ttest",
    "statistically_similar",
    "summarize",
]


@dataclass(frozen=True)
class MeanWithCI:
    """A sample mean with its symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f} (n={self.n})"


def mean_confidence_interval(
    values: Sequence[float] | np.ndarray, confidence: float = 0.95
) -> MeanWithCI:
    """Sample mean with a t-distribution confidence interval.

    With a single observation the half-width is 0 (no spread information),
    matching how single-run smoke configurations are reported.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarise zero values")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1); got {confidence}")
    mean = float(arr.mean())
    if arr.size == 1:
        return MeanWithCI(mean, 0.0, confidence, 1)
    sem = float(arr.std(ddof=1) / np.sqrt(arr.size))
    if sem == 0.0:
        return MeanWithCI(mean, 0.0, confidence, int(arr.size))
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    return MeanWithCI(mean, t_crit * sem, confidence, int(arr.size))


def welch_ttest(
    a: Sequence[float] | np.ndarray, b: Sequence[float] | np.ndarray
) -> tuple[float, float]:
    """Welch's unequal-variance t-test. Returns ``(statistic, p_value)``."""
    a = np.asarray(list(a), dtype=np.float64)
    b = np.asarray(list(b), dtype=np.float64)
    if a.size < 2 or b.size < 2:
        raise ValueError("Welch's t-test needs at least two observations per sample")
    result = scipy_stats.ttest_ind(a, b, equal_var=False)
    return float(result.statistic), float(result.pvalue)


def statistically_similar(
    a: Sequence[float] | np.ndarray,
    b: Sequence[float] | np.ndarray,
    alpha: float = 0.05,
) -> bool:
    """True when the two samples are *not* significantly different.

    This is the paper's §IV-C notion of "statistically similar" AD between
    combined-fault and single-fault configurations.  Degenerate identical
    zero-variance samples compare as similar.
    """
    a_arr = np.asarray(list(a), dtype=np.float64)
    b_arr = np.asarray(list(b), dtype=np.float64)
    if a_arr.std() == 0.0 and b_arr.std() == 0.0:
        return bool(np.isclose(a_arr.mean(), b_arr.mean()))
    _, p_value = welch_ttest(a_arr, b_arr)
    return p_value >= alpha


def summarize(values: Sequence[float] | np.ndarray) -> dict[str, float]:
    """Mean/std/min/max dictionary for report payloads."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarise zero values")
    return {
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
        "n": int(arr.size),
    }
