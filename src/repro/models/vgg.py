"""VGG11 and VGG16 — paper Table III: "Deep, Conv stacks + 3 FC + Max Pooling".

Structurally faithful VGG configurations (stacked 3×3 convolutions with max
pooling between stages, three fully-connected layers) at reduced width and
resolution.  VGG11 has 8 conv layers, VGG16 has 13, matching the canonical
configurations A and D of Simonyan & Zisserman.  Batch normalisation after
each convolution (the standard ``vgg*_bn`` variant) is on by default — at the
reproduction's reduced width the plain deep stack does not train reliably.
"""

from __future__ import annotations

import numpy as np

from ..nn import BatchNorm2D, Conv2D, Dense, Flatten, MaxPool2D, Module, ReLU, Sequential

__all__ = ["VGG", "vgg11", "vgg16"]

# Canonical VGG stage configs expressed as channel multipliers; "M" = maxpool.
_CONFIGS: dict[str, list[object]] = {
    "vgg11": [1, "M", 2, "M", 4, 4, "M", 8, 8, "M", 8, 8],
    "vgg16": [1, 1, "M", 2, 2, "M", 4, 4, 4, "M", 8, 8, 8, "M", 8, 8, 8],
}


class VGG(Module):
    """A VGG-style network built from a stage configuration."""

    def __init__(
        self,
        config_name: str,
        image_shape: tuple[int, int, int],
        num_classes: int,
        width: int = 4,
        rng: np.random.Generator | None = None,
        batch_norm: bool = True,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        if config_name not in _CONFIGS:
            raise KeyError(f"unknown VGG config {config_name!r}; choices: {sorted(_CONFIGS)}")
        channels, height, width_px = image_shape
        self.image_shape = image_shape
        self.num_classes = num_classes
        self.config_name = config_name
        self.batch_norm = batch_norm

        layers: list[Module] = []
        in_ch = channels
        pools = 0
        for item in _CONFIGS[config_name]:
            if item == "M":
                # Stop pooling once the spatial size would drop below 2x2.
                if min(height, width_px) // (2 ** (pools + 1)) >= 2:
                    layers.append(MaxPool2D(2))
                    pools += 1
                continue
            out_ch = int(item) * width
            layers.append(Conv2D(in_ch, out_ch, 3, padding=1, bias=not batch_norm, rng=rng))
            if batch_norm:
                layers.append(BatchNorm2D(out_ch))
            layers.append(ReLU())
            in_ch = out_ch
        self.features = Sequential(*layers)

        flat = in_ch * (height // (2**pools)) * (width_px // (2**pools))
        hidden = max(width * 16, num_classes * 2)
        self.classifier = Sequential(
            Flatten(),
            Dense(flat, hidden, rng=rng),
            ReLU(),
            Dense(hidden, hidden, rng=rng),
            ReLU(),
            Dense(hidden, num_classes, rng=rng),
        )

    @property
    def num_conv_layers(self) -> int:
        """Number of convolutional layers (8 for VGG11, 13 for VGG16)."""
        return sum(1 for layer in self.features if isinstance(layer, Conv2D))

    def forward(self, x):  # noqa: D102
        return self.classifier(self.features(x))


def vgg11(
    image_shape: tuple[int, int, int],
    num_classes: int,
    width: int = 4,
    rng: np.random.Generator | None = None,
) -> VGG:
    """VGG configuration A (8 conv + 3 FC)."""
    return VGG("vgg11", image_shape, num_classes, width=width, rng=rng)


def vgg16(
    image_shape: tuple[int, int, int],
    num_classes: int,
    width: int = 4,
    rng: np.random.Generator | None = None,
) -> VGG:
    """VGG configuration D (13 conv + 3 FC) — the paper's Table III row."""
    return VGG("vgg16", image_shape, num_classes, width=width, rng=rng)
