"""MobileNet — paper Table III: "Deep, 27 Conv + 1 FC + Avg Pooling".

A structurally faithful MobileNet-v1: a stem convolution followed by 13
depthwise-separable blocks (each a depthwise 3×3 + pointwise 1×1, i.e. 26
convolutions), giving 27 convs total, then global average pooling and one
fully-connected classifier.
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    BatchNorm2D,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAvgPool2D,
    Module,
    ReLU,
    Sequential,
)

__all__ = ["DepthwiseSeparableBlock", "MobileNet", "build_mobilenet"]


class DepthwiseSeparableBlock(Module):
    """Depthwise 3×3 conv + pointwise 1×1 conv, each with BN and ReLU."""

    def __init__(
        self, in_channels: int, out_channels: int, stride: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.depthwise = DepthwiseConv2D(in_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2D(in_channels)
        self.pointwise = Conv2D(in_channels, out_channels, 1, bias=False, rng=rng)
        self.bn2 = BatchNorm2D(out_channels)

    def forward(self, x):  # noqa: D102
        out = self.bn1(self.depthwise(x)).relu()
        return self.bn2(self.pointwise(out)).relu()


# (channel multiplier, stride) per depthwise-separable block — the 13-block
# MobileNet-v1 layout with strides adapted for small inputs (strides beyond
# the input's downsampling budget become 1).
_BLOCKS: list[tuple[int, int]] = [
    (2, 1),
    (4, 2),
    (4, 1),
    (8, 2),
    (8, 1),
    (16, 2),
    (16, 1),
    (16, 1),
    (16, 1),
    (16, 1),
    (16, 1),
    (32, 2),
    (32, 1),
]


class MobileNet(Module):
    """MobileNet-v1 with width scaling for the reproduction."""

    def __init__(
        self,
        image_shape: tuple[int, int, int],
        num_classes: int,
        width: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        channels, height, _ = image_shape
        self.image_shape = image_shape
        self.num_classes = num_classes

        self.stem = Sequential(
            Conv2D(channels, width * 2, 3, padding=1, bias=False, rng=rng),
            BatchNorm2D(width * 2),
            ReLU(),
        )
        blocks: list[Module] = []
        in_ch = width * 2
        downsample_budget = max(int(np.log2(max(height // 2, 1))), 1)
        downsamples = 0
        for multiplier, stride in _BLOCKS:
            if stride == 2 and downsamples >= downsample_budget:
                stride = 1
            downsamples += stride == 2
            out_ch = width * multiplier
            blocks.append(DepthwiseSeparableBlock(in_ch, out_ch, stride, rng))
            in_ch = out_ch
        self.blocks = Sequential(*blocks)
        self.pool = GlobalAvgPool2D()
        self.fc = Dense(in_ch, num_classes, rng=rng)

    @property
    def num_conv_layers(self) -> int:
        """Convolution count: 1 stem + 13 × (depthwise + pointwise) = 27."""
        return 1 + 2 * len(self.blocks.layers)

    def forward(self, x):  # noqa: D102
        out = self.stem(x)
        out = self.blocks(out)
        out = self.pool(out)
        return self.fc(out)


def build_mobilenet(
    image_shape: tuple[int, int, int],
    num_classes: int,
    width: int = 2,
    rng: np.random.Generator | None = None,
) -> MobileNet:
    """Build the MobileNet of paper Table III."""
    return MobileNet(image_shape, num_classes, width=width, rng=rng)
