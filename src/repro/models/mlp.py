"""MLP — extension architecture for non-image data (paper §V future work).

Not one of the paper's seven Table III models: this multilayer perceptron
exists for the tabular "sensor" extension dataset, demonstrating that the
TDFM techniques (which only touch losses, labels, and training loops) apply
unchanged beyond image classification.
"""

from __future__ import annotations

import numpy as np

from ..nn import Dense, Dropout, Flatten, Module, ReLU, Sequential

__all__ = ["MLP"]


class MLP(Module):
    """Flatten + a stack of ReLU hidden layers + a linear classifier head."""

    def __init__(
        self,
        image_shape: tuple[int, int, int],
        num_classes: int,
        width: int = 16,
        depth: int = 3,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if depth < 1:
            raise ValueError("depth must be >= 1")
        rng = rng or np.random.default_rng()
        self.image_shape = image_shape
        self.num_classes = num_classes
        features = int(np.prod(image_shape))

        layers: list[Module] = [Flatten()]
        in_dim = features
        for _ in range(depth):
            layers.append(Dense(in_dim, width, rng=rng))
            layers.append(ReLU())
            if dropout > 0:
                layers.append(Dropout(dropout, rng=rng))
            in_dim = width
        layers.append(Dense(in_dim, num_classes, rng=rng))
        self.net = Sequential(*layers)

    def forward(self, x):  # noqa: D102
        return self.net(x)
