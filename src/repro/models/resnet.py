"""ResNet18 and ResNet50 — paper Table III: "Deep, Conv + 1 FC + Avg Pooling".

Structurally faithful residual networks at reduced width/resolution:

- ResNet18: stem conv + 8 basic blocks (2 convs each) = 17 convs + 1 FC.
- ResNet50: stem conv + 16 bottleneck blocks (3 convs each) = 49 convs + 1 FC.

Both end in global average pooling and a single dense classifier, exactly as
in Table III.  Batch normalisation follows every convolution, as in the
original architecture; residual shortcuts use 1×1 projections when the shape
changes.
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    BatchNorm2D,
    Conv2D,
    Dense,
    GlobalAvgPool2D,
    Identity,
    Module,
    ReLU,
    Sequential,
)

__all__ = ["BasicBlock", "BottleneckBlock", "ResNet", "resnet18", "resnet50"]


class BasicBlock(Module):
    """Two 3×3 convolutions with a residual shortcut (ResNet18/34 style)."""

    def __init__(
        self, in_channels: int, out_channels: int, stride: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.conv1 = Conv2D(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2D(out_channels)
        self.conv2 = Conv2D(out_channels, out_channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2D(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2D(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2D(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x):  # noqa: D102
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self.shortcut(x)).relu()


class BottleneckBlock(Module):
    """1×1 → 3×3 → 1×1 bottleneck with expansion 4 (ResNet50 style)."""

    expansion = 4

    def __init__(
        self, in_channels: int, planes: int, stride: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        out_channels = planes * self.expansion
        self.conv1 = Conv2D(in_channels, planes, 1, bias=False, rng=rng)
        self.bn1 = BatchNorm2D(planes)
        self.conv2 = Conv2D(planes, planes, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2D(planes)
        self.conv3 = Conv2D(planes, out_channels, 1, bias=False, rng=rng)
        self.bn3 = BatchNorm2D(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2D(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2D(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x):  # noqa: D102
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out)).relu()
        out = self.bn3(self.conv3(out))
        return (out + self.shortcut(x)).relu()


class ResNet(Module):
    """Residual network with a configurable block type and stage layout."""

    def __init__(
        self,
        block: type,
        stage_blocks: list[int],
        image_shape: tuple[int, int, int],
        num_classes: int,
        width: int = 8,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        channels, height, _ = image_shape
        self.image_shape = image_shape
        self.num_classes = num_classes

        self.stem = Sequential(
            Conv2D(channels, width, 3, padding=1, bias=False, rng=rng),
            BatchNorm2D(width),
            ReLU(),
        )

        blocks: list[Module] = []
        in_ch = width
        planes = width
        # Cap the number of downsampling stages to keep spatial size >= 2.
        max_downsamples = max(int(np.log2(max(height // 2, 1))), 1)
        for stage, count in enumerate(stage_blocks):
            stride = 2 if (stage > 0 and stage <= max_downsamples) else 1
            for block_index in range(count):
                block_stride = stride if block_index == 0 else 1
                blocks.append(block(in_ch, planes, block_stride, rng))
                in_ch = planes * getattr(block, "expansion", 1)
            planes *= 2
        self.blocks = Sequential(*blocks)
        self.pool = GlobalAvgPool2D()
        self.fc = Dense(in_ch, num_classes, rng=rng)

    @property
    def num_conv_layers(self) -> int:
        """Total convolution count (17 for ResNet18, 49 for ResNet50)."""
        count = 0
        for module in self.modules():
            if isinstance(module, Conv2D):
                count += 1
        # Shortcut projections are not counted in the paper's Table III depth.
        shortcut_convs = 0
        for module in self.blocks:
            shortcut = getattr(module, "shortcut", None)
            if isinstance(shortcut, Sequential):
                shortcut_convs += sum(1 for m in shortcut if isinstance(m, Conv2D))
        return count - shortcut_convs

    def forward(self, x):  # noqa: D102
        out = self.stem(x)
        out = self.blocks(out)
        out = self.pool(out)
        return self.fc(out)


def resnet18(
    image_shape: tuple[int, int, int],
    num_classes: int,
    width: int = 8,
    rng: np.random.Generator | None = None,
) -> ResNet:
    """ResNet18: 4 stages of 2 basic blocks (17 convs + 1 FC)."""
    return ResNet(BasicBlock, [2, 2, 2, 2], image_shape, num_classes, width=width, rng=rng)


def resnet50(
    image_shape: tuple[int, int, int],
    num_classes: int,
    width: int = 4,
    rng: np.random.Generator | None = None,
) -> ResNet:
    """ResNet50: bottleneck stages [3, 4, 6, 3] (49 convs + 1 FC)."""
    return ResNet(BottleneckBlock, [3, 4, 6, 3], image_shape, num_classes, width=width, rng=rng)
