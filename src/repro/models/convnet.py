"""ConvNet — paper Table III: "Moderate, 3 Conv + 3 FC + Max Pooling".

The shallow model of the study.  The paper's §IV-B finding that robust loss
and label correction *hurt* shallow models is exercised against this network.
"""

from __future__ import annotations

import numpy as np

from ..nn import Conv2D, Dense, Flatten, MaxPool2D, Module, ReLU, Sequential

__all__ = ["ConvNet"]


class ConvNet(Module):
    """3 convolutional layers, 3 fully-connected layers, max pooling."""

    def __init__(
        self,
        image_shape: tuple[int, int, int],
        num_classes: int,
        width: int = 8,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        channels, height, width_px = image_shape
        self.image_shape = image_shape
        self.num_classes = num_classes

        self.features = Sequential(
            Conv2D(channels, width, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(width, width * 2, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(width * 2, width * 4, 3, padding=1, rng=rng),
            ReLU(),
        )
        spatial_h = height // 4
        spatial_w = width_px // 4
        flat = width * 4 * spatial_h * spatial_w
        hidden = max(width * 8, num_classes * 2)
        self.classifier = Sequential(
            Flatten(),
            Dense(flat, hidden, rng=rng),
            ReLU(),
            Dense(hidden, hidden // 2, rng=rng),
            ReLU(),
            Dense(hidden // 2, num_classes, rng=rng),
        )

    def forward(self, x):  # noqa: D102 - inherits Module.forward contract
        return self.classifier(self.features(x))
