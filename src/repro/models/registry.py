"""Model registry — the seven architectures of paper Table III."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..nn import Module
from .convnet import ConvNet
from .deconvnet import DeconvNet
from .mlp import MLP
from .mobilenet import build_mobilenet
from .resnet import resnet18, resnet50
from .vgg import vgg11, vgg16

__all__ = ["ModelInfo", "MODELS", "build_model", "model_names", "PAPER_TABLE3"]


@dataclass(frozen=True)
class ModelInfo:
    """Registry entry for one architecture."""

    name: str
    depth_class: str  # "Moderate" or "Deep" (paper Table III)
    summary: str
    builder: Callable[..., Module]
    default_width: int
    #: Per-architecture learning-rate multiplier applied on top of the shared
    #: training budget ("hyperparameters recommended by the implementers",
    #: paper SIV) -- MobileNet's BN-heavy depthwise stack needs a higher rate.
    lr_multiplier: float = 1.0


def _convnet(image_shape, num_classes, width, rng):
    return ConvNet(image_shape, num_classes, width=width, rng=rng)


def _deconvnet(image_shape, num_classes, width, rng):
    return DeconvNet(image_shape, num_classes, width=width, rng=rng)


def _mlp(image_shape, num_classes, width, rng):
    return MLP(image_shape, num_classes, width=width, rng=rng)


MODELS: dict[str, ModelInfo] = {
    "convnet": ModelInfo("convnet", "Moderate", "3 Conv + 3 FC + Max Pooling", _convnet, 8),
    "deconvnet": ModelInfo(
        "deconvnet", "Moderate", "4 Conv + 2 FC w/ 0.5 Dropout", _deconvnet, 8
    ),
    "vgg11": ModelInfo("vgg11", "Deep", "8 Conv + 3 FC + Max Pooling", vgg11, 4),
    "vgg16": ModelInfo("vgg16", "Deep", "13 Conv + 3 FC + Max Pooling", vgg16, 4),
    "resnet18": ModelInfo("resnet18", "Deep", "17 Conv + 1 FC + Avg Pooling", resnet18, 8),
    "mobilenet": ModelInfo(
        "mobilenet", "Deep", "27 Conv + 1 FC + Avg Pooling", build_mobilenet, 6, lr_multiplier=3.3
    ),
    "resnet50": ModelInfo("resnet50", "Deep", "49 Conv + 1 FC + Avg Pooling", resnet50, 4),
    # Extension beyond paper Table III: an MLP for the tabular "sensor"
    # dataset (the paper's SV future work is to cover other data types).
    "mlp": ModelInfo("mlp", "Shallow", "3 FC (extension, non-image data)", _mlp, 16),
}

#: Paper Table III rows, for report rendering.
PAPER_TABLE3 = [
    ("ConvNet", "Moderate", "3 Conv + 3 FC + Max Pooling"),
    ("DeconvNet", "Moderate", "4 Conv + 2 FC w/ 0.5 Dropout"),
    ("VGG11", "Deep", "13 Conv + 3 FC + Max Pooling"),
    ("VGG16", "Deep", "13 Conv + 3 FC + Max Pooling"),
    ("ResNet18", "Deep", "17 Conv + 1 FC + Avg Pooling"),
    ("MobileNet", "Deep", "27 Conv + 1 FC + Avg Pooling"),
    ("ResNet50", "Deep", "49 Conv + 1 FC + Avg Pooling"),
]


def model_names(include_extensions: bool = False) -> list[str]:
    """Registered model names (paper Table III order).

    ``include_extensions=True`` adds architectures beyond the paper's seven
    (currently the tabular MLP).
    """
    names = list(MODELS)
    if not include_extensions:
        names = [n for n in names if MODELS[n].depth_class != "Shallow"]
    return names


def build_model(
    name: str,
    image_shape: tuple[int, int, int],
    num_classes: int,
    width: int | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> Module:
    """Build an architecture by name.

    Parameters
    ----------
    name:
        One of :func:`model_names` (case-insensitive).
    image_shape:
        ``(C, H, W)`` of the input images.
    num_classes:
        Output dimensionality.
    width:
        Base channel count; defaults to the registry's per-model value.
    rng, seed:
        Weight-initialisation randomness (pass one or neither).
    """
    if rng is not None and seed is not None:
        raise ValueError("pass either rng or seed, not both")
    try:
        info = MODELS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; choices: {sorted(MODELS)}") from None
    rng = rng if rng is not None else np.random.default_rng(seed)
    model = info.builder(image_shape, num_classes, width or info.default_width, rng)
    model.lr_multiplier = info.lr_multiplier
    return model
