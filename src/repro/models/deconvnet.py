"""DeconvNet — paper Table III: "Moderate, 4 Conv + 2 FC w/ 0.5 Dropout"."""

from __future__ import annotations

import numpy as np

from ..nn import Conv2D, Dense, Dropout, Flatten, MaxPool2D, Module, ReLU, Sequential

__all__ = ["DeconvNet"]


class DeconvNet(Module):
    """4 convolutional layers and 2 fully-connected layers with 0.5 dropout."""

    def __init__(
        self,
        image_shape: tuple[int, int, int],
        num_classes: int,
        width: int = 8,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        channels, height, width_px = image_shape
        self.image_shape = image_shape
        self.num_classes = num_classes

        self.features = Sequential(
            Conv2D(channels, width, 3, padding=1, rng=rng),
            ReLU(),
            Conv2D(width, width * 2, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(width * 2, width * 2, 3, padding=1, rng=rng),
            ReLU(),
            Conv2D(width * 2, width * 4, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
        )
        flat = width * 4 * (height // 4) * (width_px // 4)
        hidden = max(width * 8, num_classes * 2)
        self.classifier = Sequential(
            Flatten(),
            Dropout(0.5, rng=rng),
            Dense(flat, hidden, rng=rng),
            ReLU(),
            Dropout(0.5, rng=rng),
            Dense(hidden, num_classes, rng=rng),
        )

    def forward(self, x):  # noqa: D102
        return self.classifier(self.features(x))
