"""``repro.models`` — the seven image-classification architectures of Table III."""

from .convnet import ConvNet
from .deconvnet import DeconvNet
from .mlp import MLP
from .mobilenet import DepthwiseSeparableBlock, MobileNet, build_mobilenet
from .registry import MODELS, PAPER_TABLE3, ModelInfo, build_model, model_names
from .resnet import BasicBlock, BottleneckBlock, ResNet, resnet18, resnet50
from .vgg import VGG, vgg11, vgg16

__all__ = [
    "ConvNet",
    "DeconvNet",
    "MLP",
    "VGG",
    "vgg11",
    "vgg16",
    "ResNet",
    "BasicBlock",
    "BottleneckBlock",
    "resnet18",
    "resnet50",
    "MobileNet",
    "DepthwiseSeparableBlock",
    "build_mobilenet",
    "ModelInfo",
    "MODELS",
    "PAPER_TABLE3",
    "build_model",
    "model_names",
]
