"""Neural-network layers.

The layer set covers everything the paper's seven architectures (Table III)
need: dense and convolutional layers (including the depthwise-separable pair
used by MobileNet), max/average/global pooling, batch normalisation, dropout,
and the residual blocks of the ResNet family.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init as initializers
from .module import Module, Parameter
from .tensor import Tensor, is_grad_enabled

__all__ = [
    "Dense",
    "Conv2D",
    "DepthwiseConv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm2D",
    "Dropout",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "ZeroPad2D",
    "Identity",
    "Sequential",
]


class Dense(Module):
    """Fully-connected layer: ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        weight_init: str = "he_normal",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        init_fn = initializers.get_initializer(weight_init)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init_fn((in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if (
            F.row_stable_enabled()
            and not is_grad_enabled()
            and x.data.ndim == 2
        ):
            # Row-stable inference: the only batch-crossing gemm in the layer
            # set.  Computed per sample so coalesced serving batches are
            # bitwise-identical to one-at-a-time calls (see
            # :class:`repro.nn.functional.row_stable_inference`).
            out = Tensor(F.rowstable_matmul2d(x.data, self.weight.data))
        else:
            out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        tap = F.kernel_tap()
        if tap is not None:
            # Mutates the forward value in place; the tape node is preserved,
            # so an armed injection context corrupts downstream values only —
            # the transient-fault semantics of repro.faults.hardware.
            tap("dense", out.data)
        return out


class Conv2D(Module):
    """Standard 2-D convolution over NCHW inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        weight_init: str = "he_normal",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        init_fn = initializers.get_initializer(weight_init)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init_fn((out_channels, in_channels, kernel_size, kernel_size), rng)
        )
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class DepthwiseConv2D(Module):
    """Depthwise convolution — one spatial filter per channel (MobileNet)."""

    def __init__(
        self,
        channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            initializers.he_normal((channels, 1, kernel_size, kernel_size), rng)
        )
        self.bias = Parameter(np.zeros(channels, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.depthwise_conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class MaxPool2D(Module):
    """Max pooling."""

    def __init__(self, kernel_size: int = 2, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2D(Module):
    """Average pooling."""

    def __init__(self, kernel_size: int = 2, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2D(Module):
    """Global average pooling: (N, C, H, W) -> (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class BatchNorm2D(Module):
    """Batch normalisation over the channel axis of NCHW inputs.

    Tracks running mean/variance for inference with an exponential moving
    average, matching standard framework semantics.
    """

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(channels, dtype=np.float32))
        self.beta = Parameter(np.zeros(channels, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(channels, dtype=np.float32))
        self.register_buffer("running_var", np.ones(channels, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2D expects NCHW input; got shape {x.shape}")
        if self.training and F.kernel_mode() != "legacy":
            # Stats + running-buffer update + normalisation fused into one
            # stateful registry op so a compiled replay re-runs all of it
            # (same floats as the unfused pair below — see functional.py).
            return F.batch_norm_2d_train(x, self.gamma, self.beta, self)
        if self.training:
            mean = x.data.mean(axis=(0, 2, 3))
            var = x.data.var(axis=(0, 2, 3))
            self.running_mean[...] = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var[...] = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean = self.running_mean
            var = self.running_var
        return F.batch_norm_2d(
            x, self.gamma, self.beta, mean, var, self.eps, training=self.training
        )


class Dropout(Module):
    """Inverted dropout: active only in training mode."""

    def __init__(self, rate: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1); got {rate}")
        self.rate = rate
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        # The rng draw lives inside the op's apply (see functional.py) so a
        # compiled replay advances the mask stream exactly like eager mode.
        return F.dropout_train(x, self)


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class ZeroPad2D(Module):
    """Zero-pad the spatial axes of NCHW inputs by ``padding`` pixels."""

    def __init__(self, padding: int) -> None:
        super().__init__()
        if padding < 0:
            raise ValueError("padding must be >= 0")
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return x.pad2d(self.padding)


class Identity(Module):
    """Pass-through layer (used for residual shortcuts)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def append(self, layer: Module) -> None:
        self.layers.append(layer)

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
