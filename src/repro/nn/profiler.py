"""Per-op profiling of compiled training steps — ``repro-study profile``.

PR 7's compiled tape made the *step* fast but opaque: the benchmark says
replay is ~1.4× eager, not which ops pay for the remaining time.  This
module opens that box.  :class:`StepProfile` is the accumulator armed by
:meth:`CompiledStep.enable_profile` — persistent per-schedule-slot time and
call counters, bucketed separately for the forward ``apply`` and backward
``vjp`` schedules.  When profiling is off the armed replay loops carry
zero extra branches (the dispatch is one ``is None`` check per
``forward``/``backward`` call), and replayed values are bitwise-identical
either way — the profiled loops run the same op bodies in the same order,
bracketed by ``perf_counter`` reads.

:func:`profile_model_step` is the measurement harness behind the CLI:
record one training step of a registry architecture on synthetic data,
compile it, replay with profiling armed, and report per-op totals next to
the measured replay wall-clock (``coverage`` = op total / wall — the
fraction of the step the op table explains).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "StepProfile",
    "ProfileRow",
    "StepProfileReport",
    "profile_model_step",
    "render_profile_report",
]


@dataclass
class ProfileRow:
    """Aggregated timing for one op name across its schedule slots."""

    op: str
    entries: int
    calls: int
    fwd_s: float
    bwd_s: float

    @property
    def total_s(self) -> float:
        return self.fwd_s + self.bwd_s


class StepProfile:
    """Per-slot time/call accumulators for one compiled schedule.

    One slot per forward ``apply`` and per backward ``vjp`` in schedule
    order — accumulators are persistent across replays, so profiling N
    steps costs two floats and two ints per slot, no per-step allocation.
    """

    def __init__(self, fwd_names, bwd_names) -> None:
        self.fwd_names = tuple(fwd_names)
        self.bwd_names = tuple(bwd_names)
        self.fwd_s = [0.0] * len(self.fwd_names)
        self.fwd_calls = [0] * len(self.fwd_names)
        self.bwd_s = [0.0] * len(self.bwd_names)
        self.bwd_calls = [0] * len(self.bwd_names)
        self.steps = 0

    def reset(self) -> None:
        self.fwd_s = [0.0] * len(self.fwd_names)
        self.fwd_calls = [0] * len(self.fwd_names)
        self.bwd_s = [0.0] * len(self.bwd_names)
        self.bwd_calls = [0] * len(self.bwd_names)
        self.steps = 0

    @property
    def op_total_s(self) -> float:
        return sum(self.fwd_s) + sum(self.bwd_s)

    def rows(self) -> list[ProfileRow]:
        """Per-op aggregation over the schedule, slowest first."""
        by_op: dict[str, ProfileRow] = {}
        for name, seconds, calls in zip(self.fwd_names, self.fwd_s, self.fwd_calls):
            row = by_op.setdefault(name, ProfileRow(name, 0, 0, 0.0, 0.0))
            row.entries += 1
            row.calls += calls
            row.fwd_s += seconds
        for name, seconds, calls in zip(self.bwd_names, self.bwd_s, self.bwd_calls):
            row = by_op.setdefault(name, ProfileRow(name, 0, 0, 0.0, 0.0))
            row.calls += calls
            row.bwd_s += seconds
        return sorted(by_op.values(), key=lambda row: row.total_s, reverse=True)


@dataclass
class StepProfileReport:
    """One profiling run: the per-op table plus its wall-clock context."""

    model: str
    width: int
    batch: int
    steps: int
    n_entries: int
    n_backward: int
    wall_s: float
    profile: StepProfile

    @property
    def op_total_s(self) -> float:
        return self.profile.op_total_s

    @property
    def coverage(self) -> float:
        """Fraction of the measured wall-clock the op table accounts for."""
        return self.op_total_s / self.wall_s if self.wall_s else 0.0


def profile_model_step(
    model: str = "vgg11",
    image_shape: tuple[int, int, int] = (3, 32, 32),
    num_classes: int = 10,
    width: int | None = None,
    batch: int = 4,
    steps: int = 30,
    warmup: int = 3,
    seed: int = 0,
) -> StepProfileReport:
    """Record, compile, and profile one architecture's training step.

    Synthetic data (seeded), compiled kernel mode, no optimizer inside the
    timed region — the measured wall covers exactly the forward + backward
    replay the op accumulators bracket, so ``coverage`` isolates schedule
    overhead (feed binding, gradient-slot bookkeeping) from op time.
    """
    # Deferred imports: repro.nn.compile imports this module from
    # enable_profile, and the model registry pulls in the full nn package.
    from ..models import build_model
    from . import SGD, CrossEntropy, Tensor, use_kernel_mode
    from .compile import compile_tape
    from .tape import Tape, tape_scope

    rng = np.random.default_rng(seed)
    x = rng.normal(size=(batch, *image_shape)).astype(np.float32)
    y = np.eye(num_classes, dtype=np.float32)[rng.integers(0, num_classes, batch)]

    with use_kernel_mode("compiled"):
        net = build_model(model, image_shape, num_classes, width=width,
                          rng=np.random.default_rng(seed))
        net.train()
        optimizer = SGD(net.parameters(), lr=0.01)
        loss_fn = CrossEntropy()

        tape = Tape()
        with tape_scope(tape):
            logits = net(Tensor(x))
            loss = loss_fn(logits, y)
            optimizer.zero_grad()
            loss.backward()
        step = compile_tape(tape, loss, logits, (x, y))

        for _ in range(max(warmup, 1)):  # fault in the persistent buffers
            step.forward((x, y))
            step.backward()

        profile = step.enable_profile()
        profile.reset()
        t0 = time.perf_counter()
        for _ in range(steps):
            step.forward((x, y))
            step.backward()
        wall_s = time.perf_counter() - t0
        step.disable_profile()

    return StepProfileReport(
        model=model,
        width=width or 0,
        batch=batch,
        steps=steps,
        n_entries=step.n_entries,
        n_backward=step.n_backward,
        wall_s=wall_s,
        profile=profile,
    )


def render_profile_report(report: StepProfileReport, top: int = 0) -> str:
    """Render the per-op table behind ``repro-study profile``."""
    profile = report.profile
    rows = profile.rows()
    if top:
        rows = rows[:top]
    per_step_ms = report.wall_s / report.steps * 1e3 if report.steps else 0.0
    lines = [
        f"profile: {report.model} batch={report.batch} "
        f"({report.n_entries} forward ops, {report.n_backward} backward ops, "
        f"{report.steps} replayed steps)",
        f"step wall-clock: {per_step_ms:.3f} ms/step, "
        f"op total {profile.op_total_s / report.steps * 1e3:.3f} ms/step "
        f"({report.coverage * 100:.1f}% coverage)",
        "",
        f"{'op':<24} {'entries':>7} {'calls':>7} {'fwd ms/step':>12} "
        f"{'bwd ms/step':>12} {'total ms/step':>14} {'%':>6}",
    ]
    op_total = profile.op_total_s or 1.0
    steps = report.steps or 1
    for row in rows:
        lines.append(
            f"{row.op:<24} {row.entries:>7} {row.calls:>7} "
            f"{row.fwd_s / steps * 1e3:>12.3f} {row.bwd_s / steps * 1e3:>12.3f} "
            f"{row.total_s / steps * 1e3:>14.3f} {row.total_s / op_total * 100:>5.1f}%"
        )
    return "\n".join(lines)
