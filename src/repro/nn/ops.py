"""Declarative op registry for the record → plan → execute autodiff pipeline.

Historically every ``Tensor`` op captured a ``backward_fn`` closure over its
forward intermediates, which welds the backward pass to the Python frame that
ran the forward pass.  This module splits each op into data (an :class:`OpDef`
holding a pure ``apply`` and a pure ``vjp``) plus a per-call :class:`OpCtx`
carrying the saved intermediates.  Eager mode still runs ops immediately —
``Tensor.run_op`` calls ``apply`` and wraps ``vjp`` for the classic tape — but
because the op is now *data*, a recorded step can be replayed without
rebuilding the graph (see :mod:`repro.nn.compile`).

Bitwise contract
----------------
``apply`` and ``vjp`` are the *single* implementation used by both eager and
compiled execution, so the two modes perform the identical float operation
sequence by construction.  The only compiled-mode difference is *where*
results land: when an executor pre-arms ``ctx.bufs``, applies may compute into
persistent ``out=`` buffers instead of fresh allocations — same ufunc/GEMM
call, same values, no allocator traffic.

Contracts:

``apply(ctx, inputs, kwargs) -> np.ndarray``
    Pure function of the input arrays and kwargs (``stateful`` ops may also
    advance an rng or running statistics referenced via kwargs).  Saves
    whatever the backward pass needs on ``ctx.saved``.

``vjp(ctx, grad, needs, acc)``
    Routes the output cotangent to the inputs: for each input ``i`` with
    ``needs[i]`` true, computes the gradient contribution and calls
    ``acc(i, g)``.  The callback owns accumulation (``Tensor._accumulate`` in
    eager mode, a preplanned gradient slot in compiled mode), so contribution
    order — which fixes the bitwise result of ``+=`` chains — is identical in
    both modes.

``discard(ctx)``
    Optional cleanup for the not-recording eager path (returns workspace
    buffers that ``vjp`` would otherwise release).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["OpCtx", "OpDef", "OP_REGISTRY", "register_op"]


class OpCtx:
    """Per-call context: saved intermediates plus optional persistent buffers.

    ``saved`` is whatever tuple the op's ``apply`` stashes for its ``vjp``.
    ``bufs`` is ``None`` in eager mode (every call allocates, exactly as the
    closure implementation did) and a dict in compiled execution, where the
    same :class:`OpCtx` instance is reused every step so :meth:`buffer`
    returns the same hot array each time.
    """

    __slots__ = ("saved", "bufs")

    def __init__(self, persistent: bool = False) -> None:
        self.saved = None
        self.bufs: dict | None = {} if persistent else None

    def buffer(self, key: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """An output buffer: persistent across steps when armed, fresh otherwise."""
        if self.bufs is None:
            return np.empty(shape, dtype)
        buf = self.bufs.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = self.bufs[key] = np.empty(shape, dtype)
        return buf


class OpDef:
    """A differentiable op as data: name + pure apply/vjp (+ cleanup)."""

    __slots__ = ("name", "apply", "vjp", "discard", "stateful")

    def __init__(
        self,
        name: str,
        apply: Callable,
        vjp: Callable,
        discard: Callable | None = None,
        stateful: bool = False,
    ) -> None:
        self.name = name
        self.apply = apply
        self.vjp = vjp
        self.discard = discard
        # Stateful ops advance external state (an rng stream, batch-norm
        # running statistics) inside ``apply``; a planner must re-run them
        # every step and may never prune them.
        self.stateful = stateful

    def __repr__(self) -> str:
        flag = ", stateful" if self.stateful else ""
        return f"OpDef({self.name!r}{flag})"


#: Every registered op, by name.  Populated by :mod:`repro.nn.tensor` (core
#: arithmetic) and :mod:`repro.nn.functional` (kernel ops) at import time.
OP_REGISTRY: dict[str, OpDef] = {}


def register_op(
    name: str,
    apply: Callable,
    vjp: Callable,
    discard: Callable | None = None,
    stateful: bool = False,
) -> OpDef:
    """Create and register an :class:`OpDef`; returns it for direct dispatch."""
    if name in OP_REGISTRY:
        raise ValueError(f"op {name!r} is already registered")
    op = OpDef(name, apply, vjp, discard=discard, stateful=stateful)
    OP_REGISTRY[name] = op
    return op
