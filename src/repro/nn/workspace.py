"""Reusable scratch-buffer arena for the convolution/pooling hot path.

Every conv or pool forward pass needs an im2col patch buffer, and every
backward pass needs a patch-gradient buffer plus a padded ``col2im``
accumulator.  Allocating those with ``np.empty``/``np.zeros`` on each batch
makes the allocator (and the page-faulting of fresh pages) a measurable
fraction of a training step.  The :class:`Workspace` keeps released buffers
in small free-lists keyed by ``(shape, dtype)`` so that steady-state training
reuses the same hot pages batch after batch.

Ownership discipline is strictly scoped: a kernel *acquires* a buffer, fully
overwrites (or zero-fills) it, and *releases* it as soon as the values have
been consumed — within the forward call, or within the backward closure right
after the gradient has been accumulated.  Buffers that are never released are
simply garbage-collected; the arena never hands out a buffer twice without an
intervening release.

The process-global workspace (:func:`get_workspace`) is flushed by
``Module.train()``/``Module.eval()`` so mode transitions (epoch boundaries,
evaluation passes) act as natural free points and shape changes between
phases cannot strand memory.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["Workspace", "get_workspace"]


class Workspace:
    """A pool of reusable NumPy buffers keyed by shape and dtype.

    Parameters
    ----------
    max_per_key:
        Maximum number of free buffers retained per ``(shape, dtype)`` key.
        Training a conv net needs at most a handful of live buffers per
        distinct shape (patch buffer + gradient buffer + accumulator), so a
        small cap bounds worst-case memory while still giving a ~100% hit
        rate in steady state.
    """

    def __init__(self, max_per_key: int = 4) -> None:
        if max_per_key < 1:
            raise ValueError(f"max_per_key must be >= 1; got {max_per_key}")
        self.max_per_key = max_per_key
        self._pool: dict[tuple[tuple[int, ...], str], list[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self.dropped = 0

    @staticmethod
    def _key(shape: tuple[int, ...], dtype: np.dtype) -> tuple[tuple[int, ...], str]:
        return (tuple(shape), np.dtype(dtype).str)

    def acquire(self, shape: tuple[int, ...], dtype: np.dtype = np.float32) -> np.ndarray:
        """Return an uninitialised buffer of ``shape``/``dtype``.

        The contents are arbitrary (possibly stale values from a previous
        use); callers must fully overwrite the buffer or use
        :meth:`acquire_zeros`.
        """
        free = self._pool.get(self._key(shape, dtype))
        if free:
            self.hits += 1
            return free.pop()
        self.misses += 1
        return np.empty(shape, dtype=dtype)

    def acquire_zeros(self, shape: tuple[int, ...], dtype: np.dtype = np.float32) -> np.ndarray:
        """Return a zero-filled buffer of ``shape``/``dtype`` (for accumulators)."""
        buf = self.acquire(shape, dtype)
        buf.fill(0)
        return buf

    def release(self, buf: np.ndarray) -> None:
        """Return ``buf`` to the pool for reuse.

        Only arrays that own their memory are pooled; views are ignored (a
        view's base may still be referenced elsewhere, so recycling it would
        alias live data).  Buffers beyond ``max_per_key`` are dropped to the
        garbage collector.
        """
        if buf.base is not None:
            return
        key = self._key(buf.shape, buf.dtype)
        free = self._pool.setdefault(key, [])
        if len(free) >= self.max_per_key:
            self.dropped += 1
            return
        free.append(buf)

    def clear(self) -> None:
        """Drop every pooled buffer (counters are preserved)."""
        self._pool.clear()

    @property
    def num_free(self) -> int:
        """Total buffers currently sitting in free-lists."""
        return sum(len(free) for free in self._pool.values())

    @property
    def bytes_free(self) -> int:
        """Total bytes held by pooled buffers."""
        return sum(buf.nbytes for free in self._pool.values() for buf in free)

    def __repr__(self) -> str:
        return (
            f"Workspace(free={self.num_free}, hits={self.hits}, "
            f"misses={self.misses}, dropped={self.dropped})"
        )


_WORKSPACES = threading.local()


def get_workspace() -> Workspace:
    """Return the calling thread's workspace used by the conv/pool kernels.

    One arena per thread: the kernels acquire and release buffers without
    locking, which is only safe if no two threads ever share a free-list.
    The serving engine (:mod:`repro.serve`) runs inference on worker threads
    concurrently with whatever the main thread is doing, so each thread gets
    its own pool — the main-thread behaviour (and the training hot path) is
    unchanged, and a worker's steady-state buffers stay hot per worker.
    """
    workspace = getattr(_WORKSPACES, "workspace", None)
    if workspace is None:
        workspace = _WORKSPACES.workspace = Workspace()
    return workspace
