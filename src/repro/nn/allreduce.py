"""Deterministic in-cell data parallelism: shard a batch, allreduce gradients.

One optimisation step under ``ddp = N`` is defined as *sharded-step
semantics*: the shuffled batch is split into ``N`` contiguous shards
(:func:`shard_slices`), each shard runs a full forward/backward on its own
replica, and the shard gradients are combined by a fixed-order, chunked
tree reduction (:func:`reduce_gradients`) that replays the eager
``Tensor._accumulate`` copy-then-``+=`` order — so the combined gradient,
the combined loss (:func:`combine_shard_losses`), and therefore every
weight byte after ``optimizer.step()`` are a pure function of the batch and
the replica states, never of scheduling.

Two interchangeable backends execute those semantics:

- ``"process"`` — rank 0 *is* the trainer's process; ranks 1..N-1 are
  forked worker processes exchanging shards and flat gradients over one
  ``multiprocessing.shared_memory`` block (parameters are re-broadcast
  through the same block every step, so workers track the optimizer
  exactly).  This is the throughput path for the big nets.
- ``"inproc"`` — the same shard loop run serially in one process, swapping
  per-replica state (batch-norm running buffers, dropout rng streams) in
  and out of the live model between shards.  This is the executable
  specification: both backends call the identical per-shard step and the
  identical reduction helpers on identical replica states, so their fits
  are bitwise-equal by construction — the equivalence tests pin it.

Replica state: parameters are always broadcast from rank 0 (the optimizer
lives there alone), while batch-norm running statistics and dropout rng
streams are *replica-local* — each rank's evolve only from the shards it
saw, and rank 0's (the live model's) are the canonical ones used for
validation and the final model.  The CRC32 seed chain of the study is
untouched: shuffling stays in the trainer, shard boundaries are derived
from the already-shuffled order.

The world size is a process-global knob mirroring the kernel-mode switch:
``REPRO_DDP`` in the environment, :func:`set_ddp` / :func:`use_ddp` in
code; :class:`~repro.nn.trainer.Trainer` picks it up per fit.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Iterator

import multiprocessing
import numpy as np

from .tensor import Tensor

__all__ = [
    "get_ddp",
    "set_ddp",
    "use_ddp",
    "shard_slices",
    "reduce_gradients",
    "combine_shard_losses",
    "DataParallelGroup",
]

#: Chunk length (float32 elements) for the chunked reduction — large enough
#: to amortise ufunc dispatch, small enough to stay cache-resident.
_REDUCE_CHUNK = 1 << 16


# ----------------------------------------------------------------------
# The process-global world-size knob (mirrors the kernel-mode switch)
# ----------------------------------------------------------------------

def _parse_world(value: "str | int") -> int:
    world = int(value)
    if world < 1:
        raise ValueError(f"ddp world size must be >= 1; got {world}")
    return world


_DDP_WORLD = _parse_world(os.environ.get("REPRO_DDP", "1"))


def get_ddp() -> int:
    """The active data-parallel world size (1 = ordinary single-step fit)."""
    return _DDP_WORLD


def set_ddp(world: int) -> int:
    """Select the data-parallel world size; returns the previous value."""
    global _DDP_WORLD
    previous = _DDP_WORLD
    _DDP_WORLD = _parse_world(world)
    return previous


@contextmanager
def use_ddp(world: int) -> Iterator[int]:
    """Scoped :func:`set_ddp`, restoring the previous world size on exit."""
    previous = set_ddp(world)
    try:
        yield _DDP_WORLD
    finally:
        set_ddp(previous)


# ----------------------------------------------------------------------
# The deterministic combination helpers (shared by both backends)
# ----------------------------------------------------------------------

def shard_slices(n: int, world: int) -> list[slice]:
    """Split ``range(n)`` into ``world`` contiguous shards, larger ones first.

    Always returns exactly ``world`` slices; trailing shards may be empty
    when ``n < world`` (those ranks idle for the step).  Shard boundaries
    depend only on ``(n, world)``, so the sharding itself is deterministic.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0; got {n}")
    if world < 1:
        raise ValueError(f"world must be >= 1; got {world}")
    base, extra = divmod(n, world)
    out = []
    lo = 0
    for rank in range(world):
        size = base + (1 if rank < extra else 0)
        out.append(slice(lo, lo + size))
        lo += size
    return out


def reduce_gradients(
    flats: "list[np.ndarray]",
    lens: "list[int]",
    out: "np.ndarray | None" = None,
    chunk: int = _REDUCE_CHUNK,
) -> np.ndarray:
    """Combine per-shard flat gradients into the full-batch gradient.

    Each shard backward produced the gradient of its *shard-mean* loss, so
    the batch gradient is ``sum_r (n_r / n) * g_r``.  The reduction is a
    fixed left-deep chain in rank order, processed in ``chunk``-sized
    pieces: chunk by chunk, the first scaled shard is *written* and every
    later one is ``+=``-accumulated — exactly the copy-then-add order
    ``Tensor._accumulate`` uses in the eager backward pass, so chunking
    changes nothing bitwise (the operations are elementwise) while keeping
    the working set cache-resident.
    """
    if not flats:
        raise ValueError("reduce_gradients needs at least one shard")
    if len(flats) != len(lens):
        raise ValueError(f"{len(flats)} gradient shards but {len(lens)} lengths")
    total = sum(lens)
    if total <= 0:
        raise ValueError("total shard length must be positive")
    scales = [n / total for n in lens]
    size = flats[0].size
    if out is None:
        out = np.empty(size, dtype=flats[0].dtype)
    tmp = np.empty(min(chunk, size), dtype=flats[0].dtype)
    for lo in range(0, size, chunk):
        hi = min(lo + chunk, size)
        np.multiply(flats[0][lo:hi], scales[0], out=out[lo:hi])
        for flat, scale in zip(flats[1:], scales[1:]):
            piece = tmp[: hi - lo]
            np.multiply(flat[lo:hi], scale, out=piece)
            out[lo:hi] += piece
    return out


def combine_shard_losses(losses: "list[float]", lens: "list[int]") -> float:
    """Batch-mean loss from shard-mean losses: ``sum_r (n_r / n) * L_r``.

    Accumulated left-to-right in rank order at float64, so the combined
    loss is deterministic and — for ``world == 1`` — exactly the plain
    single-step loss (``(n/n) * L == L``).
    """
    if len(losses) != len(lens):
        raise ValueError(f"{len(losses)} losses but {len(lens)} lengths")
    total = sum(lens)
    if total <= 0:
        raise ValueError("total shard length must be positive")
    combined = 0.0
    for loss, n in zip(losses, lens):
        combined += (n / total) * loss
    return combined


# ----------------------------------------------------------------------
# Per-shard step + replica-local state (shared by both backends)
# ----------------------------------------------------------------------

def _param_layout(params) -> "list[tuple[int, int, tuple]]":
    """(offset, size, shape) for each parameter in ``parameters()`` order."""
    layout = []
    offset = 0
    for p in params:
        size = int(p.data.size)
        layout.append((offset, size, p.data.shape))
        offset += size
    return layout


def _flatten_grads(params, layout, out: np.ndarray) -> np.ndarray:
    for p, (offset, size, _) in zip(params, layout):
        if p.grad is None:
            out[offset : offset + size] = 0.0
        else:
            out[offset : offset + size] = p.grad.ravel()
    return out


def _shard_step(model, loss_fn, params, layout, xb, yb, out: np.ndarray):
    """Forward/backward one shard on ``model``; flat gradient into ``out``.

    This single function is the per-shard step for rank 0, for forked
    workers, and for the in-process reference — the backends cannot drift.
    """
    for p in params:
        p.zero_grad()
    logits = model(Tensor(xb))
    loss_t = loss_fn(logits, yb)
    loss_value = float(loss_t.item())
    loss_t.backward()
    _flatten_grads(params, layout, out)
    return loss_value, logits.data


class _ReplicaState:
    """A replica's non-parameter training state: BN buffers + dropout rngs.

    Parameters are broadcast from rank 0 every step, but running statistics
    and rng streams are replica-local — this is what the in-process backend
    swaps in and out of the live model to emulate N forked replicas.
    """

    __slots__ = ("buffers", "rng_states")

    def __init__(self, buffers: "list[np.ndarray]", rng_states: list) -> None:
        self.buffers = buffers
        self.rng_states = rng_states


def _dropout_rngs(model) -> list:
    rngs = []
    for module in model.modules():
        rng = getattr(module, "rng", None)
        if rng is not None and hasattr(rng, "bit_generator"):
            rngs.append(rng)
    return rngs


def _live_buffers(model) -> "list[np.ndarray]":
    return [buf for _, buf in model.named_buffers()]


def _capture_state(buffers, rngs) -> _ReplicaState:
    return _ReplicaState(
        [buf.copy() for buf in buffers],
        [rng.bit_generator.state for rng in rngs],
    )


def _restore_state(buffers, rngs, state: _ReplicaState) -> None:
    for live, saved in zip(buffers, state.buffers):
        live[...] = saved
    for rng, saved in zip(rngs, state.rng_states):
        rng.bit_generator.state = saved


# ----------------------------------------------------------------------
# The group
# ----------------------------------------------------------------------

class DataParallelGroup:
    """Run sharded optimisation steps for one model, over ``world`` replicas.

    ``forward_backward(xb, yb)`` executes one full data-parallel step —
    shard, per-replica forward/backward, fixed-order gradient reduction —
    and leaves the combined batch gradient installed on the live model's
    ``.grad`` slots, returning ``(batch_loss, logits)`` with logits
    concatenated in shard (= batch) order.  The caller owns the optimizer:
    clip/step/schedule happen outside, exactly as in a plain fit.

    ``backend``: ``"process"`` forks ``world - 1`` shard workers wired up
    over shared memory, ``"inproc"`` runs the reference loop, ``"auto"``
    picks ``"process"`` where ``fork`` exists (everywhere we support) and
    falls back to ``"inproc"`` otherwise.  Construction is cheap; workers
    and buffers materialise lazily on the first step, which also fixes the
    feed geometry (``batch_capacity`` bounds the batch length, the first
    step's feature/class shapes bound the rest).
    """

    def __init__(
        self,
        model,
        loss_fn,
        world: int,
        batch_capacity: int,
        backend: str = "auto",
    ) -> None:
        if world < 1:
            raise ValueError(f"world must be >= 1; got {world}")
        if batch_capacity < 1:
            raise ValueError(f"batch_capacity must be >= 1; got {batch_capacity}")
        if backend not in ("auto", "process", "inproc"):
            raise ValueError(f"unknown ddp backend {backend!r}")
        if backend == "auto":
            backend = (
                "process"
                if world > 1 and "fork" in multiprocessing.get_all_start_methods()
                else "inproc"
            )
        self.model = model
        self.loss_fn = loss_fn
        self.world = world
        self.batch_capacity = batch_capacity
        self.backend = backend
        self.steps = 0
        self._started = False
        self._params = model.parameters()
        self._layout = _param_layout(self._params)
        self._nparams = self._layout[-1][0] + self._layout[-1][1] if self._layout else 0
        self._buffers = _live_buffers(model)
        self._rngs = _dropout_rngs(model)
        # inproc backend state
        self._replicas: "list[_ReplicaState | None]" = []
        self._flat_bufs: "list[np.ndarray]" = []
        # process backend state
        self._shm: "shared_memory.SharedMemory | None" = None
        self._conns: list = []
        self._procs: list = []
        self._views: list = []
        self._param_view: "np.ndarray | None" = None
        self._combined: "np.ndarray | None" = None
        self._grad_views: "list[np.ndarray]" = []
        self._feat: "tuple | None" = None
        self._classes = 0
        self._cap_shard = 0

    # -- lifecycle -----------------------------------------------------

    def _start(self, xb: np.ndarray, yb: np.ndarray) -> None:
        self._feat = tuple(xb.shape[1:])
        self._classes = int(yb.shape[1])
        self._cap_shard = math.ceil(self.batch_capacity / self.world)
        self._combined = np.empty(self._nparams, dtype=np.float32)
        self._grad_views = [
            self._combined[offset : offset + size].reshape(shape)
            for offset, size, shape in self._layout
        ]
        self._flat_bufs = [
            np.empty(self._nparams, dtype=np.float32) for _ in range(self.world)
        ]
        if self.backend == "inproc":
            # Every replica starts from the live model's pre-fit state.
            self._replicas = [
                _capture_state(self._buffers, self._rngs) for _ in range(self.world)
            ]
        else:
            self._start_processes()
        self._started = True

    def _shm_layout(self):
        """Byte offsets into the one shared block, per worker rank (1-based)."""
        feat_size = int(np.prod(self._feat, dtype=np.int64)) if self._feat else 1
        x_bytes = self._cap_shard * feat_size * 4
        y_bytes = self._cap_shard * self._classes * 4
        grads_bytes = self._nparams * 4
        per_worker = grads_bytes + x_bytes + y_bytes + y_bytes + 8
        param_bytes = self._nparams * 4
        return feat_size, x_bytes, y_bytes, grads_bytes, per_worker, param_bytes

    def _worker_views(self, buf, rank: int):
        """(grads, x_flat, y_flat, logits_flat, loss) views for worker ``rank``."""
        feat_size, x_bytes, y_bytes, grads_bytes, per_worker, param_bytes = (
            self._shm_layout()
        )
        base = param_bytes + (rank - 1) * per_worker
        grads = np.ndarray(self._nparams, np.float32, buffer=buf, offset=base)
        x = np.ndarray(
            self._cap_shard * feat_size, np.float32, buffer=buf,
            offset=base + grads_bytes,
        )
        y = np.ndarray(
            self._cap_shard * self._classes, np.float32, buffer=buf,
            offset=base + grads_bytes + x_bytes,
        )
        logits = np.ndarray(
            self._cap_shard * self._classes, np.float32, buffer=buf,
            offset=base + grads_bytes + x_bytes + y_bytes,
        )
        loss = np.ndarray(
            1, np.float64, buffer=buf,
            offset=base + grads_bytes + x_bytes + y_bytes + y_bytes,
        )
        return grads, x, y, logits, loss

    def _start_processes(self) -> None:
        _, _, _, _, per_worker, param_bytes = self._shm_layout()
        nbytes = max(1, param_bytes + (self.world - 1) * per_worker)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._param_view = np.ndarray(
            self._nparams, np.float32, buffer=self._shm.buf
        )
        ctx = multiprocessing.get_context("fork")
        for rank in range(1, self.world):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(self, rank, child_conn),
                daemon=True,
                name=f"repro-ddp-{rank}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
            self._views.append(self._worker_views(self._shm.buf, rank))

    def close(self) -> None:
        """Stop workers and release the shared block (idempotent)."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck worker safety net
                proc.terminate()
                proc.join(timeout=5)
        self._conns = []
        self._procs = []
        self._views = []
        self._param_view = None
        self._grad_views = []
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self._shm = None

    def __enter__(self) -> "DataParallelGroup":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the step ------------------------------------------------------

    def forward_backward(self, xb: np.ndarray, yb: np.ndarray):
        """One sharded step; returns ``(batch_loss, logits)``.

        On return the live model's ``.grad`` slots hold the combined batch
        gradient (views into one flat buffer, rewritten next step).
        """
        xb = np.ascontiguousarray(xb, dtype=np.float32)
        yb = np.ascontiguousarray(yb, dtype=np.float32)
        if not self._started:
            self._start(xb, yb)
        if len(xb) > self.batch_capacity:
            raise ValueError(
                f"batch of {len(xb)} exceeds ddp capacity {self.batch_capacity}"
            )
        if tuple(xb.shape[1:]) != self._feat or yb.shape[1] != self._classes:
            raise ValueError(
                f"feed shape changed mid-fit: got {xb.shape[1:]}/{yb.shape[1]}, "
                f"group started with {self._feat}/{self._classes}"
            )
        slices = shard_slices(len(xb), self.world)
        active = [(r, sl) for r, sl in enumerate(slices) if sl.stop > sl.start]
        if self.backend == "process":
            result = self._step_process(xb, yb, active)
        else:
            result = self._step_inproc(xb, yb, active)
        self.steps += 1
        return result

    def _finish(self, flats, losses, lens, logits_parts):
        reduce_gradients(flats, lens, out=self._combined)
        for p, view in zip(self._params, self._grad_views):
            p.grad = view
        batch_loss = combine_shard_losses(losses, lens)
        logits = (
            logits_parts[0]
            if len(logits_parts) == 1
            else np.concatenate(logits_parts, axis=0)
        )
        return batch_loss, logits

    def _step_inproc(self, xb, yb, active):
        flats, losses, lens, logits_parts = [], [], [], []
        live_zero: "_ReplicaState | None" = None
        for r, sl in active:
            if r > 0:
                if live_zero is None:
                    live_zero = _capture_state(self._buffers, self._rngs)
                _restore_state(self._buffers, self._rngs, self._replicas[r])
            loss_value, logits = _shard_step(
                self.model, self.loss_fn, self._params, self._layout,
                xb[sl], yb[sl], self._flat_bufs[r],
            )
            if r > 0:
                self._replicas[r] = _capture_state(self._buffers, self._rngs)
            flats.append(self._flat_bufs[r])
            losses.append(loss_value)
            lens.append(sl.stop - sl.start)
            logits_parts.append(logits)
        if live_zero is not None:
            _restore_state(self._buffers, self._rngs, live_zero)
        return self._finish(flats, losses, lens, logits_parts)

    def _step_process(self, xb, yb, active):
        feat_size = int(np.prod(self._feat, dtype=np.int64)) if self._feat else 1
        # Broadcast current parameters, then dispatch worker shards before
        # computing our own, so replicas run concurrently with rank 0.
        for p, (offset, size, _) in zip(self._params, self._layout):
            self._param_view[offset : offset + size] = p.data.ravel()
        for r, sl in active[1:]:
            grads, x, y, logits_v, loss_v = self._views[r - 1]
            n_s = sl.stop - sl.start
            x[: n_s * feat_size] = xb[sl].ravel()
            y[: n_s * self._classes] = yb[sl].ravel()
            self._conns[r - 1].send(("step", n_s))
        _, sl0 = active[0]
        loss0, logits0 = _shard_step(
            self.model, self.loss_fn, self._params, self._layout,
            xb[sl0], yb[sl0], self._flat_bufs[0],
        )
        flats = [self._flat_bufs[0]]
        losses = [loss0]
        lens = [sl0.stop - sl0.start]
        logits_parts = [logits0]
        for r, sl in active[1:]:
            reply = self._conns[r - 1].recv()
            if reply[0] != "ok":
                raise RuntimeError(f"ddp worker {r} failed: {reply[1]}")
            grads, x, y, logits_v, loss_v = self._views[r - 1]
            n_s = sl.stop - sl.start
            flats.append(grads)
            losses.append(float(loss_v[0]))
            lens.append(n_s)
            logits_parts.append(
                logits_v[: n_s * self._classes]
                .reshape(n_s, self._classes)
                .copy()
            )
        return self._finish(flats, losses, lens, logits_parts)


def _worker_main(group: DataParallelGroup, rank: int, conn) -> None:
    """Forked shard worker: loop over ``("step", n)`` commands until stopped.

    Runs the identical :func:`_shard_step` on the forked model copy; only
    parameters are re-synced (from the shared block) each step — running
    statistics and rng streams stay replica-local by construction.
    """
    shm = shared_memory.SharedMemory(name=group._shm.name)
    try:
        model, loss_fn = group.model, group.loss_fn
        params, layout = group._params, group._layout
        feat = group._feat
        feat_size = int(np.prod(feat, dtype=np.int64)) if feat else 1
        classes = group._classes
        param_view = np.ndarray(group._nparams, np.float32, buffer=shm.buf)
        grads, x, y, logits_v, loss_v = group._worker_views(shm.buf, rank)
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg[0] == "stop":
                break
            n_s = msg[1]
            try:
                for p, (offset, size, shape) in zip(params, layout):
                    p.data[...] = param_view[offset : offset + size].reshape(shape)
                xb = x[: n_s * feat_size].reshape((n_s,) + feat)
                yb = y[: n_s * classes].reshape(n_s, classes)
                loss_value, logits = _shard_step(
                    model, loss_fn, params, layout, xb, yb, grads
                )
                logits_v[: n_s * classes] = logits.ravel()
                loss_v[0] = loss_value
                conn.send(("ok",))
            except BaseException as exc:  # ship the failure, don't hang rank 0
                try:
                    conn.send(("err", f"{type(exc).__name__}: {exc}"))
                except (BrokenPipeError, OSError):
                    break
    finally:
        shm.close()
        conn.close()
