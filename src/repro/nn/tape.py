"""Recording tape for the record → plan → execute training pipeline.

A :class:`Tape` passively observes one training step: every registry op that
runs while a tape is active appends a :class:`TapeEntry` (op, input tensors,
output tensor, kwargs), and the first ``backward()`` that runs hands the tape
its topologically-sorted node list.  Recording changes nothing about the step
itself — ops still execute eagerly and the recorded step's results are used
normally — so the record step is just a regular step that happens to leave a
trace behind.

The captured topo order matters: gradient accumulation (``+=`` chains into
shared tensors) is order-sensitive in float32, and eager backward runs vjps
in reverse topological order as discovered by ``Tensor.backward``'s DFS.
Replaying that exact order is what keeps a compiled step bitwise-identical to
the eager one (see :mod:`repro.nn.compile`).
"""

from __future__ import annotations

import threading

__all__ = ["Tape", "TapeEntry", "tape_scope", "active_tape"]


class TapeEntry:
    """One recorded op invocation: ``out = op(*inputs, **kwargs)``."""

    __slots__ = ("op", "inputs", "out", "kwargs")

    def __init__(self, op, inputs, out, kwargs) -> None:
        self.op = op
        self.inputs = inputs
        self.out = out
        self.kwargs = kwargs

    def __repr__(self) -> str:
        return f"TapeEntry({self.op.name}, n_inputs={len(self.inputs)})"


class Tape:
    """An append-only record of one step's op calls plus its backward order.

    Holds strong references to every tensor it saw, which keeps ``id()``-based
    bookkeeping in the planner unambiguous for the tape's lifetime.
    """

    def __init__(self) -> None:
        self.entries: list[TapeEntry] = []
        self.topo: list | None = None
        self.root = None

    def record(self, op, inputs, out, kwargs) -> None:
        self.entries.append(TapeEntry(op, inputs, out, kwargs))

    def set_topo(self, topo: list, root) -> None:
        """Capture the backward topological order (first backward call wins)."""
        if self.topo is None:
            self.topo = list(topo)
            self.root = root

    def __len__(self) -> int:
        return len(self.entries)


# Like grad mode, the active tape is per-thread: a serving worker running
# inference must never append entries to a tape the training thread opened.
TAPE_STATE = threading.local()


def active_tape() -> Tape | None:
    """The tape currently recording on this thread, or ``None``."""
    return getattr(TAPE_STATE, "tape", None)


class tape_scope:
    """Context manager that records all registry ops run inside it.

    Scopes nest by shadowing: the inner tape records until it exits, then the
    outer tape resumes.
    """

    def __init__(self, tape: Tape) -> None:
        self.tape = tape

    def __enter__(self) -> Tape:
        self._previous = getattr(TAPE_STATE, "tape", None)
        TAPE_STATE.tape = self.tape
        return self.tape

    def __exit__(self, *exc_info: object) -> None:
        TAPE_STATE.tape = self._previous
