"""``repro.nn`` — a from-scratch NumPy deep-learning framework.

This package is the substrate substitution for the paper's TensorFlow stack
(see DESIGN.md §1): reverse-mode autodiff, layers, losses (including the
noise-robust ones the paper studies), optimisers, and a training loop.
"""

from .allreduce import (
    DataParallelGroup,
    combine_shard_losses,
    get_ddp,
    reduce_gradients,
    set_ddp,
    shard_slices,
    use_ddp,
)
from .compile import CompiledStep, CompileError, compile_tape
from .functional import (
    KERNEL_MODES,
    avg_pool2d,
    conv2d,
    depthwise_conv2d,
    global_avg_pool2d,
    kernel_mode,
    log_softmax,
    max_pool2d,
    row_stable_enabled,
    row_stable_inference,
    set_kernel_mode,
    softmax,
    softmax_cross_entropy,
    softmax_np,
    use_kernel_mode,
)
from .layers import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    Identity,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    ZeroPad2D,
)
from .losses import (
    ActivePassiveLoss,
    CrossEntropy,
    DistillationLoss,
    FocalLoss,
    GeneralizedCrossEntropy,
    LabelRelaxationLoss,
    Loss,
    MeanAbsoluteError,
    NormalizedCrossEntropy,
    NormalizedFocalLoss,
    ReverseCrossEntropy,
    SoftTargetCrossEntropy,
    get_loss,
)
from .module import Module, Parameter
from .ops import OP_REGISTRY, OpCtx, OpDef, register_op
from .optim import (
    SGD,
    Adam,
    AdamW,
    CosineAnnealingLR,
    ExponentialLR,
    LRScheduler,
    Optimizer,
    RMSProp,
    StepLR,
    get_optimizer,
)
from .serialization import StateFileError, load_into, load_state, save_model, save_state
from .tape import Tape, TapeEntry, active_tape, tape_scope
from .tensor import Tensor, is_grad_enabled, no_grad
from .workspace import Workspace, get_workspace
from .trainer import (
    DivergenceError,
    EarlyStopping,
    EpochRecord,
    Trainer,
    TrainHistory,
    evaluate_accuracy,
    predict_labels,
    predict_logits,
    predict_proba,
)

__all__ = [
    # tensor
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    # module
    "Module",
    "Parameter",
    # layers
    "Dense",
    "Conv2D",
    "DepthwiseConv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm2D",
    "Dropout",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "ZeroPad2D",
    "Identity",
    "Sequential",
    # functional
    "softmax",
    "log_softmax",
    "softmax_np",
    "softmax_cross_entropy",
    "conv2d",
    "depthwise_conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "kernel_mode",
    "set_kernel_mode",
    "use_kernel_mode",
    "KERNEL_MODES",
    "row_stable_inference",
    "row_stable_enabled",
    # op registry / tape / compiled step
    "OpCtx",
    "OpDef",
    "OP_REGISTRY",
    "register_op",
    "Tape",
    "TapeEntry",
    "active_tape",
    "tape_scope",
    "CompiledStep",
    "CompileError",
    "compile_tape",
    # workspace
    "Workspace",
    "get_workspace",
    # data-parallel allreduce
    "DataParallelGroup",
    "get_ddp",
    "set_ddp",
    "use_ddp",
    "shard_slices",
    "reduce_gradients",
    "combine_shard_losses",
    # losses
    "Loss",
    "CrossEntropy",
    "SoftTargetCrossEntropy",
    "NormalizedCrossEntropy",
    "ReverseCrossEntropy",
    "ActivePassiveLoss",
    "MeanAbsoluteError",
    "GeneralizedCrossEntropy",
    "FocalLoss",
    "NormalizedFocalLoss",
    "LabelRelaxationLoss",
    "DistillationLoss",
    "get_loss",
    # optim
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "RMSProp",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "ExponentialLR",
    "get_optimizer",
    # trainer
    "Trainer",
    "TrainHistory",
    "EpochRecord",
    "EarlyStopping",
    "DivergenceError",
    "predict_logits",
    "predict_proba",
    "predict_labels",
    "evaluate_accuracy",
    # serialization
    "StateFileError",
    "save_state",
    "load_state",
    "save_model",
    "load_into",
]
