"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the foundation of the :mod:`repro.nn` substrate: a tape-based
``Tensor`` that records the operations applied to it and can replay them
backwards to accumulate gradients.  It deliberately mirrors the define-by-run
semantics of mainstream frameworks (every forward op appends a node holding a
backward closure), because the paper's five mitigation techniques are all
expressed as modifications of a standard gradient-descent training loop.

Only the operator set needed by the reproduction is implemented, but each op
handles full NumPy broadcasting so the layer implementations stay simple.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Sequence

import numpy as np

from .ops import OpCtx, OpDef, register_op
from .tape import TAPE_STATE

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "run_op"]

# Tape recording is a *per-thread* property: the serving engine
# (:mod:`repro.serve`) runs inference under ``no_grad`` on worker threads
# while the owning process may train on the main thread, and a shared flag
# would let one thread's inference silently disable the other's tape.
_GRAD_STATE = threading.local()


class no_grad:
    """Context manager that disables gradient tape recording.

    Used by evaluation loops and by the fitted-model prediction paths so that
    inference does not pay the cost of building a backward graph.  The flag is
    thread-local, so concurrent inference threads never affect training on
    other threads.
    """

    def __enter__(self) -> "no_grad":
        self._previous = getattr(_GRAD_STATE, "enabled", True)
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        _GRAD_STATE.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape (per thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    When a forward op broadcast an operand from ``shape`` up to ``grad.shape``,
    the gradient w.r.t. that operand is the sum of ``grad`` over every axis the
    broadcast expanded.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    squeeze_axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if squeeze_axes:
        grad = grad.sum(axis=squeeze_axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: "Tensor | np.ndarray | float | int | Sequence") -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float32)


class Tensor:
    """A NumPy array with an attached gradient tape.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float32`` unless already a
        ``float32``/``float64`` NumPy array (``float64`` arrays are preserved
        for gradient checking — everything else, including Python scalars and
        lists, becomes ``float32`` so constants cannot promote a computation
        to double precision).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "_op")

    def __init__(
        self,
        data: "np.ndarray | float | int | Sequence",
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward_fn: Callable[[np.ndarray], None] | None = None,
        _op: str = "",
    ) -> None:
        if isinstance(data, Tensor):  # defensive: wrapping a Tensor is a bug upstream
            raise TypeError("cannot wrap a Tensor inside a Tensor")
        if isinstance(data, np.ndarray):
            # Respect an explicit float64 array (gradient checking relies on
            # it); convert every other dtype to the framework's float32.
            arr = data if data.dtype in (np.float32, np.float64) else data.astype(np.float32)
        else:
            # Python scalars and sequences default to float64 under
            # ``np.asarray``; pin them to float32 so wrapping a constant can
            # never promote a whole downstream computation to float64.
            arr = np.asarray(data, dtype=np.float32)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward_fn = _backward_fn
        self._op = _op

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag}, op={self._op or 'leaf'})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar payload; raises if the tensor is not 0-d/1-element."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self.data.item()

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing this tensor's data, off the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Tape machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward_fn: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        """Create a non-leaf tensor, recording on the tape if enabled."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(
            data,
            requires_grad=True,
            _parents=parents,
            _backward_fn=backward_fn,
            _op=op,
        )

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ones, which for the usual scalar loss
            is the conventional ``dL/dL = 1``.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)

        # Topological sort of the tape reachable from this tensor.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        # A recording tape needs the exact DFS order: float32 gradient
        # accumulation is order-sensitive, so a compiled replay must run vjps
        # in precisely this sequence to stay bitwise-equal (see nn.compile).
        tape = getattr(TAPE_STATE, "tape", None)
        if tape is not None:
            tape.set_topo(topo, self)

        self._accumulate(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic ops
    # ------------------------------------------------------------------
    def __add__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        return run_op(_ADD, (self, other_t), _NO_KWARGS)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward_fn, "neg")

    def __sub__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data - other_t.data

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(-grad, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward_fn, "sub")

    def __rsub__(self, other: "float | np.ndarray") -> "Tensor":
        return Tensor(_as_array(other)) - self

    def __mul__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        return run_op(_MUL, (self, other_t), _NO_KWARGS)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data / other_t.data

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(
                    _unbroadcast(-grad * self.data / (other_t.data**2), other_t.shape)
                )

        return Tensor._make(out_data, (self, other_t), backward_fn, "div")

    def __rtruediv__(self, other: "float | np.ndarray") -> "Tensor":
        return Tensor(_as_array(other)) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** only supports scalar exponents")
        out_data = self.data**exponent

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward_fn, "pow")

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        return run_op(_MATMUL, (self, other_t), _NO_KWARGS)

    # ------------------------------------------------------------------
    # Elementwise math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        return run_op(_EXP, (self,), _NO_KWARGS)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward_fn, "log")

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward_fn, "abs")

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient flows only through the unclipped region."""
        out_data = np.clip(self.data, low, high)

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                mask = (self.data >= low) & (self.data <= high)
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward_fn, "clip")

    def relu(self) -> "Tensor":
        return run_op(_RELU, (self,), _NO_KWARGS)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope).astype(self.data.dtype)
        out_data = self.data * scale

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * scale)

        return Tensor._make(out_data, (self,), backward_fn, "leaky_relu")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward_fn, "sigmoid")

    def tanh(self) -> "Tensor":
        return run_op(_TANH, (self,), _NO_KWARGS)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        return run_op(_SUM, (self,), {"axis": axis, "keepdims": keepdims})

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward_fn(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out, axis)
            mask = (self.data == out).astype(self.data.dtype)
            # Split gradient equally among ties to keep the op well-defined.
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(g * mask / denom)

        return Tensor._make(out_data, (self,), backward_fn, "max")

    def min(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Minimum reduction (gradient split equally among ties)."""
        return -((-self).max(axis=axis, keepdims=keepdims))

    def var(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        mean = self.mean(axis=axis, keepdims=True)
        squared = (self - mean) ** 2
        return squared.mean(axis=axis, keepdims=keepdims)

    def std(
        self,
        axis: int | tuple[int, ...] | None = None,
        keepdims: bool = False,
        eps: float = 1e-12,
    ) -> "Tensor":
        """Population standard deviation; ``eps`` keeps the sqrt differentiable
        at zero variance."""
        return (self.var(axis=axis, keepdims=keepdims) + eps) ** 0.5

    @staticmethod
    def stack(tensors: "Iterable[Tensor]", axis: int = 0) -> "Tensor":
        """Stack tensors along a new axis with gradient routing."""
        tensors = tuple(tensors)
        if not tensors:
            raise ValueError("stack needs at least one tensor")
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward_fn(grad: np.ndarray) -> None:
            slices = np.moveaxis(grad, axis, 0)
            for tensor, piece in zip(tensors, slices):
                if tensor.requires_grad:
                    tensor._accumulate(piece)

        return Tensor._make(out_data, tensors, backward_fn, "stack")

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return run_op(_RESHAPE, (self,), {"shape": shape})

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = tuple(axes) if axes else tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_t)
        inverse = tuple(np.argsort(axes_t))

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward_fn, "transpose")

    def __getitem__(self, index: object) -> "Tensor":
        out_data = self.data[index]

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward_fn, "getitem")

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the two trailing spatial axes of an NCHW tensor."""
        if padding == 0:
            return self
        pad_width = ((0, 0), (0, 0), (padding, padding), (padding, padding))
        out_data = np.pad(self.data, pad_width)

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad[:, :, padding:-padding, padding:-padding])

        return Tensor._make(out_data, (self,), backward_fn, "pad2d")

    @staticmethod
    def concatenate(tensors: "Iterable[Tensor]", axis: int = 0) -> "Tensor":
        """Concatenate tensors along ``axis`` with gradient routing."""
        tensors = tuple(tensors)
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward_fn(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer: list[slice] = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        return Tensor._make(out_data, tensors, backward_fn, "concat")


# ----------------------------------------------------------------------
# Registry-op dispatch
# ----------------------------------------------------------------------
_NO_KWARGS: dict = {}


def run_op(op: OpDef, inputs: tuple["Tensor", ...], kwargs: dict) -> "Tensor":
    """Execute a registry op eagerly, recording it on the active tape.

    The eager twin of a compiled executor's inner loop: run ``apply``, and if
    any input is on the tape wrap ``vjp`` into a classic ``backward_fn`` whose
    accumulation callback is ``Tensor._accumulate`` — the identical ``apply``/
    ``vjp`` bodies later replayed by :class:`repro.nn.compile.CompiledStep`.
    """
    ctx = OpCtx()
    out_data = op.apply(ctx, tuple(t.data for t in inputs), kwargs)
    if not (is_grad_enabled() and any(t.requires_grad for t in inputs)):
        if op.discard is not None:
            op.discard(ctx)
        out = Tensor(out_data)
        if is_grad_enabled():
            # Grad-free ops still go on a recording tape: their outputs feed
            # later entries as *computed* values, and the planner must re-run
            # them every step rather than freeze them as constants.
            tape = getattr(TAPE_STATE, "tape", None)
            if tape is not None:
                tape.record(op, inputs, out, kwargs)
        return out
    needs = tuple(t.requires_grad for t in inputs)

    def backward_fn(grad: np.ndarray) -> None:
        op.vjp(ctx, grad, needs, lambda i, g: inputs[i]._accumulate(g))

    out = Tensor(
        out_data,
        requires_grad=True,
        _parents=inputs,
        _backward_fn=backward_fn,
        _op=op.name,
    )
    tape = getattr(TAPE_STATE, "tape", None)
    if tape is not None:
        tape.record(op, inputs, out, kwargs)
    return out


# ----------------------------------------------------------------------
# Core op definitions
# ----------------------------------------------------------------------
# Each apply keeps the original closure implementation verbatim on its
# eager branch (``ctx.bufs is None``); the armed branch differs only by
# computing into a persistent ``out=`` buffer — same ufunc, same values.


def _add_apply(ctx: OpCtx, inputs, kwargs) -> np.ndarray:
    a, b = inputs
    ctx.saved = (a.shape, b.shape)
    if ctx.bufs is None:
        return a + b
    out = ctx.buffer("out", np.broadcast_shapes(a.shape, b.shape), np.result_type(a, b))
    return np.add(a, b, out=out)


def _add_vjp(ctx: OpCtx, grad, needs, acc) -> None:
    a_shape, b_shape = ctx.saved
    if needs[0]:
        acc(0, _unbroadcast(grad, a_shape))
    if needs[1]:
        acc(1, _unbroadcast(grad, b_shape))


def _mul_apply(ctx: OpCtx, inputs, kwargs) -> np.ndarray:
    a, b = inputs
    ctx.saved = (a, b)
    if ctx.bufs is None:
        return a * b
    out = ctx.buffer("out", np.broadcast_shapes(a.shape, b.shape), np.result_type(a, b))
    return np.multiply(a, b, out=out)


def _mul_vjp(ctx: OpCtx, grad, needs, acc) -> None:
    a, b = ctx.saved
    if ctx.bufs is None:
        if needs[0]:
            acc(0, _unbroadcast(grad * b, a.shape))
        if needs[1]:
            acc(1, _unbroadcast(grad * a, b.shape))
        return
    if needs[0]:
        ga = np.multiply(
            grad, b, out=ctx.buffer("ga", np.broadcast_shapes(grad.shape, b.shape), np.result_type(grad, b))
        )
        acc(0, _unbroadcast(ga, a.shape))
    if needs[1]:
        gb = np.multiply(
            grad, a, out=ctx.buffer("gb", np.broadcast_shapes(grad.shape, a.shape), np.result_type(grad, a))
        )
        acc(1, _unbroadcast(gb, b.shape))


def _matmul_apply(ctx: OpCtx, inputs, kwargs) -> np.ndarray:
    a, b = inputs
    ctx.saved = (a, b)
    if ctx.bufs is None or a.ndim != 2 or b.ndim != 2:
        return a @ b
    return np.matmul(a, b, out=ctx.buffer("out", (a.shape[0], b.shape[1]), np.result_type(a, b)))


def _matmul_vjp(ctx: OpCtx, grad, needs, acc) -> None:
    a, b = ctx.saved
    armed = ctx.bufs is not None and a.ndim == 2 and b.ndim == 2
    if needs[0]:
        if armed:
            ga = ctx.buffer("ga", a.shape, np.result_type(grad, b))
            acc(0, np.matmul(grad, b.swapaxes(-1, -2), out=ga))
        else:
            acc(0, grad @ b.swapaxes(-1, -2))
    if needs[1]:
        if armed:
            gb = ctx.buffer("gb", b.shape, np.result_type(a, grad))
            acc(1, np.matmul(a.swapaxes(-1, -2), grad, out=gb))
        else:
            acc(1, a.swapaxes(-1, -2) @ grad)


def _relu_apply(ctx: OpCtx, inputs, kwargs) -> np.ndarray:
    (a,) = inputs
    if ctx.bufs is None:
        mask = a > 0
        ctx.saved = mask
        return a * mask
    mask = np.greater(a, 0, out=ctx.buffer("mask", a.shape, np.bool_))
    ctx.saved = mask
    return np.multiply(a, mask, out=ctx.buffer("out", a.shape, a.dtype))


def _relu_vjp(ctx: OpCtx, grad, needs, acc) -> None:
    if not needs[0]:
        return
    if ctx.bufs is None:
        acc(0, grad * ctx.saved)
    else:
        acc(0, np.multiply(grad, ctx.saved, out=ctx.buffer("gx", grad.shape, grad.dtype)))


def _sum_apply(ctx: OpCtx, inputs, kwargs) -> np.ndarray:
    (a,) = inputs
    axis = kwargs["axis"]
    keepdims = kwargs["keepdims"]
    ctx.saved = (a.shape, axis, keepdims)
    return a.sum(axis=axis, keepdims=keepdims)


def _sum_vjp(ctx: OpCtx, grad, needs, acc) -> None:
    if not needs[0]:
        return
    in_shape, axis, keepdims = ctx.saved
    g = grad
    if axis is not None and not keepdims:
        axes = (axis,) if isinstance(axis, int) else axis
        ndim = len(in_shape)
        for ax in sorted(a % ndim for a in axes):
            g = np.expand_dims(g, ax)
    if ctx.bufs is None:
        acc(0, np.broadcast_to(g, in_shape).copy())
    else:
        gx = ctx.buffer("gx", tuple(in_shape), grad.dtype)
        np.copyto(gx, g)
        acc(0, gx)


def _exp_apply(ctx: OpCtx, inputs, kwargs) -> np.ndarray:
    (a,) = inputs
    if ctx.bufs is None:
        out = np.exp(a)
    else:
        out = np.exp(a, out=ctx.buffer("out", a.shape, a.dtype))
    ctx.saved = out
    return out


def _exp_vjp(ctx: OpCtx, grad, needs, acc) -> None:
    if not needs[0]:
        return
    out = ctx.saved
    if ctx.bufs is None:
        acc(0, grad * out)
    else:
        acc(0, np.multiply(grad, out, out=ctx.buffer("gx", grad.shape, grad.dtype)))


def _tanh_apply(ctx: OpCtx, inputs, kwargs) -> np.ndarray:
    (a,) = inputs
    if ctx.bufs is None:
        out = np.tanh(a)
    else:
        out = np.tanh(a, out=ctx.buffer("out", a.shape, a.dtype))
    ctx.saved = out
    return out


def _tanh_vjp(ctx: OpCtx, grad, needs, acc) -> None:
    if not needs[0]:
        return
    out = ctx.saved
    if ctx.bufs is None:
        acc(0, grad * (1.0 - out**2))
        return
    tmp = np.power(out, 2, out=ctx.buffer("tmp", out.shape, out.dtype))
    np.subtract(1.0, tmp, out=tmp)
    acc(0, np.multiply(grad, tmp, out=ctx.buffer("gx", grad.shape, grad.dtype)))


def _reshape_apply(ctx: OpCtx, inputs, kwargs) -> np.ndarray:
    (a,) = inputs
    ctx.saved = a.shape
    return a.reshape(kwargs["shape"])


def _reshape_vjp(ctx: OpCtx, grad, needs, acc) -> None:
    if needs[0]:
        acc(0, grad.reshape(ctx.saved))


_ADD = register_op("add", _add_apply, _add_vjp)
_MUL = register_op("mul", _mul_apply, _mul_vjp)
_MATMUL = register_op("matmul", _matmul_apply, _matmul_vjp)
_RELU = register_op("relu", _relu_apply, _relu_vjp)
_EXP = register_op("exp", _exp_apply, _exp_vjp)
_TANH = register_op("tanh", _tanh_apply, _tanh_vjp)
_SUM = register_op("sum", _sum_apply, _sum_vjp)
_RESHAPE = register_op("reshape", _reshape_apply, _reshape_vjp)
