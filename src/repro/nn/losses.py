"""Loss functions, including the noise-robust losses studied by the paper.

All losses take raw logits of shape ``(N, K)`` and targets as one-hot (or
soft) label arrays of shape ``(N, K)``, and return a scalar mean loss tensor.

The robust-loss technique (paper §III-B3) uses the Active-Passive Loss of Ma
et al. (ICML'20): ``L_APL = alpha * L_active + beta * L_passive`` with
Normalized Cross Entropy as the active term and Reverse Cross Entropy as the
passive term.  The label-relaxation loss (Lienen & Hüllermeier, AAAI'21) is
the representative label-smoothing technique (§III-B1), and the distillation
loss implements the distilled-softmax objective of Hinton et al. (§III-B4).
"""

from __future__ import annotations

import numpy as np

from .functional import log_softmax, softmax, softmax_cross_entropy
from .tensor import Tensor

__all__ = [
    "Loss",
    "CrossEntropy",
    "SoftTargetCrossEntropy",
    "NormalizedCrossEntropy",
    "ReverseCrossEntropy",
    "ActivePassiveLoss",
    "MeanAbsoluteError",
    "GeneralizedCrossEntropy",
    "FocalLoss",
    "NormalizedFocalLoss",
    "LabelRelaxationLoss",
    "DistillationLoss",
    "get_loss",
]

_EPS = 1e-12


def _validate(logits: Tensor, targets: np.ndarray) -> np.ndarray:
    targets = np.asarray(targets, dtype=np.float32)
    if logits.ndim != 2 or targets.ndim != 2:
        raise ValueError(
            f"expected (N, K) logits and targets; got {logits.shape} and {targets.shape}"
        )
    if logits.shape != targets.shape:
        raise ValueError(f"logits {logits.shape} and targets {targets.shape} differ")
    return targets


class Loss:
    """Base class: a named callable ``(logits, targets) -> scalar Tensor``."""

    name = "loss"

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class CrossEntropy(Loss):
    """Standard categorical cross entropy — the paper's baseline loss."""

    name = "cross_entropy"

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        targets = _validate(logits, targets)
        # Single fused tape node (bitwise-identical to the composed
        # log_softmax/mul/sum/mean chain — see functional.softmax_cross_entropy).
        return softmax_cross_entropy(logits, targets)


class SoftTargetCrossEntropy(CrossEntropy):
    """Cross entropy against *soft* target distributions.

    Functionally identical to :class:`CrossEntropy` (which already accepts
    soft targets); kept as a distinct name so training configs read clearly
    when classic uniform label smoothing is applied to the targets.
    """

    name = "soft_target_cross_entropy"


class NormalizedCrossEntropy(Loss):
    """NCE of Ma et al.: cross entropy normalised over all candidate labels.

    ``NCE = -log p_y / (-sum_k log p_k)`` — provably robust to symmetric label
    noise, but prone to underfitting (hence the passive partner below).
    """

    name = "normalized_cross_entropy"

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        targets = _validate(logits, targets)
        log_probs = log_softmax(logits, axis=1)
        numerator = -(log_probs * Tensor(targets)).sum(axis=1)
        denominator = -log_probs.sum(axis=1)
        return (numerator / denominator).mean()


class ReverseCrossEntropy(Loss):
    """RCE: cross entropy with prediction and target roles swapped.

    ``RCE = -sum_k p_k log t_k`` where ``log 0`` is clipped to ``log_clip``
    (``A = -4`` in Ma et al.).  For one-hot targets this reduces to
    ``-A * (1 - p_y)``, a scaled MAE, which is symmetric and noise-robust.
    """

    name = "reverse_cross_entropy"

    def __init__(self, log_clip: float = -4.0) -> None:
        self.log_clip = log_clip

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        targets = _validate(logits, targets)
        probs = softmax(logits, axis=1)
        log_targets = np.where(targets > 0, np.log(np.maximum(targets, _EPS)), self.log_clip)
        return -(probs * Tensor(log_targets.astype(np.float32))).sum(axis=1).mean()


class ActivePassiveLoss(Loss):
    """APL = alpha * active + beta * passive (paper §III-B3).

    Defaults to the NCE+RCE combination the paper evaluates, with the
    hyperparameters recommended by Ma et al.
    """

    name = "active_passive"

    def __init__(
        self,
        active: Loss | None = None,
        passive: Loss | None = None,
        alpha: float = 1.0,
        beta: float = 1.0,
    ) -> None:
        self.active = active or NormalizedCrossEntropy()
        self.passive = passive or ReverseCrossEntropy()
        self.alpha = alpha
        self.beta = beta

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return self.active(logits, targets) * self.alpha + self.passive(logits, targets) * self.beta

    def __repr__(self) -> str:
        return (
            f"ActivePassiveLoss(active={self.active.name}, passive={self.passive.name}, "
            f"alpha={self.alpha}, beta={self.beta})"
        )


class MeanAbsoluteError(Loss):
    """MAE over probability vectors — the classic symmetric robust loss."""

    name = "mean_absolute_error"

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        targets = _validate(logits, targets)
        probs = softmax(logits, axis=1)
        return (probs - Tensor(targets)).abs().sum(axis=1).mean()


class GeneralizedCrossEntropy(Loss):
    """GCE of Zhang & Sabuncu: ``(1 - p_y^q) / q``, interpolating CE and MAE."""

    name = "generalized_cross_entropy"

    def __init__(self, q: float = 0.7) -> None:
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1]; got {q}")
        self.q = q

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        targets = _validate(logits, targets)
        probs = softmax(logits, axis=1)
        p_y = (probs * Tensor(targets)).sum(axis=1).clip(_EPS, 1.0)
        return ((1.0 - p_y**self.q) * (1.0 / self.q)).mean()


class FocalLoss(Loss):
    """Focal loss: down-weights easy examples via ``(1 - p_y)^gamma``."""

    name = "focal"

    def __init__(self, gamma: float = 2.0) -> None:
        self.gamma = gamma

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        targets = _validate(logits, targets)
        log_probs = log_softmax(logits, axis=1)
        probs = softmax(logits, axis=1)
        weight = (1.0 - probs) ** self.gamma
        return -(weight * log_probs * Tensor(targets)).sum(axis=1).mean()


class NormalizedFocalLoss(Loss):
    """Normalised focal loss — an alternative active term from Ma et al."""

    name = "normalized_focal"

    def __init__(self, gamma: float = 2.0) -> None:
        self.gamma = gamma

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        targets = _validate(logits, targets)
        log_probs = log_softmax(logits, axis=1)
        probs = softmax(logits, axis=1)
        weighted = ((1.0 - probs) ** self.gamma) * log_probs
        numerator = -(weighted * Tensor(targets)).sum(axis=1)
        denominator = -weighted.sum(axis=1)
        return (numerator / denominator).mean()


class LabelRelaxationLoss(Loss):
    """Label relaxation (Lienen & Hüllermeier, AAAI'21) — paper §III-B1.

    Instead of a fixed smoothed target, the target is the *credal set* of all
    distributions assigning at least ``1 - alpha`` mass to the observed label.
    The loss is zero when the prediction already lies in the set; otherwise it
    is the KL divergence from the prediction's projection onto the set:
    the projected target keeps ``1 - alpha`` on the observed label and spreads
    ``alpha`` over the remaining classes *proportionally to the prediction*.
    """

    name = "label_relaxation"

    def __init__(self, alpha: float = 0.1) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1); got {alpha}")
        self.alpha = alpha

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        targets = _validate(logits, targets)
        probs = softmax(logits, axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            p = probs.data
            is_target = targets > 0.5
            p_target = (p * is_target).sum(axis=1)  # probability on observed label
            # Prediction-dependent projection onto the credal set.
            off_target_mass = np.maximum((p * ~is_target).sum(axis=1), _EPS)
            projected = np.where(
                is_target,
                1.0 - self.alpha,
                self.alpha * p / off_target_mass[:, None],
            ).astype(np.float32)
        # KL(projected || p); constant entropy term of `projected` omitted
        # (it does not affect gradients w.r.t. the logits).
        log_probs = log_softmax(logits, axis=1)
        kl = -(log_probs * Tensor(projected)).sum(axis=1)
        # Zero loss where the prediction is already inside the credal set.
        in_set = (p_target >= 1.0 - self.alpha).astype(np.float32)
        mask = Tensor(1.0 - in_set)
        return (kl * mask).mean()


class DistillationLoss(Loss):
    """Student objective for (self-)knowledge distillation — paper §III-B4.

    ``L = (1 - alpha) * CE(student, labels)
        + alpha * T^2 * CE(student_soft_T, teacher_soft_T)``

    where both soft terms use the distilled softmax at temperature ``T``.
    The ``T^2`` factor keeps gradient magnitudes comparable across
    temperatures (Hinton et al., 2015).  The teacher's soft targets must be
    supplied per batch via :meth:`set_teacher_probs`.
    """

    name = "distillation"

    def __init__(self, alpha: float = 0.7, temperature: float = 4.0) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1]; got {alpha}")
        if temperature <= 0:
            raise ValueError(f"temperature must be positive; got {temperature}")
        self.alpha = alpha
        self.temperature = temperature
        self._teacher_probs: np.ndarray | None = None
        self._hard = CrossEntropy()

    def set_teacher_probs(self, teacher_probs: np.ndarray) -> None:
        """Set the teacher's temperature-softened probabilities for the next batch."""
        self._teacher_probs = np.asarray(teacher_probs, dtype=np.float32)

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        targets = _validate(logits, targets)
        if self._teacher_probs is None:
            raise RuntimeError("DistillationLoss requires set_teacher_probs() before each batch")
        if self._teacher_probs.shape != tuple(logits.shape):
            raise ValueError(
                f"teacher probs shape {self._teacher_probs.shape} does not match logits {logits.shape}"
            )
        hard_loss = self._hard(logits, targets)
        # The soft term is a cross entropy against the teacher's distilled
        # softmax, so it reuses the same fused kernel at temperature T.
        soft_loss = softmax_cross_entropy(
            logits, self._teacher_probs, temperature=self.temperature
        )
        t_sq = self.temperature**2
        return hard_loss * (1.0 - self.alpha) + soft_loss * (self.alpha * t_sq)


_LOSSES = {
    "cross_entropy": CrossEntropy,
    "soft_target_cross_entropy": SoftTargetCrossEntropy,
    "normalized_cross_entropy": NormalizedCrossEntropy,
    "reverse_cross_entropy": ReverseCrossEntropy,
    "active_passive": ActivePassiveLoss,
    "mean_absolute_error": MeanAbsoluteError,
    "generalized_cross_entropy": GeneralizedCrossEntropy,
    "focal": FocalLoss,
    "normalized_focal": NormalizedFocalLoss,
    "label_relaxation": LabelRelaxationLoss,
    "distillation": DistillationLoss,
}


def get_loss(name: str, **kwargs: object) -> Loss:
    """Build a loss by registry name."""
    try:
        cls = _LOSSES[name]
    except KeyError:
        raise KeyError(f"unknown loss {name!r}; choices: {sorted(_LOSSES)}") from None
    return cls(**kwargs)  # type: ignore[arg-type]
