"""Generic mini-batch training loop and inference helpers.

Every mitigation technique in :mod:`repro.mitigation` is expressed in terms of
this trainer: label smoothing supplies a ``target_transform``, distillation a
``batch_hook`` that refreshes teacher probabilities, label correction wraps
two trainers, and ensembles run one trainer per member.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..telemetry import get_metrics, get_telemetry
from .allreduce import DataParallelGroup, get_ddp
from .compile import CompileError, compile_tape
from .functional import kernel_mode, kernel_tap, softmax_np
from .losses import Loss
from .module import Module
from .optim import LRScheduler, Optimizer
from .tape import Tape, tape_scope
from .tensor import Tensor, is_grad_enabled, no_grad
from .workspace import get_workspace

__all__ = [
    "TrainHistory",
    "EpochRecord",
    "Trainer",
    "EarlyStopping",
    "DivergenceError",
    "predict_logits",
    "predict_proba",
    "predict_labels",
    "evaluate_accuracy",
]


class DivergenceError(RuntimeError):
    """Training produced a non-finite loss (NaN/Inf).

    Carries where the loss exploded so a retry layer (see
    :mod:`repro.experiments.resilience`) can log it and re-run the cell with
    a reduced learning rate and/or a fresh seed.
    """

    def __init__(self, epoch: int, batch: int, loss: float) -> None:
        super().__init__(
            f"training diverged at epoch {epoch}, batch {batch}: loss={loss!r}"
        )
        self.epoch = epoch
        self.batch = batch
        self.loss = loss


@dataclass
class EpochRecord:
    """Metrics for one training epoch.

    ``duration_s`` covers the training loop only; validation (when run) is
    timed separately in ``val_duration_s``, so throughput is computed over
    optimisation time and telemetry emitters need not re-derive anything.
    """

    epoch: int
    train_loss: float
    train_accuracy: float
    val_loss: float | None = None
    val_accuracy: float | None = None
    learning_rate: float = 0.0
    duration_s: float = 0.0
    val_duration_s: float = 0.0
    examples: int = 0

    @property
    def throughput_examples_per_s(self) -> float:
        """Training examples processed per second this epoch (0.0 if untimed)."""
        if self.duration_s <= 0.0:
            return 0.0
        return self.examples / self.duration_s


@dataclass
class TrainHistory:
    """Sequence of per-epoch records plus total wall-clock time."""

    epochs: list[EpochRecord] = field(default_factory=list)
    total_time_s: float = 0.0
    stopped_early: bool = False

    @property
    def final_train_accuracy(self) -> float:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1].train_accuracy

    @property
    def final_val_accuracy(self) -> float | None:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1].val_accuracy

    @property
    def throughput_examples_per_s(self) -> float:
        """Aggregate training throughput across all epochs (0.0 if untimed)."""
        train_time = sum(e.duration_s for e in self.epochs)
        if train_time <= 0.0:
            return 0.0
        return sum(e.examples for e in self.epochs) / train_time

    @property
    def validation_time_s(self) -> float:
        """Total wall-clock spent in validation passes."""
        return sum(e.val_duration_s for e in self.epochs)

    def loss_curve(self) -> list[float]:
        return [e.train_loss for e in self.epochs]


class EarlyStopping:
    """Stop training when the monitored value stops improving.

    Monitors validation loss when validation data is supplied to the trainer,
    training loss otherwise.
    """

    def __init__(self, patience: int = 5, min_delta: float = 1e-4) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best = float("inf")
        self.stale_epochs = 0
        self.saw_nan = False

    def should_stop(self, value: float) -> bool:
        # A NaN monitored loss compares False against any threshold, so it
        # must be treated as an explicit non-improving epoch — otherwise a
        # diverged run silently burns through patience with no signal.
        if math.isnan(value):
            self.saw_nan = True
            self.stale_epochs += 1
            return self.stale_epochs >= self.patience
        if value < self.best - self.min_delta:
            self.best = value
            self.stale_epochs = 0
            return False
        self.stale_epochs += 1
        return self.stale_epochs >= self.patience


class _CompiledFitState:
    """Per-``fit`` bookkeeping for compiled kernel mode.

    Caches one :class:`~repro.nn.compile.CompiledStep` per feed-shape pair
    (``None`` marks a shape whose recorded step refused to compile, so the
    trainer stops re-recording it) and counts how each optimisation step was
    executed — surfaced in the ``compiled_fit`` telemetry event.
    """

    __slots__ = (
        "cache",
        "compiled_steps",
        "eager_steps",
        "tap_fallback_steps",
        "compiles",
        "compile_fallbacks",
        "tap_event_sent",
    )

    def __init__(self) -> None:
        self.cache: dict = {}
        self.compiled_steps = 0
        self.eager_steps = 0
        self.tap_fallback_steps = 0
        self.compiles = 0
        self.compile_fallbacks = 0
        self.tap_event_sent = False


class Trainer:
    """Mini-batch gradient-descent trainer.

    Parameters
    ----------
    model, loss, optimizer:
        The three ingredients of the training loop.
    epochs, batch_size:
        Loop geometry.
    rng:
        Generator used for epoch shuffling (seeded by the experiment harness).
    scheduler:
        Optional LR scheduler, stepped once per epoch.
    clip_norm:
        Optional global gradient-norm clip.
    input_transform:
        ``f(x_batch) -> x_batch`` applied to each training batch before the
        forward pass — the data-augmentation hook (see
        :mod:`repro.data.augment`).  Not applied at validation/inference.
    target_transform:
        ``f(targets) -> targets`` applied to each batch's one-hot targets —
        the hook used by classic label smoothing.
    batch_hook:
        ``f(model, x_batch, y_batch) -> None`` called before the forward pass —
        the hook used by distillation to refresh teacher soft targets.
    early_stopping:
        Optional :class:`EarlyStopping` policy.
    epoch_callback:
        ``f(record) -> None`` called after each epoch (logging, tests).
    batch_callback:
        ``f(epoch, batch, loss) -> None`` called after each optimisation
        step — the per-batch emit hook (telemetry, live loss displays).
        Unlike the always-on per-epoch telemetry span, per-batch emission
        only happens when a callback is installed, keeping the inner loop
        free of overhead by default.
    raise_on_divergence:
        When True (default) a non-finite batch loss raises
        :class:`DivergenceError` immediately instead of poisoning the rest
        of the run with NaN weights.
    """

    def __init__(
        self,
        model: Module,
        loss: Loss,
        optimizer: Optimizer,
        epochs: int = 10,
        batch_size: int = 32,
        rng: np.random.Generator | None = None,
        scheduler: LRScheduler | None = None,
        clip_norm: float | None = None,
        input_transform: Callable[[np.ndarray], np.ndarray] | None = None,
        target_transform: Callable[[np.ndarray], np.ndarray] | None = None,
        batch_hook: Callable[[Module, np.ndarray, np.ndarray], None] | None = None,
        early_stopping: EarlyStopping | None = None,
        epoch_callback: Callable[[EpochRecord], None] | None = None,
        batch_callback: Callable[[int, int, float], None] | None = None,
        raise_on_divergence: bool = True,
    ) -> None:
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.model = model
        self.loss = loss
        self.optimizer = optimizer
        self.epochs = epochs
        self.batch_size = batch_size
        self.rng = rng or np.random.default_rng()
        self.scheduler = scheduler
        self.clip_norm = clip_norm
        self.input_transform = input_transform
        self.target_transform = target_transform
        self.batch_hook = batch_hook
        self.early_stopping = early_stopping
        self.epoch_callback = epoch_callback
        self.batch_callback = batch_callback
        self.raise_on_divergence = raise_on_divergence

    def fit(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        validation: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> TrainHistory:
        """Train on ``(inputs, one-hot targets)``; returns the epoch history."""
        inputs = np.asarray(inputs, dtype=np.float32)
        targets = np.asarray(targets, dtype=np.float32)
        if len(inputs) != len(targets):
            raise ValueError(f"inputs ({len(inputs)}) and targets ({len(targets)}) differ in length")
        if targets.ndim != 2:
            raise ValueError("targets must be one-hot encoded (N, K)")

        history = TrainHistory()
        start = time.perf_counter()
        n = len(inputs)
        # Integer labels are fixed for the whole fit; computing them once and
        # indexing per batch avoids an argmax over the one-hot targets on
        # every optimisation step.
        label_idx = targets.argmax(axis=1)
        tel = get_telemetry()
        metrics = get_metrics()
        # Compiled kernel mode: record the first step per feed shape, plan a
        # static CompiledStep, replay it for every later fixed-shape step.
        compiled = _CompiledFitState() if kernel_mode() == "compiled" else None
        # Data-parallel mode: shard each batch across ddp replicas with a
        # deterministic gradient allreduce (see repro.nn.allreduce).  Shard
        # steps are eager — ddp takes precedence over compiled replay.
        group: "DataParallelGroup | None" = None
        if get_ddp() > 1:
            if self.batch_hook is not None:
                raise ValueError(
                    "batch_hook is not supported with ddp > 1: the hook "
                    "mutates per-batch state that shard replicas cannot see"
                )
            compiled = None
            group = DataParallelGroup(
                self.model, self.loss, get_ddp(),
                batch_capacity=max(1, min(self.batch_size, n)),
                # An armed hardware-fault tap is process-local state the
                # forked replicas could not share; run the reference loop.
                backend="inproc" if kernel_tap() is not None else "auto",
            )
        try:
            history = self._fit_loop(
                history, inputs, targets, validation, n, label_idx,
                tel, metrics, compiled, group,
            )
        finally:
            if group is not None:
                group.close()

        if group is not None:
            tel.event(
                "ddp_fit", world=group.world, backend=group.backend,
                steps=group.steps,
            )
        if compiled is not None:
            workspace = get_workspace()
            tel.event(
                "compiled_fit",
                compiled_steps=compiled.compiled_steps,
                eager_steps=compiled.eager_steps,
                tap_fallback_steps=compiled.tap_fallback_steps,
                compiles=compiled.compiles,
                compile_fallbacks=compiled.compile_fallbacks,
                workspace_hits=workspace.hits,
                workspace_misses=workspace.misses,
                workspace_dropped=workspace.dropped,
            )
        history.total_time_s = time.perf_counter() - start
        return history

    def _fit_loop(
        self, history, inputs, targets, validation, n, label_idx,
        tel, metrics, compiled, group,
    ) -> TrainHistory:
        for epoch in range(self.epochs):
            with tel.span("epoch", epoch=epoch) as span:
                epoch_start = time.perf_counter()
                self.model.train()
                order = self.rng.permutation(n)
                epoch_loss = 0.0
                epoch_correct = 0
                for lo in range(0, n, self.batch_size):
                    idx = order[lo : lo + self.batch_size]
                    xb, yb = inputs[idx], targets[idx]
                    if self.input_transform is not None:
                        xb = self.input_transform(xb)
                    if self.batch_hook is not None:
                        self.batch_hook(self.model, xb, yb)
                    effective_targets = self.target_transform(yb) if self.target_transform else yb
                    batch_index = lo // self.batch_size
                    if group is not None:
                        batch_loss, logits_data = self._ddp_step(
                            group, xb, effective_targets, epoch, batch_index
                        )
                    elif compiled is not None:
                        batch_loss, logits_data = self._compiled_step(
                            compiled, xb, effective_targets, epoch, batch_index, tel
                        )
                    else:
                        batch_loss, logits_t, _ = self._eager_step(
                            xb, effective_targets, epoch, batch_index
                        )
                        logits_data = logits_t.data
                    epoch_loss += batch_loss * len(idx)
                    epoch_correct += int(
                        (logits_data.argmax(axis=1) == label_idx[idx]).sum()
                    )
                    if self.batch_callback is not None:
                        self.batch_callback(epoch, batch_index, batch_loss)

                record = EpochRecord(
                    epoch=epoch,
                    train_loss=epoch_loss / n,
                    train_accuracy=epoch_correct / n,
                    learning_rate=self.optimizer.lr,
                    duration_s=time.perf_counter() - epoch_start,
                    examples=n,
                )
                if validation is not None:
                    val_start = time.perf_counter()
                    val_x, val_y = validation
                    record.val_loss, record.val_accuracy = self._evaluate(val_x, val_y)
                    record.val_duration_s = time.perf_counter() - val_start
                span.set(
                    train_loss=record.train_loss,
                    train_accuracy=record.train_accuracy,
                    val_loss=record.val_loss,
                    examples_per_s=record.throughput_examples_per_s,
                )
            history.epochs.append(record)
            if metrics.enabled:
                metrics.counter("train_epochs_total").inc()
                metrics.counter("train_steps_total").inc(-(-n // self.batch_size))
                metrics.counter("train_examples_total").inc(n)
                metrics.histogram("train_epoch_seconds").observe(record.duration_s)
            if self.epoch_callback is not None:
                self.epoch_callback(record)
            if self.scheduler is not None:
                self.scheduler.step()
            if self.early_stopping is not None:
                monitored = record.val_loss if record.val_loss is not None else record.train_loss
                if self.early_stopping.should_stop(monitored):
                    history.stopped_early = True
                    break
        return history

    def _ddp_step(
        self,
        group: DataParallelGroup,
        xb: np.ndarray,
        targets: np.ndarray,
        epoch: int,
        batch_index: int,
    ) -> tuple[float, np.ndarray]:
        """One sharded data-parallel optimisation step (see ``allreduce``).

        The group installs the combined batch gradient on the live model;
        clip/step run here so the optimizer path is byte-for-byte the plain
        trainer's.
        """
        xb = np.asarray(xb, dtype=np.float32)
        t_arr = np.asarray(targets, dtype=np.float32)
        batch_loss, logits_data = group.forward_backward(xb, t_arr)
        if self.raise_on_divergence and not math.isfinite(batch_loss):
            raise DivergenceError(epoch=epoch, batch=batch_index, loss=batch_loss)
        if self.clip_norm is not None:
            self.optimizer.clip_grad_norm(self.clip_norm)
        self.optimizer.step()
        return batch_loss, logits_data

    def _eager_step(
        self, xb: np.ndarray, targets: np.ndarray, epoch: int, batch_index: int
    ) -> tuple[float, Tensor, Tensor]:
        """One define-by-run optimisation step; returns (loss, logits, loss tensor)."""
        logits = self.model(Tensor(xb))
        loss_value = self.loss(logits, targets)
        batch_loss = float(loss_value.item())
        if self.raise_on_divergence and not math.isfinite(batch_loss):
            raise DivergenceError(epoch=epoch, batch=batch_index, loss=batch_loss)
        self.optimizer.zero_grad()
        loss_value.backward()
        if self.clip_norm is not None:
            self.optimizer.clip_grad_norm(self.clip_norm)
        self.optimizer.step()
        return batch_loss, logits, loss_value

    def _compiled_step(
        self,
        state: _CompiledFitState,
        xb: np.ndarray,
        effective_targets: np.ndarray,
        epoch: int,
        batch_index: int,
        tel,
    ) -> tuple[float, np.ndarray]:
        """One optimisation step in compiled kernel mode.

        Dispatch, in order: an armed hardware-fault tap or disabled grad mode
        forces a per-step eager downgrade (the tap mutates per-op outputs a
        static replay would not route through the layer hooks); a cached
        :class:`CompiledStep` for this feed shape is replayed; an uncached
        shape runs one eager step under a recording tape and compiles it; a
        shape whose recording refused to compile stays eager for the rest of
        the fit.  Every path produces bitwise-identical floats.
        """
        xb = np.asarray(xb, dtype=np.float32)
        t_arr = np.asarray(effective_targets, dtype=np.float32)
        if kernel_tap() is not None or not is_grad_enabled():
            state.tap_fallback_steps += 1
            if not state.tap_event_sent:
                state.tap_event_sent = True
                tel.event(
                    "tape_replay_fallback",
                    reason="kernel tap armed" if kernel_tap() is not None else "grad disabled",
                    epoch=epoch,
                    batch=batch_index,
                )
            batch_loss, logits_t, _ = self._eager_step(xb, t_arr, epoch, batch_index)
            return batch_loss, logits_t.data

        key = (xb.shape, t_arr.shape)
        if key not in state.cache:
            tape = Tape()
            with tape_scope(tape):
                batch_loss, logits_t, loss_t = self._eager_step(xb, t_arr, epoch, batch_index)
            state.eager_steps += 1
            try:
                step = compile_tape(tape, loss_t, logits_t, (xb, t_arr))
            except CompileError as exc:
                state.cache[key] = None
                state.compile_fallbacks += 1
                tel.event(
                    "tape_compile_fallback",
                    reason=str(exc),
                    feed_shape=list(xb.shape),
                    epoch=epoch,
                    batch=batch_index,
                )
            else:
                state.cache[key] = step
                state.compiles += 1
                tel.event(
                    "tape_compile",
                    entries=step.n_entries,
                    backward_steps=step.n_backward,
                    params=step.n_params,
                    feed_shape=list(xb.shape),
                    epoch=epoch,
                    batch=batch_index,
                )
            return batch_loss, logits_t.data

        step = state.cache[key]
        if step is None:
            state.eager_steps += 1
            batch_loss, logits_t, _ = self._eager_step(xb, t_arr, epoch, batch_index)
            return batch_loss, logits_t.data

        loss_arr, logits_arr = step.forward((xb, t_arr))
        batch_loss = float(loss_arr)
        if self.raise_on_divergence and not math.isfinite(batch_loss):
            raise DivergenceError(epoch=epoch, batch=batch_index, loss=batch_loss)
        self.optimizer.zero_grad()
        step.backward()
        if self.clip_norm is not None:
            self.optimizer.clip_grad_norm(self.clip_norm)
        self.optimizer.step()
        state.compiled_steps += 1
        step.steps_replayed += 1
        return batch_loss, logits_arr

    def _evaluate(self, inputs: np.ndarray, targets: np.ndarray) -> tuple[float, float]:
        self.model.eval()
        logits = predict_logits(self.model, inputs, batch_size=self.batch_size)
        loss_value = float(self.loss(Tensor(logits), targets).item())
        accuracy = float((logits.argmax(axis=1) == targets.argmax(axis=1)).mean())
        self.model.train()
        return loss_value, accuracy


def predict_logits(model: Module, inputs: np.ndarray, batch_size: int = 128) -> np.ndarray:
    """Run the model in eval mode without the gradient tape; returns logits.

    The output array is allocated once (sized from the first batch) and
    filled in place, instead of appending per-batch chunks and paying a full
    extra copy in ``np.concatenate``.
    """
    model.eval()
    inputs = np.asarray(inputs, dtype=np.float32)
    n = len(inputs)
    if n == 0:
        raise ValueError("predict_logits needs at least one input")
    out: np.ndarray | None = None
    with no_grad():
        for lo in range(0, n, batch_size):
            chunk = model(Tensor(inputs[lo : lo + batch_size])).data
            if out is None:
                out = np.empty((n,) + chunk.shape[1:], dtype=chunk.dtype)
            out[lo : lo + len(chunk)] = chunk
    assert out is not None
    return out


def predict_proba(model: Module, inputs: np.ndarray, batch_size: int = 128) -> np.ndarray:
    """Softmax probabilities for each input.

    Shares the stable-softmax helper with :func:`repro.nn.functional.softmax`
    so the inference path cannot drift from the training-time softmax.
    """
    return softmax_np(predict_logits(model, inputs, batch_size=batch_size), axis=1)


def predict_labels(model: Module, inputs: np.ndarray, batch_size: int = 128) -> np.ndarray:
    """Hard label predictions."""
    return predict_logits(model, inputs, batch_size=batch_size).argmax(axis=1)


def evaluate_accuracy(
    model: Module, inputs: np.ndarray, labels: Sequence[int] | np.ndarray, batch_size: int = 128
) -> float:
    """Top-1 accuracy against integer labels."""
    labels = np.asarray(labels)
    if labels.ndim == 2:  # accept one-hot as a convenience
        labels = labels.argmax(axis=1)
    predictions = predict_labels(model, inputs, batch_size=batch_size)
    return float((predictions == labels).mean())
