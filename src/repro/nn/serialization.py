"""Model persistence: save/load state dicts as ``.npz`` archives."""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_state", "load_state", "save_model", "load_into"]

_FORMAT_KEY = "__repro_format__"
_FORMAT_VERSION = 1.0


def save_state(state: dict[str, np.ndarray], path: str | os.PathLike) -> None:
    """Write a state dict to ``path`` (a ``.npz`` archive)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **{_FORMAT_KEY: np.float32(_FORMAT_VERSION)}, **state)


def load_state(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Read a state dict written by :func:`save_state`."""
    with np.load(Path(path)) as archive:
        if _FORMAT_KEY not in archive:
            raise ValueError(f"{path} is not a repro model archive")
        return {k: archive[k] for k in archive.files if k != _FORMAT_KEY}


def save_model(model: Module, path: str | os.PathLike) -> None:
    """Persist a module's parameters and buffers."""
    save_state(model.state_dict(), path)


def load_into(model: Module, path: str | os.PathLike) -> Module:
    """Load an archive into an already-constructed module; returns the module."""
    model.load_state_dict(load_state(path))
    return model
