"""Model persistence: save/load state dicts as ``.npz`` archives.

The serving registry (:mod:`repro.serve.registry`) loads trained models
through these paths, so failure modes are typed: any unreadable, truncated,
or non-repro archive raises :class:`StateFileError` (a ``ValueError``) with
the offending path in the message, never a raw ``zipfile``/``pickle`` error.
"""

from __future__ import annotations

import os
import zipfile
from pathlib import Path

import numpy as np

from .module import Module

__all__ = [
    "StateFileError",
    "save_state",
    "load_state",
    "save_model",
    "load_into",
]

_FORMAT_KEY = "__repro_format__"
_FORMAT_VERSION = 1.0


class StateFileError(ValueError):
    """A model state file is missing, truncated, corrupt, or foreign."""


def save_state(state: dict[str, np.ndarray], path: str | os.PathLike) -> None:
    """Write a state dict to ``path`` (a ``.npz`` archive)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **{_FORMAT_KEY: np.float32(_FORMAT_VERSION)}, **state)


def load_state(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Read a state dict written by :func:`save_state`.

    Raises :class:`StateFileError` when the file does not exist, is not a
    readable ``.npz`` archive (truncated downloads, partial writes), or was
    not written by :func:`save_state`.
    """
    path = Path(path)
    if not path.exists():
        raise StateFileError(f"no such model state file: {path}")
    try:
        with np.load(path) as archive:
            if _FORMAT_KEY not in archive:
                raise StateFileError(f"{path} is not a repro model archive")
            try:
                return {k: archive[k] for k in archive.files if k != _FORMAT_KEY}
            except (zipfile.BadZipFile, ValueError, OSError, EOFError) as exc:
                raise StateFileError(
                    f"corrupt model state file {path}: {exc}"
                ) from exc
    except StateFileError:
        raise
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as exc:
        # np.load raises BadZipFile for truncated archives, ValueError for
        # files that are not npz/npy at all, OSError/EOFError for torn reads.
        raise StateFileError(f"corrupt or unreadable model state file {path}: {exc}") from exc


def save_model(model: Module, path: str | os.PathLike) -> None:
    """Persist a module's parameters and buffers."""
    save_state(model.state_dict(), path)


def load_into(model: Module, path: str | os.PathLike) -> Module:
    """Load an archive into an already-constructed module; returns the module.

    Key or shape mismatches (a state file saved from a different architecture
    or width) surface as ``ValueError`` from
    :meth:`~repro.nn.module.Module.load_state_dict`.
    """
    model.load_state_dict(load_state(path))
    return model
