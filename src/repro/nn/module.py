"""Base class for neural-network modules.

``Module`` provides the parameter registry, train/eval mode propagation, and
state-dict (de)serialisation that the seven paper architectures and the five
mitigation techniques are built on.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor
from .workspace import get_workspace

__all__ = ["Module", "Parameter"]


class Parameter(Tensor):
    """A trainable tensor — identical to :class:`Tensor` but always on the tape."""

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Composable network component with automatic parameter discovery.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; :meth:`parameters` and :meth:`state_dict` discover them by
    introspection, in deterministic attribute order.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs in attribute order."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for value in vars(self).items():
            pass  # placeholder to keep attribute order explicit below
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Switch to training mode (enables dropout, batch-norm batch stats).

        Mode transitions also flush the kernel scratch-buffer arena (see
        :mod:`repro.nn.workspace`): batch geometry usually changes across
        train/eval boundaries, so this is the natural point to drop buffers
        of shapes that will not recur.
        """
        for module in self.modules():
            module.training = True
        get_workspace().clear()
        return self

    def eval(self) -> "Module":
        """Switch to inference mode (and flush the kernel workspace)."""
        for module in self.modules():
            module.training = False
        get_workspace().clear()
        return self

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array plus registered buffers, keyed by name."""
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        state.update({name: buf.copy() for name, buf in self.named_buffers()})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter and buffer arrays produced by :meth:`state_dict`."""
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = (set(own_params) | set(own_buffers)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffers))
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own_params.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: module {param.data.shape}, state {state[name].shape}"
                )
            param.data = state[name].astype(param.data.dtype).copy()
        for name, buf in own_buffers.items():
            buf[...] = state[name]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield non-trainable persistent arrays (e.g. batch-norm running stats)."""
        buffer_names = getattr(self, "_buffer_names", ())
        for name in buffer_names:
            yield f"{prefix}{name}", getattr(self, name)
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Module):
                yield from value.named_buffers(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_buffers(prefix=f"{full}.{i}.")

    def register_buffer(self, name: str, array: np.ndarray) -> None:
        """Register a persistent non-trainable array, included in state dicts."""
        setattr(self, name, array)
        names = list(getattr(self, "_buffer_names", ()))
        if name not in names:
            names.append(name)
        self._buffer_names = tuple(names)
