"""Differentiable neural-network operations built on :class:`repro.nn.tensor.Tensor`.

All image ops use NCHW layout (batch, channels, height, width).  Convolutions
are implemented with im2col/col2im so that the heavy lifting happens inside a
single BLAS matmul — the standard trick for fast CPU convolutions and the one
that keeps the reproduction's training loops tractable on a laptop.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "conv2d",
    "depthwise_conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "im2col",
    "col2im",
    "conv_output_size",
]


def softmax(logits: Tensor, axis: int = -1, temperature: float = 1.0) -> Tensor:
    """Numerically stable softmax.

    ``temperature`` implements the distilled softmax of Hinton et al. used by
    the knowledge-distillation technique (paper §III-B4): ``T > 1`` softens the
    output distribution.
    """
    scaled = logits * (1.0 / temperature) if temperature != 1.0 else logits
    shifted = scaled - Tensor(scaled.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1, temperature: float = 1.0) -> Tensor:
    """Numerically stable ``log(softmax(x))`` via the log-sum-exp trick."""
    scaled = logits * (1.0 / temperature) if temperature != 1.0 else logits
    shifted = scaled - Tensor(scaled.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    images: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> np.ndarray:
    """Unfold NCHW image patches into a matrix of shape (N*OH*OW, C*KH*KW)."""
    n, c, h, w = images.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    if padding > 0:
        images = np.pad(images, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    cols = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=images.dtype)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = images[:, :, ky:y_max:stride, kx:x_max:stride]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold a patch matrix back to NCHW, accumulating overlapping regions.

    This is the adjoint of :func:`im2col` and therefore exactly the gradient
    routing a convolution backward pass needs.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    cols = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(0, 3, 4, 5, 1, 2)

    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols[:, :, ky, kx, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(
    images: Tensor, weight: Tensor, bias: Tensor | None, stride: int = 1, padding: int = 0
) -> Tensor:
    """2-D convolution.

    Parameters
    ----------
    images:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, KH, KW)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    """
    n, c_in, h, w = images.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv2d channel mismatch: input has {c_in}, weight expects {c_in_w}")
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    cols = im2col(images.data, kh, kw, stride, padding)  # (N*OH*OW, C*KH*KW)
    flat_weight = weight.data.reshape(c_out, -1)  # (C_out, C*KH*KW)
    out = cols @ flat_weight.T  # (N*OH*OW, C_out)
    if bias is not None:
        out = out + bias.data
    out_data = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)

    parents = (images, weight) if bias is None else (images, weight, bias)

    def backward_fn(grad: np.ndarray) -> None:
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, c_out)  # (N*OH*OW, C_out)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_flat.sum(axis=0))
        if weight.requires_grad:
            grad_w = grad_flat.T @ cols  # (C_out, C*KH*KW)
            weight._accumulate(grad_w.reshape(weight.shape))
        if images.requires_grad:
            grad_cols = grad_flat @ flat_weight  # (N*OH*OW, C*KH*KW)
            images._accumulate(col2im(grad_cols, images.shape, kh, kw, stride, padding))

    return Tensor._make(out_data, parents, backward_fn, "conv2d")


def depthwise_conv2d(
    images: Tensor, weight: Tensor, bias: Tensor | None, stride: int = 1, padding: int = 0
) -> Tensor:
    """Depthwise 2-D convolution (one filter per input channel).

    The building block of MobileNet's depthwise-separable convolutions
    (paper Table III).  ``weight`` has shape ``(C, 1, KH, KW)``.
    """
    n, c, h, w = images.shape
    c_w, one, kh, kw = weight.shape
    if c_w != c or one != 1:
        raise ValueError(f"depthwise weight must be (C, 1, KH, KW); got {weight.shape}")
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    cols = im2col(images.data, kh, kw, stride, padding)  # (N*OH*OW, C*KH*KW)
    cols_per_channel = cols.reshape(-1, c, kh * kw)  # (N*OH*OW, C, KH*KW)
    flat_weight = weight.data.reshape(c, kh * kw)  # (C, KH*KW)
    out = np.einsum("pck,ck->pc", cols_per_channel, flat_weight)
    if bias is not None:
        out = out + bias.data
    out_data = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)

    parents = (images, weight) if bias is None else (images, weight, bias)

    def backward_fn(grad: np.ndarray) -> None:
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, c)  # (N*OH*OW, C)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_flat.sum(axis=0))
        if weight.requires_grad:
            grad_w = np.einsum("pc,pck->ck", grad_flat, cols_per_channel)
            weight._accumulate(grad_w.reshape(weight.shape))
        if images.requires_grad:
            grad_cols = np.einsum("pc,ck->pck", grad_flat, flat_weight)
            images._accumulate(
                col2im(grad_cols.reshape(-1, c * kh * kw), images.shape, kh, kw, stride, padding)
            )

    return Tensor._make(out_data, parents, backward_fn, "depthwise_conv2d")


def max_pool2d(images: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows."""
    stride = stride or kernel
    n, c, h, w = images.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)

    cols = im2col(images.data, kernel, kernel, stride, 0).reshape(-1, c, kernel * kernel)
    argmax = cols.argmax(axis=2)  # (N*OH*OW, C)
    out = np.take_along_axis(cols, argmax[:, :, None], axis=2)[:, :, 0]
    out_data = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)

    def backward_fn(grad: np.ndarray) -> None:
        if not images.requires_grad:
            return
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, c)  # (N*OH*OW, C)
        grad_cols = np.zeros_like(cols)
        np.put_along_axis(grad_cols, argmax[:, :, None], grad_flat[:, :, None], axis=2)
        images._accumulate(
            col2im(grad_cols.reshape(-1, c * kernel * kernel), images.shape, kernel, kernel, stride, 0)
        )

    return Tensor._make(out_data, (images,), backward_fn, "max_pool2d")


def avg_pool2d(images: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Average pooling over windows."""
    stride = stride or kernel
    n, c, h, w = images.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)

    cols = im2col(images.data, kernel, kernel, stride, 0).reshape(-1, c, kernel * kernel)
    out_data = cols.mean(axis=2).reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)

    def backward_fn(grad: np.ndarray) -> None:
        if not images.requires_grad:
            return
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, c)
        grad_cols = np.repeat(grad_flat[:, :, None], kernel * kernel, axis=2) / (kernel * kernel)
        images._accumulate(
            col2im(grad_cols.reshape(-1, c * kernel * kernel), images.shape, kernel, kernel, stride, 0)
        )

    return Tensor._make(out_data, (images,), backward_fn, "avg_pool2d")


def global_avg_pool2d(images: Tensor) -> Tensor:
    """Average each channel over all spatial positions: (N,C,H,W) -> (N,C)."""
    return images.mean(axis=(2, 3))


def batch_norm_2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    mean: np.ndarray,
    var: np.ndarray,
    eps: float,
    training: bool,
) -> Tensor:
    """Fused batch normalisation over the channel axis of NCHW inputs.

    In training mode ``mean``/``var`` must be the *batch* statistics and the
    backward pass differentiates through them (the full Ioffe & Szegedy
    gradient); in eval mode they are the running statistics and are treated
    as constants.
    """
    if x.ndim != 4:
        raise ValueError(f"batch_norm_2d expects NCHW input; got shape {x.shape}")
    c = x.shape[1]
    shape = (1, c, 1, 1)
    mean_b = mean.reshape(shape).astype(x.data.dtype)
    inv_std = (1.0 / np.sqrt(var + eps)).reshape(shape).astype(x.data.dtype)
    x_hat = (x.data - mean_b) * inv_std
    out_data = gamma.data.reshape(shape) * x_hat + beta.data.reshape(shape)

    def backward_fn(grad: np.ndarray) -> None:
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=(0, 2, 3)))
        if gamma.requires_grad:
            gamma._accumulate((grad * x_hat).sum(axis=(0, 2, 3)))
        if not x.requires_grad:
            return
        scale = gamma.data.reshape(shape) * inv_std
        if not training:
            x._accumulate(grad * scale)
            return
        # Full training-mode gradient: d/dx of ((x - mu(x)) / sigma(x)).
        grad_mean = grad.mean(axis=(0, 2, 3), keepdims=True)
        grad_xhat_mean = (grad * x_hat).mean(axis=(0, 2, 3), keepdims=True)
        x._accumulate(scale * (grad - grad_mean - x_hat * grad_xhat_mean))

    return Tensor._make(out_data, (x, gamma, beta), backward_fn, "batch_norm_2d")
