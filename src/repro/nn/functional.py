"""Differentiable neural-network operations built on :class:`repro.nn.tensor.Tensor`.

All image ops use NCHW layout (batch, channels, height, width).  Convolutions
are implemented with im2col/col2im so that the heavy lifting happens inside a
single BLAS matmul — the standard trick for fast CPU convolutions and the one
that keeps the reproduction's training loops tractable on a laptop.

Kernel modes
------------
The hot-path kernels come in three selectable implementations (see
:func:`set_kernel_mode`):

``fast`` (default)
    Vectorised patch extraction via ``numpy.lib.stride_tricks.sliding_window_view``,
    the fused :func:`softmax_cross_entropy` tape node, and scratch-buffer reuse
    through :mod:`repro.nn.workspace`.
``reference``
    The loop-based patch extraction and the composed (unfused) loss, with no
    buffer reuse.  ``reference`` and ``fast`` share every GEMM shape and every
    floating-point operation order, so they produce **bitwise-identical**
    forward values and gradients — this is what lets the study harness swap
    kernels without perturbing a single result (``results_equivalent`` does
    exact float comparison).
``legacy``
    The original seed implementations (flat ``(N*OH*OW, C*KH*KW)`` patch
    layout), kept verbatim for honest old-vs-new benchmarking in
    ``benchmarks/bench_kernels.py``.  Numerically equal to ``fast`` up to
    GEMM reduction-order rounding (~1e-6 relative on weight gradients).

All three modes use the same optimiser/trainer code; only the kernel bodies
differ.

Patch layout
------------
``im2col`` produces ``(N, C*KH*KW, OH*OW)`` — channels-first patches kept
per-image.  Compared with the seed's flat ``(N*OH*OW, C*KH*KW)`` layout this
removes the big stage-B transpose copy on the forward path and makes the conv
output a contiguous NCHW reshape instead of a strided transpose, which is
where most of the measured speedup comes from.  The seed layout survives as
:func:`im2col_reference`/:func:`col2im_reference`.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from .ops import OpCtx, register_op
from .tensor import Tensor, is_grad_enabled, run_op
from .workspace import Workspace, get_workspace

__all__ = [
    "softmax",
    "log_softmax",
    "softmax_np",
    "softmax_cross_entropy",
    "conv2d",
    "depthwise_conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "batch_norm_2d",
    "batch_norm_2d_train",
    "dropout_train",
    "im2col",
    "col2im",
    "im2col_reference",
    "col2im_reference",
    "conv_output_size",
    "KERNEL_MODES",
    "kernel_mode",
    "set_kernel_mode",
    "use_kernel_mode",
    "row_stable_inference",
    "row_stable_enabled",
    "rowstable_matmul2d",
    "kernel_tap",
    "kernel_tap_scope",
]


# ----------------------------------------------------------------------
# Kernel-mode dispatch
# ----------------------------------------------------------------------
KERNEL_MODES = ("fast", "reference", "legacy", "compiled")

#: Modes that run the vectorised kernel bodies with workspace pooling.
#: ``compiled`` uses the identical kernels as ``fast``; it additionally lets
#: :class:`repro.nn.trainer.Trainer` record one step and replay a static
#: schedule for the rest (see :mod:`repro.nn.compile`).
_FAST_LIKE = ("fast", "compiled")

_KERNEL_MODE = os.environ.get("REPRO_KERNELS", "fast").strip().lower() or "fast"
if _KERNEL_MODE not in KERNEL_MODES:
    raise ValueError(
        f"REPRO_KERNELS={_KERNEL_MODE!r} is not a valid kernel mode; choices: {KERNEL_MODES}"
    )


def kernel_mode() -> str:
    """Return the active kernel mode (``fast``, ``reference``, ``legacy``, or ``compiled``)."""
    return _KERNEL_MODE


def set_kernel_mode(mode: str) -> str:
    """Select the kernel implementation; returns the previous mode.

    Also honours the ``REPRO_KERNELS`` environment variable at import time.
    ``fast``, ``reference``, and ``compiled`` are bitwise-equivalent;
    ``legacy`` is the seed implementation retained for benchmarking.
    """
    global _KERNEL_MODE
    if mode not in KERNEL_MODES:
        raise ValueError(f"unknown kernel mode {mode!r}; choices: {KERNEL_MODES}")
    previous = _KERNEL_MODE
    _KERNEL_MODE = mode
    if mode not in _FAST_LIKE:
        # Modes without buffer reuse; drop whatever the pooled paths cached.
        get_workspace().clear()
    return previous


class use_kernel_mode:
    """Context manager that temporarily switches the kernel mode.

    >>> with use_kernel_mode("reference"):
    ...     loss = model_loss(...)
    """

    def __init__(self, mode: str) -> None:
        if mode not in KERNEL_MODES:
            raise ValueError(f"unknown kernel mode {mode!r}; choices: {KERNEL_MODES}")
        self.mode = mode
        self._previous: str | None = None

    def __enter__(self) -> "use_kernel_mode":
        self._previous = set_kernel_mode(self.mode)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._previous is not None:
            set_kernel_mode(self._previous)


def _pool() -> Workspace | None:
    """The scratch-buffer arena, or None when buffer reuse is disabled."""
    return get_workspace() if _KERNEL_MODE in _FAST_LIKE else None


# ----------------------------------------------------------------------
# Row-stable inference
# ----------------------------------------------------------------------
# BLAS gemm picks its kernel/blocking from the matrix shapes, so the result
# row for one sample in an ``(N, D) @ (D, K)`` product can differ in the last
# bit between N=1 and N=8.  Row-stable mode makes the batch-crossing matmuls
# (currently only :class:`~repro.nn.layers.Dense`) compute each sample as its
# own ``(1, D) @ (D, K)`` product via a batched gemm — bitwise identical to a
# single-sample call, at any coalesced batch size.  The serving engine
# (:mod:`repro.serve`) enables it on its worker threads so micro-batched
# predictions are bitwise-equal to one-at-a-time ``predict_logits`` calls.
# The flag is thread-local: a serving worker never alters training numerics
# on other threads.
_ROW_STABLE = threading.local()


def row_stable_enabled() -> bool:
    """Whether row-stable inference is active on the calling thread."""
    return getattr(_ROW_STABLE, "enabled", False)


class row_stable_inference:
    """Context manager enabling row-stable (batch-size-invariant) inference.

    Inside the context, forward passes produce per-sample results that do not
    depend on how samples were coalesced into batches: splitting a batch of 8
    into 8 singles (or any chunking in between) yields bitwise-identical rows.
    Only affects inference-shaped code paths; training (tape-recording) passes
    keep the plain gemm.
    """

    def __enter__(self) -> "row_stable_inference":
        self._previous = getattr(_ROW_STABLE, "enabled", False)
        _ROW_STABLE.enabled = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        _ROW_STABLE.enabled = self._previous


def rowstable_matmul2d(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """``x @ w`` computed sample-by-sample via a batched gemm.

    ``x`` is ``(N, D)``, ``w`` is ``(D, K)``; the result equals
    ``np.concatenate([x[i:i+1] @ w for i in range(N)])`` bitwise, because each
    item of the stacked product is its own M=1 gemm — the same call a
    single-sample forward makes.
    """
    return np.matmul(x[:, None, :], w)[:, 0, :]


# ----------------------------------------------------------------------
# Kernel output taps
# ----------------------------------------------------------------------
# The hook point the hardware-fault injector (:mod:`repro.faults.hardware`)
# uses to corrupt activations at inference time.  A tap is a callable
# ``tap(site, array) -> None`` that mutates the freshly computed output array
# of a kernel op in place; ``site`` names the op ("conv2d", "max_pool2d",
# "dense", ...).  Like row-stable inference the flag is thread-local, so an
# armed injection context on one thread never perturbs other threads.  With
# no tap installed every op pays a single ``getattr`` returning ``None`` —
# outputs are bitwise-identical to a build without the hook.
_KERNEL_TAP = threading.local()


def kernel_tap():
    """The active kernel output tap on the calling thread, or ``None``."""
    return getattr(_KERNEL_TAP, "fn", None)


class kernel_tap_scope:
    """Context manager installing a kernel output tap on this thread.

    Scopes nest: entering replaces the current tap and exiting restores it,
    so an inner injection context cleanly shadows an outer one.
    """

    def __init__(self, fn) -> None:
        if not callable(fn):
            raise TypeError("kernel tap must be callable as tap(site, array)")
        self.fn = fn

    def __enter__(self) -> "kernel_tap_scope":
        self._previous = getattr(_KERNEL_TAP, "fn", None)
        _KERNEL_TAP.fn = self.fn
        return self

    def __exit__(self, *exc_info: object) -> None:
        _KERNEL_TAP.fn = self._previous


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
def softmax(logits: Tensor, axis: int = -1, temperature: float = 1.0) -> Tensor:
    """Numerically stable softmax.

    ``temperature`` implements the distilled softmax of Hinton et al. used by
    the knowledge-distillation technique (paper §III-B4): ``T > 1`` softens the
    output distribution.
    """
    scaled = logits * (1.0 / temperature) if temperature != 1.0 else logits
    shifted = scaled - Tensor(scaled.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1, temperature: float = 1.0) -> Tensor:
    """Numerically stable ``log(softmax(x))`` via the log-sum-exp trick."""
    scaled = logits * (1.0 / temperature) if temperature != 1.0 else logits
    shifted = scaled - Tensor(scaled.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def softmax_np(logits: np.ndarray, axis: int = -1, temperature: float = 1.0) -> np.ndarray:
    """Stable softmax on a plain NumPy array (no tape).

    The single softmax used by every inference path — ``predict_proba``, the
    distillation teacher, label correction — so that temperature and
    stability handling cannot drift between them.  Performs exactly the same
    float32 operation sequence as :func:`softmax`, so switching a ``no_grad``
    call site from the Tensor version to this one does not change a bit.
    """
    x = np.asarray(logits)
    if temperature != 1.0:
        x = x * np.asarray(1.0 / temperature, dtype=np.float32)
    shifted = x - x.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def softmax_cross_entropy(logits: Tensor, targets: np.ndarray, temperature: float = 1.0) -> Tensor:
    """Fused softmax + cross-entropy: mean of ``-sum(targets * log_softmax(logits))``.

    A single tape node replacing the composed sub/exp/sum/log/mul/sum/mean/neg
    chain (forward via log-sum-exp, backward in closed form), with the
    distillation temperature folded in.  ``targets`` may be one-hot or soft
    distributions of shape ``(N, K)``.

    In ``fast`` kernel mode this runs fused; in other modes it falls back to
    the composed Tensor expression.  Both replicate the composed chain's
    float32 operation order exactly, so the loss value and the logit gradient
    are bitwise-identical across modes.
    """
    t = np.asarray(targets, dtype=np.float32)
    if logits.ndim != 2 or t.shape != tuple(logits.shape):
        raise ValueError(
            f"expected matching (N, K) logits and targets; got {logits.shape} and {t.shape}"
        )
    if _KERNEL_MODE not in _FAST_LIKE:
        return -(log_softmax(logits, axis=1, temperature=temperature) * Tensor(t)).sum(
            axis=1
        ).mean()
    return run_op(_SOFTMAX_CE, (logits, Tensor(t)), {"temperature": temperature})


def _softmax_ce_apply(ctx: OpCtx, inputs, kwargs) -> np.ndarray:
    x, t = inputs
    temperature = kwargs["temperature"]
    if temperature != 1.0:
        inv_t = np.asarray(1.0 / temperature, dtype=np.float32)
        scaled = x * inv_t
    else:
        inv_t = None
        scaled = x
    # Forward replicates the composed chain step for step:
    #   shifted = scaled - max; lp = shifted - log(sum(exp(shifted)))
    #   loss = -((lp * t).sum(axis=1).sum() * (1/N))
    shifted = scaled - scaled.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    sums = exps.sum(axis=1, keepdims=True)
    log_probs = shifted - np.log(sums)
    rowsum = (log_probs * t).sum(axis=1)
    inv_n = np.asarray(1.0 / rowsum.shape[0], dtype=np.float32)
    out_data = -(rowsum.sum() * inv_n)
    ctx.saved = (t, exps, sums, inv_n, inv_t)
    return out_data


def _softmax_ce_vjp(ctx: OpCtx, grad, needs, acc) -> None:
    if not needs[0]:
        return
    t, exps, sums, inv_n, inv_t = ctx.saved
    # Closed-form gradient, in the exact operation order of the composed
    # tape (down to the order the two shifted-gradient terms are added).
    g_lp = ((-grad) * inv_n) * t
    g_logsum = (-g_lp).sum(axis=1, keepdims=True)
    gx = g_lp + (g_logsum / sums) * exps
    if inv_t is not None:
        gx *= inv_t
    acc(0, gx)


_SOFTMAX_CE = register_op("softmax_ce", _softmax_ce_apply, _softmax_ce_vjp)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


# ----------------------------------------------------------------------
# Patch extraction (im2col / col2im)
# ----------------------------------------------------------------------
def im2col(
    images: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
    out: np.ndarray | None = None,
    padded_out: np.ndarray | None = None,
) -> np.ndarray:
    """Unfold NCHW image patches into matrices of shape ``(N, C*KH*KW, OH*OW)``.

    In ``fast`` mode stride-1 gathers are a single strided-view transpose copy
    via ``sliding_window_view``; strided gathers and the other modes use a
    per-kernel-offset copy loop that writes the same elements.  All paths
    perform pure copies, so their outputs are bitwise-identical.

    ``out``, when given, must be a ``(N, C*KH*KW, OH*OW)`` C-contiguous buffer
    of the image dtype (e.g. from the :mod:`repro.nn.workspace` arena); it is
    fully overwritten and returned.  ``padded_out``, when given with
    ``padding > 0``, is a persistent pad buffer whose border is already zero
    (compiled replay arms one per conv site): only the interior is written, so
    the border stays zero and the per-step pad allocation + memset disappear.
    """
    n, c, h, w = images.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    if padding > 0:
        if padded_out is not None:
            padded = padded_out
        else:
            padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=images.dtype)
        padded[:, :, padding:-padding, padding:-padding] = images
        images = padded

    if out is None:
        out = np.empty((n, c * kernel_h * kernel_w, out_h * out_w), dtype=images.dtype)
    cols = out.reshape(n, c, kernel_h, kernel_w, out_h, out_w)
    if _KERNEL_MODE in _FAST_LIKE and stride == 1:
        # The six-axis window-view copy wins for dense (stride-1) convolution
        # gathers but loses to the offset loop once the windows are strided
        # (pooling geometries), so strided gathers fall through to the loop.
        windows = np.lib.stride_tricks.sliding_window_view(
            images, (kernel_h, kernel_w), axis=(2, 3)
        )
        cols[...] = windows.transpose(0, 1, 4, 5, 2, 3)
    else:
        for ky in range(kernel_h):
            y_max = ky + stride * out_h
            for kx in range(kernel_w):
                x_max = kx + stride * out_w
                cols[:, :, ky, kx, :, :] = images[:, :, ky:y_max:stride, kx:x_max:stride]
    return out


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
    workspace: Workspace | None = None,
    padded_out: np.ndarray | None = None,
) -> np.ndarray:
    """Fold ``(N, C*KH*KW, OH*OW)`` patch matrices back to NCHW, accumulating overlaps.

    This is the adjoint of :func:`im2col` and therefore exactly the gradient
    routing a convolution backward pass needs.  The scatter-accumulate stays a
    per-kernel-offset loop in every mode: each iteration is a fully vectorised
    strided add over ``(N, C, OH, OW)``, and the windowed alternative measures
    ~4× slower on disjoint (pooling) windows because of its extra indexing.

    When ``workspace`` is given, the padded accumulator is drawn from it; the
    caller owns releasing the returned array's base buffer after consuming the
    values.  ``padded_out``, when given, is a persistent accumulator (compiled
    replay arms one per site) that is zero-filled in place instead — same
    values, no allocation.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    cols6 = cols.reshape(n, c, kernel_h, kernel_w, out_h, out_w)

    padded_shape = (n, c, h + 2 * padding, w + 2 * padding)
    if padded_out is not None:
        padded = padded_out
        padded.fill(0)
    elif workspace is not None:
        padded = workspace.acquire_zeros(padded_shape, cols.dtype)
    else:
        padded = np.zeros(padded_shape, dtype=cols.dtype)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols6[:, :, ky, kx, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def im2col_reference(
    images: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> np.ndarray:
    """Seed im2col: unfold NCHW patches into a flat ``(N*OH*OW, C*KH*KW)`` matrix.

    Retained verbatim as the reference/legacy implementation for equivalence
    tests and old-vs-new benchmarking; the hot path uses :func:`im2col`.
    """
    n, c, h, w = images.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    if padding > 0:
        images = np.pad(images, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    cols = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=images.dtype)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = images[:, :, ky:y_max:stride, kx:x_max:stride]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)


def col2im_reference(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Seed col2im: fold a flat ``(N*OH*OW, C*KH*KW)`` matrix back to NCHW.

    The adjoint of :func:`im2col_reference`; retained verbatim for equivalence
    tests and the legacy kernel mode.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    cols = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(0, 3, 4, 5, 1, 2)

    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols[:, :, ky, kx, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def _release_folded(workspace: Workspace | None, folded: np.ndarray) -> None:
    """Return a col2im result's backing buffer to the workspace.

    ``col2im`` returns the unpadded interior view when padding > 0; the pooled
    buffer is then its base.
    """
    if workspace is not None:
        workspace.release(folded if folded.base is None else folded.base)


def _ctx_pad_zeros(ctx: OpCtx, key: str, x_shape, padding: int, dtype) -> np.ndarray | None:
    """A persistent zero-bordered pad buffer for an armed (compiled) op site.

    Allocated zeroed once; :func:`im2col` only ever writes the interior, so
    the border invariantly stays zero across replays.
    """
    if padding == 0:
        return None
    n, c, h, w = x_shape
    shape = (n, c, h + 2 * padding, w + 2 * padding)
    buf = ctx.bufs.get(key)
    if buf is None or buf.shape != shape or buf.dtype != dtype:
        buf = ctx.bufs[key] = np.zeros(shape, dtype)
    return buf


def _armed_im2col(
    ctx: OpCtx, x: np.ndarray, kh: int, kw: int, stride: int, padding: int, cols: np.ndarray
) -> np.ndarray:
    """:func:`im2col` into an armed cols buffer, with plan-cached strided views.

    For the stride-1 fast path the sliding-window source view and the target
    six-axis view are pure functions of the (persistent) pad buffer and cols
    buffer, so they are built once and cached on the ctx; steady-state steps
    run exactly two copies — pad interior and window gather — the identical
    element movement :func:`im2col` performs, minus its per-call view setup.
    """
    if stride != 1:
        return im2col(
            x,
            kh,
            kw,
            stride,
            padding,
            out=cols,
            padded_out=_ctx_pad_zeros(ctx, "pad", x.shape, padding, x.dtype),
        )
    pad = _ctx_pad_zeros(ctx, "pad", x.shape, padding, x.dtype)
    if pad is not None:
        pad[:, :, padding:-padding, padding:-padding] = x
        src = pad
    else:
        src = x
    plan = ctx.bufs.get("i2c")
    if plan is None or plan[0] is not src or plan[2].base is not cols:
        windows = np.lib.stride_tricks.sliding_window_view(src, (kh, kw), axis=(2, 3))
        n, c = x.shape[0], x.shape[1]
        out_h, out_w = windows.shape[2], windows.shape[3]
        cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
        plan = ctx.bufs["i2c"] = (src, windows.transpose(0, 1, 4, 5, 2, 3), cols6)
    plan[2][...] = plan[1]
    return cols


# ----------------------------------------------------------------------
# Convolutions
# ----------------------------------------------------------------------
def conv2d(
    images: Tensor, weight: Tensor, bias: Tensor | None, stride: int = 1, padding: int = 0
) -> Tensor:
    """2-D convolution.

    Parameters
    ----------
    images:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, KH, KW)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    """
    if _KERNEL_MODE == "legacy":
        return _conv2d_legacy(images, weight, bias, stride, padding)
    c_in = images.shape[1]
    c_in_w = weight.shape[1]
    if c_in != c_in_w:
        raise ValueError(f"conv2d channel mismatch: input has {c_in}, weight expects {c_in_w}")
    inputs = (images, weight) if bias is None else (images, weight, bias)
    return run_op(_CONV2D, inputs, {"stride": stride, "padding": padding})


def _conv2d_apply(ctx: OpCtx, inputs, kwargs) -> np.ndarray:
    x, w = inputs[0], inputs[1]
    b = inputs[2] if len(inputs) == 3 else None
    stride = kwargs["stride"]
    padding = kwargs["padding"]
    n, c_in, h, w_in = x.shape
    c_out, _, kh, kw = w.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w_in, kw, stride, padding)
    ohw = out_h * out_w
    ckk = c_in * kh * kw

    if ctx.bufs is None:
        ws = _pool()
        cols = ws.acquire((n, ckk, ohw), x.dtype) if ws is not None else None
        cols = im2col(x, kh, kw, stride, padding, out=cols)  # (N, C*KH*KW, OH*OW)
        flat_weight = w.reshape(c_out, -1)  # (C_out, C*KH*KW)
        out3 = np.matmul(flat_weight, cols)  # (N, C_out, OH*OW)
    else:
        # Armed replay: patch columns and the pad buffer live on the ctx, so
        # steady-state steps do no workspace churn and no pad alloc/memset.
        ws = None
        cols = _armed_im2col(
            ctx, x, kh, kw, stride, padding, ctx.buffer("cols", (n, ckk, ohw), x.dtype)
        )
        flat_weight = w.reshape(c_out, -1)
        out3 = np.matmul(flat_weight, cols, out=ctx.buffer("out3", (n, c_out, ohw), x.dtype))
    if b is not None:
        out3 += b[:, None]
    out_data = out3.reshape(n, c_out, out_h, out_w)
    tap = getattr(_KERNEL_TAP, "fn", None)
    if tap is not None:
        tap("conv2d", out_data)
    ctx.saved = (x.shape, w.shape, cols, flat_weight, ws, (n, c_out, ohw, kh, kw, stride, padding))
    return out_data


def _conv2d_discard(ctx: OpCtx) -> None:
    _, _, cols, _, ws, _ = ctx.saved
    if ws is not None:
        ws.release(cols)


def _conv2d_vjp(ctx: OpCtx, grad, needs, acc) -> None:
    x_shape, w_shape, cols, flat_weight, ws, geom = ctx.saved
    n, c_out, ohw, kh, kw, stride, padding = geom
    ckk = flat_weight.shape[1]
    grad3 = grad.reshape(n, c_out, ohw)
    if len(needs) == 3 and needs[2]:
        acc(2, grad3.sum(axis=(0, 2)))
    if needs[1]:
        if c_out > 4 * ohw:
            # Deep layers (many channels, few positions): contract batch
            # and position axes in one GEMM; the batched alternative would
            # materialise an (N, C_out, C*KH*KW) intermediate.
            grad_w = np.tensordot(grad3, cols, axes=([0, 2], [0, 2]))  # (C_out, C*KH*KW)
        elif ctx.bufs is None:
            # Wide-spatial layers: per-sample GEMMs are large enough that
            # the batched product beats tensordot's internal transposes.
            grad_w = np.matmul(grad3, cols.transpose(0, 2, 1)).sum(axis=0)
        else:
            gw3 = np.matmul(
                grad3, cols.transpose(0, 2, 1), out=ctx.buffer("gw3", (n, c_out, ckk), grad.dtype)
            )
            grad_w = gw3.sum(axis=0, out=ctx.buffer("gw", (c_out, ckk), grad.dtype))
        acc(1, grad_w.reshape(w_shape))
    if needs[0]:
        if ctx.bufs is not None:
            gcols = ctx.buffer("gcols", (n, ckk, ohw), grad.dtype)
        elif ws is not None:
            gcols = ws.acquire((n, ckk, ohw), grad.dtype)
        else:
            gcols = np.empty((n, ckk, ohw), dtype=grad.dtype)
        np.matmul(flat_weight.T, grad3, out=gcols)  # (N, C*KH*KW, OH*OW)
        fold = None
        if ctx.bufs is not None:
            nx, cx, hx, wx = x_shape
            fold = ctx.buffer(
                "fold", (nx, cx, hx + 2 * padding, wx + 2 * padding), grad.dtype
            )
        grad_img = col2im(
            gcols, x_shape, kh, kw, stride, padding, workspace=ws, padded_out=fold
        )
        acc(0, grad_img)
        if ws is not None:
            ws.release(gcols)
        _release_folded(ws, grad_img)
    if ws is not None:
        ws.release(cols)


_CONV2D = register_op("conv2d", _conv2d_apply, _conv2d_vjp, discard=_conv2d_discard)


def depthwise_conv2d(
    images: Tensor, weight: Tensor, bias: Tensor | None, stride: int = 1, padding: int = 0
) -> Tensor:
    """Depthwise 2-D convolution (one filter per input channel).

    The building block of MobileNet's depthwise-separable convolutions
    (paper Table III).  ``weight`` has shape ``(C, 1, KH, KW)``.
    """
    if _KERNEL_MODE == "legacy":
        return _depthwise_conv2d_legacy(images, weight, bias, stride, padding)
    c = images.shape[1]
    c_w, one = weight.shape[0], weight.shape[1]
    if c_w != c or one != 1:
        raise ValueError(f"depthwise weight must be (C, 1, KH, KW); got {weight.shape}")
    inputs = (images, weight) if bias is None else (images, weight, bias)
    return run_op(_DEPTHWISE_CONV2D, inputs, {"stride": stride, "padding": padding})


def _depthwise_apply(ctx: OpCtx, inputs, kwargs) -> np.ndarray:
    x, w = inputs[0], inputs[1]
    b = inputs[2] if len(inputs) == 3 else None
    stride = kwargs["stride"]
    padding = kwargs["padding"]
    n, c, h, w_in = x.shape
    _, _, kh, kw = w.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w_in, kw, stride, padding)
    ohw = out_h * out_w
    kk = kh * kw

    if ctx.bufs is None:
        ws = _pool()
        cols = ws.acquire((n, c * kk, ohw), x.dtype) if ws is not None else None
        cols = im2col(x, kh, kw, stride, padding, out=cols)
        cols4 = cols.reshape(n, c, kk, ohw)
        flat_weight = w.reshape(c, kk)  # (C, KH*KW)
        out = np.einsum("nckp,ck->ncp", cols4, flat_weight)  # (N, C, OH*OW)
    else:
        ws = None
        cols = _armed_im2col(
            ctx, x, kh, kw, stride, padding, ctx.buffer("cols", (n, c * kk, ohw), x.dtype)
        )
        cols4 = cols.reshape(n, c, kk, ohw)
        flat_weight = w.reshape(c, kk)
        out = np.einsum(
            "nckp,ck->ncp", cols4, flat_weight, out=ctx.buffer("out", (n, c, ohw), x.dtype)
        )
    if b is not None:
        out += b[:, None]
    out_data = out.reshape(n, c, out_h, out_w)
    tap = getattr(_KERNEL_TAP, "fn", None)
    if tap is not None:
        tap("depthwise_conv2d", out_data)
    ctx.saved = (x.shape, w.shape, cols, cols4, flat_weight, ws, (n, c, kk, ohw, kh, kw, stride, padding))
    return out_data


def _depthwise_discard(ctx: OpCtx) -> None:
    cols, ws = ctx.saved[2], ctx.saved[5]
    if ws is not None:
        ws.release(cols)


def _depthwise_vjp(ctx: OpCtx, grad, needs, acc) -> None:
    x_shape, w_shape, cols, cols4, flat_weight, ws, geom = ctx.saved
    n, c, kk, ohw, kh, kw, stride, padding = geom
    grad3 = grad.reshape(n, c, ohw)
    if len(needs) == 3 and needs[2]:
        acc(2, grad3.sum(axis=(0, 2)))
    if needs[1]:
        grad_w = np.einsum("ncp,nckp->ck", grad3, cols4)
        acc(1, grad_w.reshape(w_shape))
    if needs[0]:
        if ctx.bufs is not None:
            gcols = ctx.buffer("gcols", (n, c * kk, ohw), grad.dtype)
        elif ws is not None:
            gcols = ws.acquire((n, c * kk, ohw), grad.dtype)
        else:
            gcols = np.empty((n, c * kk, ohw), dtype=grad.dtype)
        np.einsum("ncp,ck->nckp", grad3, flat_weight, out=gcols.reshape(n, c, kk, ohw))
        fold = None
        if ctx.bufs is not None:
            nx, cx, hx, wx = x_shape
            fold = ctx.buffer(
                "fold", (nx, cx, hx + 2 * padding, wx + 2 * padding), grad.dtype
            )
        grad_img = col2im(
            gcols, x_shape, kh, kw, stride, padding, workspace=ws, padded_out=fold
        )
        acc(0, grad_img)
        if ws is not None:
            ws.release(gcols)
        _release_folded(ws, grad_img)
    if ws is not None:
        ws.release(cols)


_DEPTHWISE_CONV2D = register_op(
    "depthwise_conv2d", _depthwise_apply, _depthwise_vjp, discard=_depthwise_discard
)


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def max_pool2d(images: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows."""
    if _KERNEL_MODE == "legacy":
        return _max_pool2d_legacy(images, kernel, stride)
    stride = stride or kernel
    return run_op(_MAX_POOL2D, (images,), {"kernel": kernel, "stride": stride})


def _max_pool2d_apply(ctx: OpCtx, inputs, kwargs) -> np.ndarray:
    (x,) = inputs
    kernel = kwargs["kernel"]
    stride = kwargs["stride"]
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    ohw = out_h * out_w
    kk = kernel * kernel

    if ctx.bufs is None:
        ws = _pool()
        cols = ws.acquire((n, c * kk, ohw), x.dtype) if ws is not None else None
        cols4 = im2col(x, kernel, kernel, stride, 0, out=cols).reshape(n, c, kk, ohw)
        argmax = cols4.argmax(axis=2)  # (N, C, OH*OW)
        out = np.take_along_axis(cols4, argmax[:, :, None, :], axis=2)[:, :, 0, :]
        out_data = out.reshape(n, c, out_h, out_w)
    else:
        # Armed replay: persistent buffers, and the window maximum comes from
        # a max-reduce instead of a gather at argmax — an exact selection of
        # the same element, one contiguous scan instead of a fancy-index pass.
        ws = None
        cols4 = im2col(
            x, kernel, kernel, stride, 0, out=ctx.buffer("cols", (n, c * kk, ohw), x.dtype)
        ).reshape(n, c, kk, ohw)
        argmax = np.argmax(cols4, axis=2, out=ctx.buffer("argmax", (n, c, ohw), np.intp))
        out = cols4.max(axis=2, out=ctx.buffer("out", (n, c, ohw), x.dtype))
        out_data = out.reshape(n, c, out_h, out_w)
    tap = getattr(_KERNEL_TAP, "fn", None)
    if tap is not None:
        tap("max_pool2d", out_data)
    if ws is not None:
        # The backward pass only needs the argmax, not the patches.
        ws.release(cols)
    ctx.saved = (x.shape, x.dtype, argmax, ws, (kernel, stride, out_h, out_w, ohw, kk))
    return out_data


def _max_pool2d_vjp(ctx: OpCtx, grad, needs, acc) -> None:
    if not needs[0]:
        return
    x_shape, x_dtype, argmax, ws, geom = ctx.saved
    kernel, stride, out_h, out_w, ohw, kk = geom
    n, c, h, w = x_shape
    grad3 = grad.reshape(n, c, ohw)
    if (ws is not None or ctx.bufs is not None) and stride >= kernel:
        # Disjoint windows: route each gradient straight to its argmax
        # pixel instead of materialising patch columns plus col2im.  Every
        # destination is written at most once, so the scatter is bitwise
        # identical to the column route the reference mode takes.
        if ctx.bufs is None:
            ky, kx = np.divmod(argmax, kernel)
            flat = ky * w
            flat += kx
            oy, ox = np.divmod(np.arange(ohw), out_w)
            flat += (oy * stride) * w + ox * stride
            grad_img = np.zeros((n, c, h * w), dtype=x_dtype)
        else:
            # Integer index arithmetic into persistent buffers; the window
            # position offsets are geometry-only and computed once.
            pos = ctx.bufs.get("pos")
            if pos is None or pos.shape != (ohw,):
                oy, ox = np.divmod(np.arange(ohw), out_w)
                pos = ctx.bufs["pos"] = (oy * stride) * w + ox * stride
            flat = np.floor_divide(argmax, kernel, out=ctx.buffer("flat", argmax.shape, argmax.dtype))
            kx = np.remainder(argmax, kernel, out=ctx.buffer("kx", argmax.shape, argmax.dtype))
            flat *= w
            flat += kx
            flat += pos
            grad_img = ctx.buffer("grad_img", (n, c, h * w), x_dtype)
            grad_img.fill(0)
        np.put_along_axis(grad_img, flat, grad3, axis=2)
        acc(0, grad_img.reshape(n, c, h, w))
        return
    if ctx.bufs is not None:
        gcols = ctx.buffer("gcols", (n, c * kk, ohw), x_dtype)
        gcols.fill(0)
        fold = ctx.buffer("fold", (n, c, h, w), x_dtype)
    elif ws is not None:
        gcols = ws.acquire_zeros((n, c * kk, ohw), x_dtype)
        fold = None
    else:
        gcols = np.zeros((n, c * kk, ohw), dtype=x_dtype)
        fold = None
    np.put_along_axis(
        gcols.reshape(n, c, kk, ohw), argmax[:, :, None, :], grad3[:, :, None, :], axis=2
    )
    grad_img = col2im(gcols, x_shape, kernel, kernel, stride, 0, workspace=ws, padded_out=fold)
    acc(0, grad_img)
    if ws is not None:
        ws.release(gcols)
    _release_folded(ws, grad_img)


_MAX_POOL2D = register_op("max_pool2d", _max_pool2d_apply, _max_pool2d_vjp)


def avg_pool2d(images: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Average pooling over windows."""
    if _KERNEL_MODE == "legacy":
        return _avg_pool2d_legacy(images, kernel, stride)
    stride = stride or kernel
    return run_op(_AVG_POOL2D, (images,), {"kernel": kernel, "stride": stride})


def _avg_pool2d_apply(ctx: OpCtx, inputs, kwargs) -> np.ndarray:
    (x,) = inputs
    kernel = kwargs["kernel"]
    stride = kwargs["stride"]
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    ohw = out_h * out_w
    kk = kernel * kernel

    if ctx.bufs is None:
        ws = _pool()
        cols = ws.acquire((n, c * kk, ohw), x.dtype) if ws is not None else None
        cols4 = im2col(x, kernel, kernel, stride, 0, out=cols).reshape(n, c, kk, ohw)
        out_data = cols4.mean(axis=2).reshape(n, c, out_h, out_w)
    else:
        ws = None
        cols4 = im2col(
            x, kernel, kernel, stride, 0, out=ctx.buffer("cols", (n, c * kk, ohw), x.dtype)
        ).reshape(n, c, kk, ohw)
        out_data = cols4.mean(axis=2, out=ctx.buffer("out", (n, c, ohw), x.dtype)).reshape(
            n, c, out_h, out_w
        )
    tap = getattr(_KERNEL_TAP, "fn", None)
    if tap is not None:
        tap("avg_pool2d", out_data)
    if ws is not None:
        # Average-pool backward is a uniform spread; the patches are not needed.
        ws.release(cols)
    ctx.saved = (x.shape, x.dtype, ws, (kernel, stride, out_h, out_w, ohw, kk))
    return out_data


def _avg_pool2d_vjp(ctx: OpCtx, grad, needs, acc) -> None:
    if not needs[0]:
        return
    x_shape, x_dtype, ws, geom = ctx.saved
    kernel, stride, out_h, out_w, ohw, kk = geom
    n, c, h, w = x_shape
    grad3 = grad.reshape(n, c, ohw)
    if (ws is not None or ctx.bufs is not None) and stride >= kernel:
        # Disjoint windows: each source pixel belongs to at most one
        # window, so the uniform spread is k*k strided assignments of the
        # scaled gradient — no patch-column buffer, no col2im.
        if ctx.bufs is None:
            spread = grad3.reshape(n, c, out_h, out_w) / kk
        else:
            spread = np.divide(
                grad3.reshape(n, c, out_h, out_w),
                kk,
                out=ctx.buffer("spread", (n, c, out_h, out_w), grad.dtype),
            )
        if ctx.bufs is None:
            grad_img = np.zeros((n, c, h, w), dtype=x_dtype)
        else:
            grad_img = ctx.buffer("grad_img", (n, c, h, w), x_dtype)
            grad_img.fill(0)
        for ky in range(kernel):
            for kx in range(kernel):
                grad_img[
                    :, :, ky : ky + stride * out_h : stride, kx : kx + stride * out_w : stride
                ] = spread
        acc(0, grad_img)
        return
    if ctx.bufs is not None:
        gcols = ctx.buffer("gcols", (n, c * kk, ohw), x_dtype)
        fold = ctx.buffer("fold", (n, c, h, w), x_dtype)
    elif ws is not None:
        gcols = ws.acquire((n, c * kk, ohw), x_dtype)
        fold = None
    else:
        gcols = np.empty((n, c * kk, ohw), dtype=x_dtype)
        fold = None
    np.divide(grad3[:, :, None, :], kk, out=gcols.reshape(n, c, kk, ohw))
    grad_img = col2im(gcols, x_shape, kernel, kernel, stride, 0, workspace=ws, padded_out=fold)
    acc(0, grad_img)
    if ws is not None:
        ws.release(gcols)
    _release_folded(ws, grad_img)


_AVG_POOL2D = register_op("avg_pool2d", _avg_pool2d_apply, _avg_pool2d_vjp)


def global_avg_pool2d(images: Tensor) -> Tensor:
    """Average each channel over all spatial positions: (N,C,H,W) -> (N,C)."""
    return images.mean(axis=(2, 3))


# ----------------------------------------------------------------------
# Legacy (seed) kernels — benchmark baselines, selected by kernel mode
# ----------------------------------------------------------------------
def _conv2d_legacy(
    images: Tensor, weight: Tensor, bias: Tensor | None, stride: int, padding: int
) -> Tensor:
    n, c_in, h, w = images.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv2d channel mismatch: input has {c_in}, weight expects {c_in_w}")
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    cols = im2col_reference(images.data, kh, kw, stride, padding)  # (N*OH*OW, C*KH*KW)
    flat_weight = weight.data.reshape(c_out, -1)  # (C_out, C*KH*KW)
    out = cols @ flat_weight.T  # (N*OH*OW, C_out)
    if bias is not None:
        out = out + bias.data
    out_data = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
    tap = getattr(_KERNEL_TAP, "fn", None)
    if tap is not None:
        tap("conv2d", out_data)

    parents = (images, weight) if bias is None else (images, weight, bias)

    def backward_fn(grad: np.ndarray) -> None:
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, c_out)  # (N*OH*OW, C_out)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_flat.sum(axis=0))
        if weight.requires_grad:
            grad_w = grad_flat.T @ cols  # (C_out, C*KH*KW)
            weight._accumulate(grad_w.reshape(weight.shape))
        if images.requires_grad:
            grad_cols = grad_flat @ flat_weight  # (N*OH*OW, C*KH*KW)
            images._accumulate(col2im_reference(grad_cols, images.shape, kh, kw, stride, padding))

    return Tensor._make(out_data, parents, backward_fn, "conv2d")


def _depthwise_conv2d_legacy(
    images: Tensor, weight: Tensor, bias: Tensor | None, stride: int, padding: int
) -> Tensor:
    n, c, h, w = images.shape
    c_w, one, kh, kw = weight.shape
    if c_w != c or one != 1:
        raise ValueError(f"depthwise weight must be (C, 1, KH, KW); got {weight.shape}")
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    cols = im2col_reference(images.data, kh, kw, stride, padding)  # (N*OH*OW, C*KH*KW)
    cols_per_channel = cols.reshape(-1, c, kh * kw)  # (N*OH*OW, C, KH*KW)
    flat_weight = weight.data.reshape(c, kh * kw)  # (C, KH*KW)
    out = np.einsum("pck,ck->pc", cols_per_channel, flat_weight)
    if bias is not None:
        out = out + bias.data
    out_data = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
    tap = getattr(_KERNEL_TAP, "fn", None)
    if tap is not None:
        tap("depthwise_conv2d", out_data)

    parents = (images, weight) if bias is None else (images, weight, bias)

    def backward_fn(grad: np.ndarray) -> None:
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, c)  # (N*OH*OW, C)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_flat.sum(axis=0))
        if weight.requires_grad:
            grad_w = np.einsum("pc,pck->ck", grad_flat, cols_per_channel)
            weight._accumulate(grad_w.reshape(weight.shape))
        if images.requires_grad:
            grad_cols = np.einsum("pc,ck->pck", grad_flat, flat_weight)
            images._accumulate(
                col2im_reference(
                    grad_cols.reshape(-1, c * kh * kw), images.shape, kh, kw, stride, padding
                )
            )

    return Tensor._make(out_data, parents, backward_fn, "depthwise_conv2d")


def _max_pool2d_legacy(images: Tensor, kernel: int, stride: int | None) -> Tensor:
    stride = stride or kernel
    n, c, h, w = images.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)

    cols = im2col_reference(images.data, kernel, kernel, stride, 0).reshape(-1, c, kernel * kernel)
    argmax = cols.argmax(axis=2)  # (N*OH*OW, C)
    out = np.take_along_axis(cols, argmax[:, :, None], axis=2)[:, :, 0]
    out_data = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
    tap = getattr(_KERNEL_TAP, "fn", None)
    if tap is not None:
        tap("max_pool2d", out_data)

    def backward_fn(grad: np.ndarray) -> None:
        if not images.requires_grad:
            return
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, c)  # (N*OH*OW, C)
        grad_cols = np.zeros_like(cols)
        np.put_along_axis(grad_cols, argmax[:, :, None], grad_flat[:, :, None], axis=2)
        images._accumulate(
            col2im_reference(
                grad_cols.reshape(-1, c * kernel * kernel), images.shape, kernel, kernel, stride, 0
            )
        )

    return Tensor._make(out_data, (images,), backward_fn, "max_pool2d")


def _avg_pool2d_legacy(images: Tensor, kernel: int, stride: int | None) -> Tensor:
    stride = stride or kernel
    n, c, h, w = images.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)

    cols = im2col_reference(images.data, kernel, kernel, stride, 0).reshape(-1, c, kernel * kernel)
    out_data = cols.mean(axis=2).reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
    tap = getattr(_KERNEL_TAP, "fn", None)
    if tap is not None:
        tap("avg_pool2d", out_data)

    def backward_fn(grad: np.ndarray) -> None:
        if not images.requires_grad:
            return
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, c)
        grad_cols = np.repeat(grad_flat[:, :, None], kernel * kernel, axis=2) / (kernel * kernel)
        images._accumulate(
            col2im_reference(
                grad_cols.reshape(-1, c * kernel * kernel), images.shape, kernel, kernel, stride, 0
            )
        )

    return Tensor._make(out_data, (images,), backward_fn, "avg_pool2d")


def batch_norm_2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    mean: np.ndarray,
    var: np.ndarray,
    eps: float,
    training: bool,
) -> Tensor:
    """Fused batch normalisation over the channel axis of NCHW inputs.

    In training mode ``mean``/``var`` must be the *batch* statistics and the
    backward pass differentiates through them (the full Ioffe & Szegedy
    gradient); in eval mode they are the running statistics and are treated
    as constants.
    """
    if x.ndim != 4:
        raise ValueError(f"batch_norm_2d expects NCHW input; got shape {x.shape}")
    if _KERNEL_MODE == "legacy":
        return _batch_norm_2d_legacy(x, gamma, beta, mean, var, eps, training)
    c = x.shape[1]
    shape = (1, c, 1, 1)
    mean_b = mean.reshape(shape).astype(x.data.dtype)
    inv_std = (1.0 / np.sqrt(var + eps)).reshape(shape).astype(x.data.dtype)
    x_hat = (x.data - mean_b) * inv_std
    out_data = gamma.data.reshape(shape) * x_hat + beta.data.reshape(shape)
    tap = getattr(_KERNEL_TAP, "fn", None)
    if tap is not None:
        tap("batch_norm_2d", out_data)

    def backward_fn(grad: np.ndarray) -> None:
        # The beta/gamma sums double as the mean statistics of the
        # training-mode input gradient (mean = sum / count, the exact op
        # np.mean performs), so each full-size product and reduction is
        # computed once and shared.
        need_x = x.requires_grad
        grad_sum = None
        if beta.requires_grad or (need_x and training):
            grad_sum = grad.sum(axis=(0, 2, 3), keepdims=True)
        if beta.requires_grad:
            beta._accumulate(grad_sum.reshape(c))
        grad_xhat_sum = None
        if gamma.requires_grad or (need_x and training):
            grad_xhat = grad * x_hat
            grad_xhat_sum = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
        if gamma.requires_grad:
            gamma._accumulate(grad_xhat_sum.reshape(c))
        if not need_x:
            return
        scale = gamma.data.reshape(shape) * inv_std
        if not training:
            x._accumulate(grad * scale)
            return
        # Full training-mode gradient: d/dx of ((x - mu(x)) / sigma(x)).
        count = grad.shape[0] * grad.shape[2] * grad.shape[3]
        grad_mean = grad_sum / count
        grad_xhat_mean = grad_xhat_sum / count
        x._accumulate(scale * (grad - grad_mean - x_hat * grad_xhat_mean))

    return Tensor._make(out_data, (x, gamma, beta), backward_fn, "batch_norm_2d")


def _batch_norm_2d_legacy(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    mean: np.ndarray,
    var: np.ndarray,
    eps: float,
    training: bool,
) -> Tensor:
    c = x.shape[1]
    shape = (1, c, 1, 1)
    mean_b = mean.reshape(shape).astype(x.data.dtype)
    inv_std = (1.0 / np.sqrt(var + eps)).reshape(shape).astype(x.data.dtype)
    x_hat = (x.data - mean_b) * inv_std
    out_data = gamma.data.reshape(shape) * x_hat + beta.data.reshape(shape)
    tap = getattr(_KERNEL_TAP, "fn", None)
    if tap is not None:
        tap("batch_norm_2d", out_data)

    def backward_fn(grad: np.ndarray) -> None:
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=(0, 2, 3)))
        if gamma.requires_grad:
            gamma._accumulate((grad * x_hat).sum(axis=(0, 2, 3)))
        if not x.requires_grad:
            return
        scale = gamma.data.reshape(shape) * inv_std
        if not training:
            x._accumulate(grad * scale)
            return
        grad_mean = grad.mean(axis=(0, 2, 3), keepdims=True)
        grad_xhat_mean = (grad * x_hat).mean(axis=(0, 2, 3), keepdims=True)
        x._accumulate(scale * (grad - grad_mean - x_hat * grad_xhat_mean))

    return Tensor._make(out_data, (x, gamma, beta), backward_fn, "batch_norm_2d")


# ----------------------------------------------------------------------
# Stateful training ops (batch-norm batch statistics, dropout rng)
# ----------------------------------------------------------------------
# These two ops advance external state inside ``apply`` — batch-norm updates
# the module's running mean/variance buffers, dropout consumes the module's
# rng stream — which is exactly why they must be *ops* and not layer-level
# Python: a compiled replay (repro.nn.compile) re-runs every op's apply each
# step, so the running statistics and the dropout mask sequence evolve
# identically to eager training.  Both are marked ``stateful`` so the planner
# never prunes them.


def batch_norm_2d_train(x: Tensor, gamma: Tensor, beta: Tensor, bn) -> Tensor:
    """Training-mode batch norm as a single stateful op.

    Computes the batch statistics, updates ``bn``'s running buffers, and
    applies the affine normalisation — the exact float sequence the
    layer-plus-:func:`batch_norm_2d` pair performs, fused into one recordable
    op.  ``bn`` is the owning :class:`~repro.nn.layers.BatchNorm2D` module.
    """
    return run_op(_BATCH_NORM_2D_TRAIN, (x, gamma, beta), {"bn": bn})


def _bn_train_apply(ctx: OpCtx, inputs, kwargs) -> np.ndarray:
    x, g, b = inputs
    bn = kwargs["bn"]
    c = x.shape[1]
    shape = (1, c, 1, 1)
    # Batch statistics + running-buffer update, verbatim from the layer.
    mean = x.mean(axis=(0, 2, 3))
    if ctx.bufs is None:
        var = x.var(axis=(0, 2, 3))
    else:
        # ``np.var`` unrolled into persistent buffers: the same sum → divide →
        # subtract → square → sum → divide sequence ``np._methods._var`` runs
        # (the mean division is bitwise-identical to ``x.mean``'s, and the
        # final divide keeps _var's intp divisor so the f8-loop-then-cast
        # rounding matches).  The centred difference is kept — it *is* the
        # x_hat numerator — which drops np.var's hidden x-sized temp and one
        # full subtract pass per step.
        d = np.subtract(x, mean.reshape(shape), out=ctx.buffer("x_hat", x.shape, x.dtype))
        sq = np.multiply(d, d, out=ctx.buffer("sq", x.shape, x.dtype))
        ssum = sq.sum(axis=(0, 2, 3))
        count = np.intp(x.shape[0] * x.shape[2] * x.shape[3])
        var = np.true_divide(ssum, count, out=ssum, casting="unsafe")
    bn.running_mean[...] = (1 - bn.momentum) * bn.running_mean + bn.momentum * mean
    bn.running_var[...] = (1 - bn.momentum) * bn.running_var + bn.momentum * var
    # Normalisation, verbatim from batch_norm_2d's fast body.
    mean_b = mean.reshape(shape).astype(x.dtype)
    inv_std = (1.0 / np.sqrt(var + bn.eps)).reshape(shape).astype(x.dtype)
    if ctx.bufs is None:
        x_hat = (x - mean_b) * inv_std
        out_data = g.reshape(shape) * x_hat + b.reshape(shape)
    else:
        x_hat = d  # already x - mean_b, computed for the variance
        x_hat *= inv_std
        out_data = np.multiply(g.reshape(shape), x_hat, out=ctx.buffer("out", x.shape, x.dtype))
        out_data += b.reshape(shape)
    tap = getattr(_KERNEL_TAP, "fn", None)
    if tap is not None:
        tap("batch_norm_2d", out_data)
    ctx.saved = (x_hat, inv_std, g, shape, c)
    return out_data


def _bn_train_vjp(ctx: OpCtx, grad, needs, acc) -> None:
    x_hat, inv_std, g, shape, c = ctx.saved
    # Same shared-sums backward as batch_norm_2d (training=True), with the
    # same beta → gamma → x contribution order.
    need_x = needs[0]
    grad_sum = None
    if needs[2] or need_x:
        grad_sum = grad.sum(axis=(0, 2, 3), keepdims=True)
    if needs[2]:
        acc(2, grad_sum.reshape(c))
    grad_xhat_sum = None
    if needs[1] or need_x:
        if ctx.bufs is None:
            grad_xhat = grad * x_hat
        else:
            grad_xhat = np.multiply(grad, x_hat, out=ctx.buffer("gxh", grad.shape, grad.dtype))
        grad_xhat_sum = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
    if needs[1]:
        acc(1, grad_xhat_sum.reshape(c))
    if not need_x:
        return
    scale = g.reshape(shape) * inv_std
    count = grad.shape[0] * grad.shape[2] * grad.shape[3]
    grad_mean = grad_sum / count
    grad_xhat_mean = grad_xhat_sum / count
    if ctx.bufs is None:
        acc(0, scale * (grad - grad_mean - x_hat * grad_xhat_mean))
    else:
        # The identical elementwise sequence as the expression above, staged
        # through two persistent buffers (``gxh`` is dead once summed).
        gx = np.subtract(grad, grad_mean, out=ctx.buffer("gx", grad.shape, grad.dtype))
        term = np.multiply(x_hat, grad_xhat_mean, out=ctx.buffer("gxh", grad.shape, grad.dtype))
        gx -= term
        gx *= scale
        acc(0, gx)


_BATCH_NORM_2D_TRAIN = register_op(
    "batch_norm_2d_train", _bn_train_apply, _bn_train_vjp, stateful=True
)


def dropout_train(x: Tensor, module) -> Tensor:
    """Training-mode inverted dropout as a single stateful op.

    Draws the keep mask from ``module.rng`` inside ``apply`` so a compiled
    replay consumes the rng stream exactly like eager training.  ``module``
    is the owning :class:`~repro.nn.layers.Dropout`.
    """
    return run_op(_DROPOUT_TRAIN, (x,), {"module": module})


def _dropout_apply(ctx: OpCtx, inputs, kwargs) -> np.ndarray:
    (x,) = inputs
    module = kwargs["module"]
    keep = 1.0 - module.rate
    mask = (module.rng.random(x.shape) < keep).astype(np.float32) / keep
    if ctx.bufs is None:
        out = x * mask
    else:
        out = np.multiply(x, mask, out=ctx.buffer("out", x.shape, x.dtype))
    ctx.saved = mask
    return out


def _dropout_vjp(ctx: OpCtx, grad, needs, acc) -> None:
    if not needs[0]:
        return
    if ctx.bufs is None:
        acc(0, grad * ctx.saved)
    else:
        acc(0, np.multiply(grad, ctx.saved, out=ctx.buffer("gx", grad.shape, grad.dtype)))


_DROPOUT_TRAIN = register_op("dropout_train", _dropout_apply, _dropout_vjp, stateful=True)
