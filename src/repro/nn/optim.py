"""Optimisers and learning-rate schedulers."""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "RMSProp",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "ExponentialLR",
    "get_optimizer",
]


class Optimizer:
    """Base optimiser: owns a parameter list and a mutable learning rate."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive; got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for p in self.params:
            p.zero_grad()

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale gradients so their global L2 norm is at most ``max_norm``.

        Returns the pre-clipping norm, useful for logging/divergence checks.
        The per-parameter squared norm is a single BLAS dot on the raveled
        gradient, accumulated across parameters in float64 — no float64 copy
        of any gradient is ever materialised.
        """
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                flat = p.grad.ravel()
                total += float(np.dot(flat, flat))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for p in self.params:
                if p.grad is not None:
                    p.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, Nesterov, and weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]
        self._scratch2 = [np.empty_like(p.data) for p in self.params] if nesterov else []

    def step(self) -> None:
        for i, (p, vel, buf) in enumerate(zip(self.params, self._velocity, self._scratch)):
            if p.grad is None:
                continue
            # buf holds the effective gradient, then is reused for the update;
            # every op below writes in place so the step allocates nothing.
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=buf)
                buf += p.grad
            else:
                np.copyto(buf, p.grad)
            if self.momentum:
                vel *= self.momentum
                vel += buf
                if self.nesterov:
                    # update = grad_eff + momentum * velocity
                    np.multiply(vel, self.momentum, out=self._scratch2[i])
                    buf += self._scratch2[i]
                else:
                    np.copyto(buf, vel)
            buf *= self.lr
            p.data -= buf


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._decayed = [np.empty_like(p.data) for p in self.params] if weight_decay else []
        self._scratch = [np.empty_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for i, (p, m, v, buf) in enumerate(zip(self.params, self._m, self._v, self._scratch)):
            if p.grad is None:
                continue
            if self.weight_decay:
                grad = self._decayed[i]
                np.multiply(p.data, self.weight_decay, out=grad)
                grad += p.grad
            else:
                grad = p.grad
            # Moment updates and the final step all go through `buf` with
            # out= ufuncs, so nothing is allocated per step.
            m *= self.beta1
            np.multiply(grad, 1 - self.beta1, out=buf)
            m += buf
            v *= self.beta2
            np.multiply(grad, grad, out=buf)
            buf *= 1 - self.beta2
            v += buf
            # update = lr * (m / bc1) / (sqrt(v / bc2) + eps)
            np.divide(v, bc2, out=buf)
            np.sqrt(buf, out=buf)
            buf += self.eps
            np.divide(m, buf, out=buf)
            buf *= self.lr / bc1
            p.data -= buf


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        if self.weight_decay:
            for p, buf in zip(self.params, self._scratch):
                np.multiply(p.data, self.lr * self.weight_decay, out=buf)
                p.data -= buf
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


class RMSProp(Optimizer):
    """RMSProp with optional momentum."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        rho: float = 0.9,
        eps: float = 1e-8,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.rho = rho
        self.eps = eps
        self.momentum = momentum
        self._sq = [np.zeros_like(p.data) for p in self.params]
        self._vel = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, sq, vel, buf in zip(self.params, self._sq, self._vel, self._scratch):
            if p.grad is None:
                continue
            sq *= self.rho
            np.multiply(p.grad, p.grad, out=buf)
            buf *= 1 - self.rho
            sq += buf
            # update = grad / (sqrt(sq) + eps), built in place in buf
            np.sqrt(sq, out=buf)
            buf += self.eps
            np.divide(p.grad, buf, out=buf)
            if self.momentum:
                vel *= self.momentum
                vel += buf
                np.multiply(vel, self.lr, out=buf)
            else:
                buf *= self.lr
            p.data -= buf


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def get_lr(self) -> float:
        t = min(self.epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + np.cos(np.pi * t))


class ExponentialLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma**self.epoch


_OPTIMIZERS = {"sgd": SGD, "adam": Adam, "adamw": AdamW, "rmsprop": RMSProp}


def get_optimizer(name: str, params: list[Parameter], **kwargs: object) -> Optimizer:
    """Build an optimiser by registry name."""
    try:
        cls = _OPTIMIZERS[name]
    except KeyError:
        raise KeyError(f"unknown optimizer {name!r}; choices: {sorted(_OPTIMIZERS)}") from None
    return cls(params, **kwargs)  # type: ignore[arg-type]
