"""Plan & execute: compile a recorded tape into a static training step.

This is the *plan* stage of the record → plan → execute pipeline
(:mod:`repro.nn.tape` is the record stage).  :func:`compile_tape` takes one
recorded training step — the tape's op entries plus the backward topological
order captured by the step's ``backward()`` call — and emits a
:class:`CompiledStep`: a static schedule that replays the identical op
sequence without rebuilding the graph.  Steady-state replay does

- **no graph construction** — no ``Tensor`` wrappers, no backward closures,
  no per-step topological sort; just two flat lists of ``(apply, ctx, slots)``
  and ``(vjp, ctx, slots)`` steps,
- **no hot-loop allocation** — each entry owns a persistent
  :class:`~repro.nn.ops.OpCtx` whose output buffers are reused every step, the
  kernel ops keep drawing their scratch from the :mod:`repro.nn.workspace`
  arena, and gradients accumulate into preplanned per-slot buffers,
- **dead-adjoint elimination** — an entry's ``needs`` flags are frozen from
  ``requires_grad`` at record time, so cotangents for constant inputs are
  never computed.

Bitwise contract
----------------
A replayed step runs the same ``apply``/``vjp`` bodies, on the same values,
in the same order as the eager step it was recorded from — forward in
recorded order, backward in the captured DFS topological order (float32
``+=`` accumulation is order-sensitive, so the order *is* part of the
contract).  Gradient slots mirror ``Tensor._accumulate`` exactly: the first
contribution of a step is a copy, later ones are in-place ``+=``.  The
equivalence is locked by ``tests/nn/test_compiled_tape.py`` for all registry
networks.

Structural limits
-----------------
Graphs are rejected with :exc:`CompileError` — and the trainer falls back to
eager, results unchanged — when they contain an op recorded through a legacy
closure instead of a registry :class:`~repro.nn.ops.OpDef`, or a non-scalar
leaf constant whose value the planner cannot prove step-invariant (e.g. a
distillation teacher's per-batch probabilities).  Scalar leaves (shape-derived
factors like ``1/N``) are assumed step-invariant for a fixed geometry.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .ops import OpCtx
from .tape import Tape
from .tensor import Tensor

__all__ = ["CompileError", "CompiledStep", "compile_tape"]


class CompileError(RuntimeError):
    """The recorded step cannot be compiled; callers should stay eager."""


class _SlotSpace:
    """Assigns one value slot per distinct tensor seen during planning."""

    def __init__(self) -> None:
        self.slot_of: dict[int, int] = {}
        self.tensors: list[Tensor] = []  # strong refs keep id()s unambiguous

    def slot(self, tensor: Tensor) -> int:
        key = id(tensor)
        existing = self.slot_of.get(key)
        if existing is not None:
            return existing
        index = len(self.tensors)
        self.slot_of[key] = index
        self.tensors.append(tensor)
        return index


class CompiledStep:
    """A static, replayable training step.

    Produced by :func:`compile_tape`; drive it as::

        loss_arr, logits_arr = step.forward((xb, targets))
        step.backward()          # assigns .grad on the bound parameters

    ``forward`` feeds must match the recorded shapes — the trainer keys its
    compile cache on the feed shapes and re-records when they change.
    """

    def __init__(
        self,
        forward_steps: list,
        backward_steps: list,
        feed_bindings: list[tuple[int, int]],
        feed_shapes: list[tuple[int, ...]],
        param_slots: list,
        vals: list,
        grad_dtypes: list,
        loss_slot: int,
        logits_slot: int,
        fwd_names: "list[str] | None" = None,
        bwd_names: "list[str] | None" = None,
    ) -> None:
        self._fwd = forward_steps
        self._bwd = backward_steps
        self._feed_bindings = feed_bindings
        self.feed_shapes = tuple(feed_shapes)
        self._param_slots = param_slots
        self._vals = vals
        self._grad_dtypes = grad_dtypes
        self._loss_slot = loss_slot
        self._logits_slot = logits_slot
        n = len(vals)
        self._grads: list[np.ndarray | None] = [None] * n
        self._written = [0] * n
        self._token = 0
        self._ones = np.ones_like(np.asarray(vals[loss_slot]))
        # Replay accounting, surfaced through trainer telemetry.
        self.steps_replayed = 0
        # Per-op profiling: None (the default) keeps forward/backward on the
        # branch-free armed loops; enable_profile() swaps in the timed twins.
        self.fwd_names = tuple(fwd_names or ("?",) * len(forward_steps))
        self.bwd_names = tuple(bwd_names or ("?",) * len(backward_steps))
        self._profile = None

    # -- introspection -------------------------------------------------
    @property
    def n_entries(self) -> int:
        return len(self._fwd)

    @property
    def n_backward(self) -> int:
        return len(self._bwd)

    @property
    def n_params(self) -> int:
        return len(self._param_slots)

    def __repr__(self) -> str:
        return (
            f"CompiledStep(entries={self.n_entries}, backward={self.n_backward}, "
            f"params={self.n_params}, feeds={len(self.feed_shapes)})"
        )

    # -- profiling -----------------------------------------------------
    @property
    def profile(self):
        """The live :class:`~repro.nn.profiler.StepProfile`, or ``None``."""
        return self._profile

    def enable_profile(self):
        """Arm per-op timing on subsequent replays (idempotent).

        Replayed values stay bitwise-identical — the profiled loops run the
        same ``apply``/``vjp`` bodies in the same order, only bracketed by
        ``perf_counter`` reads.  The unprofiled loops are untouched: the
        only cost when disabled is one ``is None`` check per ``forward``/
        ``backward`` *call*, never per op.
        """
        if self._profile is None:
            from .profiler import StepProfile

            self._profile = StepProfile(self.fwd_names, self.bwd_names)
        return self._profile

    def disable_profile(self):
        """Disarm profiling; returns the accumulated profile (or ``None``)."""
        profile, self._profile = self._profile, None
        return profile

    # -- execution -----------------------------------------------------
    def forward(self, feeds: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """Replay the forward schedule on fresh feed arrays.

        Returns ``(loss, logits)`` as raw arrays (the loss is 0-d).
        """
        if self._profile is not None:
            return self._forward_profiled(feeds)
        vals = self._vals
        for arr, shape in zip(feeds, self.feed_shapes):
            if arr.shape != shape:
                raise ValueError(f"feed shape {arr.shape} does not match compiled {shape}")
        for feed_index, slot in self._feed_bindings:
            vals[slot] = feeds[feed_index]
        for param, slot in self._param_slots:
            # Read .data fresh each step: load_state_dict swaps the array.
            vals[slot] = param.data
        for apply, ctx, in_slots, out_slot, kwargs, cleanup in self._fwd:
            k = len(in_slots)
            if k == 1:
                inputs = (vals[in_slots[0]],)
            elif k == 2:
                inputs = (vals[in_slots[0]], vals[in_slots[1]])
            elif k == 3:
                inputs = (vals[in_slots[0]], vals[in_slots[1]], vals[in_slots[2]])
            else:
                inputs = tuple(vals[s] for s in in_slots)
            vals[out_slot] = apply(ctx, inputs, kwargs)
            if cleanup is not None:
                cleanup(ctx)
        return vals[self._loss_slot], vals[self._logits_slot]

    def _forward_profiled(self, feeds: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """The timed twin of :meth:`forward` — identical ops, identical order."""
        from time import perf_counter

        profile = self._profile
        vals = self._vals
        for arr, shape in zip(feeds, self.feed_shapes):
            if arr.shape != shape:
                raise ValueError(f"feed shape {arr.shape} does not match compiled {shape}")
        for feed_index, slot in self._feed_bindings:
            vals[slot] = feeds[feed_index]
        for param, slot in self._param_slots:
            vals[slot] = param.data
        fwd_s, fwd_calls = profile.fwd_s, profile.fwd_calls
        for index, (apply, ctx, in_slots, out_slot, kwargs, cleanup) in enumerate(self._fwd):
            inputs = tuple(vals[s] for s in in_slots)
            t0 = perf_counter()
            vals[out_slot] = apply(ctx, inputs, kwargs)
            if cleanup is not None:
                cleanup(ctx)
            fwd_s[index] += perf_counter() - t0
            fwd_calls[index] += 1
        profile.steps += 1
        return vals[self._loss_slot], vals[self._logits_slot]

    def _acc(self, slot: int, g: np.ndarray) -> None:
        """Accumulate a cotangent into a slot's persistent gradient buffer.

        First contribution per step copies (``Tensor._accumulate`` does
        ``astype(dtype, copy=True)``), later ones add in place — the identical
        value sequence, without the per-step allocation.
        """
        buf = self._grads[slot]
        if buf is None or buf.shape != g.shape:
            buf = self._grads[slot] = np.empty(g.shape, dtype=self._grad_dtypes[slot])
        if self._written[slot] != self._token:
            np.copyto(buf, g)
            self._written[slot] = self._token
        else:
            buf += g

    def backward(self) -> None:
        """Replay the backward schedule; assigns ``.grad`` on bound params."""
        if self._profile is not None:
            return self._backward_profiled()
        self._token += 1
        self._acc(self._loss_slot, self._ones)
        grads = self._grads
        written = self._written
        token = self._token
        for vjp, ctx, out_slot, needs, acc in self._bwd:
            if written[out_slot] != token:
                # Mirrors eager's ``node.grad is None`` skip.
                continue
            vjp(ctx, grads[out_slot], needs, acc)
        for param, slot in self._param_slots:
            if written[slot] == token:
                param.grad = grads[slot]

    def _backward_profiled(self) -> None:
        """The timed twin of :meth:`backward` — identical vjps, identical order."""
        from time import perf_counter

        profile = self._profile
        self._token += 1
        self._acc(self._loss_slot, self._ones)
        grads = self._grads
        written = self._written
        token = self._token
        bwd_s, bwd_calls = profile.bwd_s, profile.bwd_calls
        for index, (vjp, ctx, out_slot, needs, acc) in enumerate(self._bwd):
            if written[out_slot] != token:
                continue
            t0 = perf_counter()
            vjp(ctx, grads[out_slot], needs, acc)
            bwd_s[index] += perf_counter() - t0
            bwd_calls[index] += 1
        for param, slot in self._param_slots:
            if written[slot] == token:
                param.grad = grads[slot]


def compile_tape(
    tape: Tape,
    loss: Tensor,
    logits: Tensor,
    feeds: Sequence[np.ndarray],
) -> CompiledStep:
    """Plan a :class:`CompiledStep` from one recorded training step.

    Parameters
    ----------
    tape:
        The :class:`~repro.nn.tape.Tape` that observed the step, including
        the backward topological order (``backward()`` must have run inside
        the recording scope).
    loss:
        The scalar loss tensor the recorded ``backward()`` was seeded from.
    logits:
        The model output tensor (returned by every replayed forward).
    feeds:
        The per-step input arrays of the recorded step, by object identity —
        typically ``(batch_images, batch_targets)``.  Leaf tensors whose
        ``.data`` *is* one of these arrays become feed slots; all other
        non-parameter leaves must be scalars, or compilation is refused.

    Raises
    ------
    CompileError
        If the step contains ops outside the registry, non-scalar constants,
        or no recorded backward.
    """
    if not tape.entries:
        raise CompileError("tape recorded no registry ops")
    if tape.topo is None:
        raise CompileError("no backward() ran inside the recording scope")
    if tape.root is not loss:
        raise CompileError("recorded backward root is not the loss tensor")

    entry_index_of = {id(e.out): i for i, e in enumerate(tape.entries)}
    if id(loss) not in entry_index_of:
        raise CompileError(f"loss is not a registry-op output (op={loss._op or 'leaf'!r})")
    if id(logits) not in entry_index_of:
        raise CompileError(f"logits is not a registry-op output (op={logits._op or 'leaf'!r})")

    space = _SlotSpace()
    feed_list = list(feeds)
    feed_shapes = [np.asarray(f).shape for f in feed_list]
    feed_bindings: list[tuple[int, int]] = []
    param_slots: list[tuple[Tensor, int]] = []
    const_slots: list[tuple[int, np.ndarray]] = []
    bound: set[int] = set()

    def bind_leaf(tensor: Tensor) -> None:
        slot = space.slot(tensor)
        if slot in bound:
            return
        bound.add(slot)
        if tensor._backward_fn is not None:
            raise CompileError(
                f"op {tensor._op!r} was recorded through a legacy closure, not the op registry"
            )
        if tensor.requires_grad:
            param_slots.append((tensor, slot))
            return
        for i, feed in enumerate(feed_list):
            if tensor.data is feed:
                feed_bindings.append((i, slot))
                return
        if tensor.data.size != 1:
            raise CompileError(
                f"non-scalar constant of shape {tensor.shape} cannot be proven step-invariant"
            )
        const_slots.append((slot, tensor.data))

    # Forward schedule: every recorded entry, in recorded (eager) order.
    planned_fwd: list[tuple] = []
    entry_out_slots: list[int] = []
    for entry in tape.entries:
        for parent in entry.inputs:
            if id(parent) not in entry_index_of:
                bind_leaf(parent)
        in_slots = tuple(space.slot(t) for t in entry.inputs)
        out_slot = space.slot(entry.out)
        bound.add(out_slot)
        planned_fwd.append((entry, in_slots, out_slot))
        entry_out_slots.append(out_slot)

    # The opaque-op check must also cover closure nodes reachable from the
    # loss/logits ancestry that never passed through an entry input list.
    stack = [loss, logits]
    seen: set[int] = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if id(node) in entry_index_of:
            stack.extend(tape.entries[entry_index_of[id(node)]].inputs)
        elif node._backward_fn is not None:
            raise CompileError(
                f"op {node._op!r} was recorded through a legacy closure, not the op registry"
            )

    # Backward schedule: the captured DFS topological order, reversed,
    # restricted to registry-op outputs (leaves receive their gradients
    # through the accumulation callbacks).
    step = [None]  # resolved after CompiledStep exists; closures capture the cell

    def make_acc(in_slots: tuple[int, ...]):
        def acc(i: int, g: np.ndarray) -> None:
            step[0]._acc(in_slots[i], g)

        return acc

    ctxs = [OpCtx(persistent=True) for _ in tape.entries]
    backward_steps: list[tuple] = []
    bwd_names: list[str] = []
    backward_out_ids: set[int] = set()
    for node in reversed(tape.topo):
        idx = entry_index_of.get(id(node))
        if idx is None:
            if node._backward_fn is not None:
                raise CompileError(
                    f"op {node._op!r} was recorded through a legacy closure, not the op registry"
                )
            continue
        entry = tape.entries[idx]
        needs = tuple(t.requires_grad for t in entry.inputs)
        in_slots = tuple(space.slot(t) for t in entry.inputs)
        backward_steps.append(
            (entry.op.vjp, ctxs[idx], space.slot(node), needs, make_acc(in_slots))
        )
        bwd_names.append(entry.op.name)
        backward_out_ids.add(id(node))

    # Entries outside the backward graph never run a vjp, so their workspace
    # cleanup (normally the vjp's job) runs right after apply instead.
    forward_steps: list[tuple] = []
    for idx, (entry, in_slots, out_slot) in enumerate(planned_fwd):
        cleanup = None
        if id(entry.out) not in backward_out_ids and entry.op.discard is not None:
            cleanup = entry.op.discard
        forward_steps.append(
            (entry.op.apply, ctxs[idx], in_slots, out_slot, entry.kwargs, cleanup)
        )

    vals: list = [None] * len(space.tensors)
    for slot, value in const_slots:
        vals[slot] = value
    loss_slot = space.slot(loss)
    vals[loss_slot] = loss.data  # seeds the ones template in CompiledStep
    grad_dtypes = [t.data.dtype for t in space.tensors]

    compiled = CompiledStep(
        forward_steps,
        backward_steps,
        feed_bindings,
        feed_shapes,
        param_slots,
        vals,
        grad_dtypes,
        loss_slot,
        space.slot(logits),
        fwd_names=[entry.op.name for entry, _, _ in planned_fwd],
        bwd_names=bwd_names,
    )
    step[0] = compiled
    return compiled
