"""Weight initialisers.

Seeded, explicit initialisers so that every experiment in the study is exactly
reproducible: the paper averages 20 repetitions per configuration, and our
harness derives one initialiser seed per repetition.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "he_normal",
    "he_uniform",
    "xavier_normal",
    "xavier_uniform",
    "lecun_normal",
    "zeros",
    "ones",
    "get_initializer",
]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional weight shapes."""
    if len(shape) == 2:  # Dense: (in, out)
        return shape[0], shape[1]
    if len(shape) == 4:  # Conv: (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    size = int(np.prod(shape))
    return size, size


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal — the standard choice for ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in + fan_out, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def lecun_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(1.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:  # noqa: ARG001
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:  # noqa: ARG001
    return np.ones(shape, dtype=np.float32)


_INITIALIZERS = {
    "he_normal": he_normal,
    "he_uniform": he_uniform,
    "xavier_normal": xavier_normal,
    "xavier_uniform": xavier_uniform,
    "lecun_normal": lecun_normal,
    "zeros": zeros,
    "ones": ones,
}


def get_initializer(name: str):
    """Look up an initialiser by name; raises ``KeyError`` with choices listed."""
    try:
        return _INITIALIZERS[name]
    except KeyError:
        raise KeyError(f"unknown initializer {name!r}; choices: {sorted(_INITIALIZERS)}") from None
