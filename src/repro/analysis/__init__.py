"""``repro.analysis`` — mechanism analyses behind the paper's findings.

Quantifies *why* the study's results come out the way they do: noise
memorization (the failure mode TDFM techniques fight), ensemble diversity
(why majority voting wins), and per-class AD breakdowns (where the damage
lands).
"""

from .breakdown import ClassADBreakdown, per_class_accuracy_delta
from .diversity import (
    DiversityReport,
    analyze_ensemble,
    pairwise_disagreement,
    q_statistic,
    simultaneous_failure_rate,
)
from .memorization import MemorizationReport, measure_memorization
from .noise_estimation import (
    NoiseEstimate,
    cross_validated_probabilities,
    estimate_noise,
)

__all__ = [
    "NoiseEstimate",
    "cross_validated_probabilities",
    "estimate_noise",
    "MemorizationReport",
    "measure_memorization",
    "DiversityReport",
    "analyze_ensemble",
    "pairwise_disagreement",
    "q_statistic",
    "simultaneous_failure_rate",
    "ClassADBreakdown",
    "per_class_accuracy_delta",
]
