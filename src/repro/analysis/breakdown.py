"""Per-class AD breakdown.

The headline AD (paper §III-C) is an aggregate over all test inputs; this
module decomposes it per class, exposing *which* classes faulty training
data breaks — the view behind the paper's Fig. 1 anecdote, where one
mislabelled model flips normal↔pneumonia in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ClassADBreakdown", "per_class_accuracy_delta"]


@dataclass(frozen=True)
class ClassADBreakdown:
    """AD decomposed per true class."""

    per_class_ad: np.ndarray  # NaN for classes without golden-correct inputs
    per_class_support: np.ndarray  # golden-correct counts per class
    overall_ad: float

    def worst_classes(self, top: int = 3) -> list[tuple[int, float]]:
        """The ``top`` classes with the highest AD, as (class, AD) pairs."""
        valid = [
            (cls, float(ad))
            for cls, ad in enumerate(self.per_class_ad)
            if not np.isnan(ad)
        ]
        return sorted(valid, key=lambda pair: pair[1], reverse=True)[:top]

    def __str__(self) -> str:
        worst = ", ".join(f"class {c}: {ad:.1%}" for c, ad in self.worst_classes())
        return f"overall AD {self.overall_ad:.1%}; worst classes: {worst}"


def per_class_accuracy_delta(
    golden_predictions: np.ndarray,
    faulty_predictions: np.ndarray,
    labels: np.ndarray,
    num_classes: int,
) -> ClassADBreakdown:
    """Decompose AD per true class.

    For each class ``c``, the class AD is the fraction of golden-correct
    inputs of class ``c`` that the faulty model misclassifies.  Classes with
    no golden-correct inputs get NaN (no denominator).
    """
    golden_predictions = np.asarray(golden_predictions)
    faulty_predictions = np.asarray(faulty_predictions)
    labels = np.asarray(labels)
    if not (len(golden_predictions) == len(faulty_predictions) == len(labels)):
        raise ValueError("prediction and label arrays differ in length")

    golden_correct = golden_predictions == labels
    broken = golden_correct & (faulty_predictions != labels)

    per_class_ad = np.full(num_classes, np.nan)
    support = np.zeros(num_classes, dtype=np.int64)
    for cls in range(num_classes):
        cls_correct = golden_correct & (labels == cls)
        support[cls] = int(cls_correct.sum())
        if support[cls]:
            per_class_ad[cls] = float(broken[labels == cls].sum() / support[cls])

    overall = float(broken.sum() / golden_correct.sum()) if golden_correct.any() else 0.0
    return ClassADBreakdown(per_class_ad=per_class_ad, per_class_support=support, overall_ad=overall)
