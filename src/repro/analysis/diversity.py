"""Ensemble-diversity analysis.

The paper attributes the ensemble's resilience to its members' architectural
diversity: "the ensemble can tolerate faults provided the majority of the
individual models do not misclassify simultaneously" (§IV-B).  This module
measures that property with the standard diversity statistics of the
ensemble literature: pairwise disagreement, the Q-statistic, and the
simultaneous-failure rate that directly bounds majority-vote damage.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..mitigation.ensemble import EnsembleFitted

__all__ = [
    "DiversityReport",
    "pairwise_disagreement",
    "q_statistic",
    "simultaneous_failure_rate",
    "analyze_ensemble",
]


def pairwise_disagreement(pred_a: np.ndarray, pred_b: np.ndarray) -> float:
    """Fraction of inputs where two members predict different classes."""
    pred_a = np.asarray(pred_a)
    pred_b = np.asarray(pred_b)
    if pred_a.shape != pred_b.shape:
        raise ValueError("prediction arrays differ in shape")
    return float((pred_a != pred_b).mean())


def q_statistic(pred_a: np.ndarray, pred_b: np.ndarray, labels: np.ndarray) -> float:
    """Yule's Q-statistic of two members' correctness patterns.

    ``Q = (N11·N00 − N01·N10) / (N11·N00 + N01·N10)`` where ``Nxy`` counts
    inputs that member A classifies correctly(x=1)/incorrectly(x=0) and member
    B correctly(y=1)/incorrectly(y=0).  Q near 1 means correlated errors
    (low diversity); Q near 0 or negative means independent/complementary
    errors (high diversity).  Returns 0 for degenerate all-agree patterns.
    """
    a_correct = np.asarray(pred_a) == np.asarray(labels)
    b_correct = np.asarray(pred_b) == np.asarray(labels)
    n11 = float((a_correct & b_correct).sum())
    n00 = float((~a_correct & ~b_correct).sum())
    n10 = float((a_correct & ~b_correct).sum())
    n01 = float((~a_correct & b_correct).sum())
    denominator = n11 * n00 + n01 * n10
    if denominator == 0:
        return 0.0
    return (n11 * n00 - n01 * n10) / denominator


def simultaneous_failure_rate(member_predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of inputs where a majority of members fail *together*.

    This is exactly the condition under which majority voting breaks
    (paper §IV-B): with M members, the vote errs only when > M/2 are wrong.
    """
    member_predictions = np.asarray(member_predictions)
    if member_predictions.ndim != 2:
        raise ValueError("member_predictions must be (M, N)")
    wrong = member_predictions != np.asarray(labels)[None, :]
    majority = member_predictions.shape[0] / 2
    return float((wrong.sum(axis=0) > majority).mean())


@dataclass(frozen=True)
class DiversityReport:
    """Aggregated diversity statistics of a fitted ensemble."""

    member_accuracies: dict[str, float]
    mean_pairwise_disagreement: float
    mean_q_statistic: float
    simultaneous_failure_rate: float
    ensemble_accuracy: float

    def __str__(self) -> str:
        return (
            f"disagreement={self.mean_pairwise_disagreement:.1%}, "
            f"Q={self.mean_q_statistic:.2f}, simultaneous failures="
            f"{self.simultaneous_failure_rate:.1%}, ensemble accuracy="
            f"{self.ensemble_accuracy:.1%}"
        )


def analyze_ensemble(
    fitted: EnsembleFitted, images: np.ndarray, labels: np.ndarray
) -> DiversityReport:
    """Compute the full diversity report of an ensemble on a test set."""
    labels = np.asarray(labels)
    member_preds = {m.name: m.predict(images) for m in fitted.members}
    stacked = np.stack(list(member_preds.values()))

    pairs = list(combinations(member_preds.values(), 2))
    disagreements = [pairwise_disagreement(a, b) for a, b in pairs]
    q_values = [q_statistic(a, b, labels) for a, b in pairs]

    ensemble_pred = fitted.predict(images)
    return DiversityReport(
        member_accuracies={
            name: float((pred == labels).mean()) for name, pred in member_preds.items()
        },
        mean_pairwise_disagreement=float(np.mean(disagreements)) if disagreements else 0.0,
        mean_q_statistic=float(np.mean(q_values)) if q_values else 0.0,
        simultaneous_failure_rate=simultaneous_failure_rate(stacked, labels),
        ensemble_accuracy=float((ensemble_pred == labels).mean()),
    )
