"""Label-noise estimation via confident learning (cleanlab-style).

The paper assumes the injected fault rate is known (it controls the
injection); real practitioners face the inverse problem — *how noisy is my
training data?*  This module implements the core of confident learning
(Northcutt et al., cited as [12] in the paper): cross-validated out-of-sample
predicted probabilities, per-class confidence thresholds, and the confident
joint between observed and estimated-true labels, yielding a noise-rate
estimate and a ranked list of suspect examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import ArrayDataset
from ..mitigation.base import TrainingBudget
from ..models.registry import build_model
from ..nn import Trainer
from ..nn.losses import CrossEntropy
from ..nn.trainer import predict_proba

__all__ = ["NoiseEstimate", "cross_validated_probabilities", "estimate_noise"]


@dataclass(frozen=True)
class NoiseEstimate:
    """Outcome of confident-learning noise estimation."""

    estimated_noise_rate: float
    suspect_indices: np.ndarray  # ranked, most-suspect first
    confident_joint: np.ndarray  # (K, K): observed label x estimated true label
    class_thresholds: np.ndarray  # (K,) mean self-confidence per observed class

    def precision_against(self, true_fault_indices: np.ndarray, top: int | None = None) -> float:
        """Fraction of (top-ranked) suspects that really were mislabelled."""
        suspects = self.suspect_indices if top is None else self.suspect_indices[:top]
        if len(suspects) == 0:
            return 0.0
        truth = set(np.asarray(true_fault_indices).tolist())
        return float(np.mean([int(idx) in truth for idx in suspects]))

    def recall_against(self, true_fault_indices: np.ndarray) -> float:
        """Fraction of truly mislabelled examples flagged as suspects."""
        truth = np.asarray(true_fault_indices)
        if len(truth) == 0:
            return 0.0
        flagged = set(self.suspect_indices.tolist())
        return float(np.mean([int(idx) in flagged for idx in truth]))

    def __str__(self) -> str:
        return (
            f"estimated noise rate {self.estimated_noise_rate:.1%} "
            f"({len(self.suspect_indices)} suspect examples)"
        )


def cross_validated_probabilities(
    dataset: ArrayDataset,
    model_name: str,
    budget: TrainingBudget,
    rng: np.random.Generator,
    folds: int = 3,
) -> np.ndarray:
    """Out-of-sample predicted probabilities via K-fold cross-validation.

    Each fold's examples receive probabilities from a model trained on the
    *other* folds, so memorized (possibly wrong) labels cannot vouch for
    themselves — the property confident learning relies on.
    """
    if folds < 2:
        raise ValueError("folds must be >= 2")
    n = len(dataset)
    if n < folds:
        raise ValueError(f"dataset of {n} examples cannot be split into {folds} folds")
    order = rng.permutation(n)
    fold_of = np.empty(n, dtype=np.int64)
    for position, index in enumerate(order):
        fold_of[index] = position % folds

    probabilities = np.zeros((n, dataset.num_classes), dtype=np.float32)
    for fold in range(folds):
        holdout = fold_of == fold
        train_subset = dataset.subset(np.flatnonzero(~holdout), f"cv-train-{fold}")
        model = build_model(
            model_name,
            image_shape=dataset.image_shape,
            num_classes=dataset.num_classes,
            width=budget.width,
            rng=np.random.default_rng(rng.integers(0, 2**63)),
        )
        optimizer = budget.make_optimizer(model.parameters())
        optimizer.lr *= getattr(model, "lr_multiplier", 1.0)
        trainer = Trainer(
            model,
            CrossEntropy(),
            optimizer,
            epochs=budget.epochs,
            batch_size=budget.batch_size,
            rng=np.random.default_rng(rng.integers(0, 2**63)),
            clip_norm=budget.clip_norm,
        )
        trainer.fit(train_subset.images, train_subset.one_hot_labels())
        probabilities[holdout] = predict_proba(model, dataset.images[holdout])
    return probabilities


def estimate_noise(
    dataset: ArrayDataset,
    model_name: str = "convnet",
    budget: TrainingBudget | None = None,
    rng: np.random.Generator | None = None,
    folds: int = 3,
    probabilities: np.ndarray | None = None,
) -> NoiseEstimate:
    """Estimate the mislabelling rate of a dataset with confident learning.

    Pass precomputed out-of-sample ``probabilities`` to skip cross-validation
    (useful for tests and for reusing expensive CV runs).
    """
    budget = budget or TrainingBudget()
    rng = rng if rng is not None else np.random.default_rng()
    if probabilities is None:
        probabilities = cross_validated_probabilities(dataset, model_name, budget, rng, folds)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.shape != (len(dataset), dataset.num_classes):
        raise ValueError(
            f"probabilities shape {probabilities.shape} does not match dataset "
            f"({len(dataset)}, {dataset.num_classes})"
        )

    labels = dataset.labels
    k = dataset.num_classes

    # Per-class confidence threshold: mean predicted probability of class j
    # among examples *observed* as j (Northcutt et al., eq. 2).
    thresholds = np.zeros(k)
    for cls in range(k):
        mask = labels == cls
        thresholds[cls] = probabilities[mask, cls].mean() if mask.any() else 1.0

    # Confident joint: example counts by (observed label, estimated true label),
    # where the estimated true label is the most probable class among those
    # whose probability clears its threshold.
    above = probabilities >= thresholds[None, :]
    candidate_prob = np.where(above, probabilities, -np.inf)
    has_candidate = above.any(axis=1)
    estimated_true = candidate_prob.argmax(axis=1)

    confident_joint = np.zeros((k, k), dtype=np.int64)
    np.add.at(
        confident_joint,
        (labels[has_candidate], estimated_true[has_candidate]),
        1,
    )

    off_diagonal = confident_joint.sum() - np.trace(confident_joint)
    total = max(confident_joint.sum(), 1)
    noise_rate = float(off_diagonal / total)

    # Suspects: confidently estimated as a different class, ranked by margin.
    suspect_mask = has_candidate & (estimated_true != labels)
    margins = probabilities[np.arange(len(dataset)), estimated_true] - probabilities[
        np.arange(len(dataset)), labels
    ]
    suspects = np.flatnonzero(suspect_mask)
    suspects = suspects[np.argsort(-margins[suspects])]

    return NoiseEstimate(
        estimated_noise_rate=noise_rate,
        suspect_indices=suspects.astype(np.int64),
        confident_joint=confident_joint,
        class_thresholds=thresholds,
    )
