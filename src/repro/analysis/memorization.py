"""Noise-memorization analysis.

The mechanism behind most of the paper's findings is *memorization*: an
unprotected model eventually fits its mislabelled training examples, which
warps its decision boundaries and shows up as AD at test time (the "garbage
in, garbage out" effect of §IV-B).  This module quantifies that directly:
given a fitted model, the faulty training set, and the injector's audit
report, it measures how much of the injected noise the model absorbed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import ArrayDataset
from ..faults.injector import FaultReport
from ..mitigation.base import FittedModel

__all__ = ["MemorizationReport", "measure_memorization"]


@dataclass(frozen=True)
class MemorizationReport:
    """How a model treats clean vs mislabelled training examples.

    Attributes
    ----------
    noisy_label_fit_rate:
        Fraction of *mislabelled* examples the model predicts as their wrong
        observed label — pure memorization of injected noise.
    true_label_recovery_rate:
        Fraction of mislabelled examples the model predicts as their original
        (true) label despite training on the wrong one — noise resisted.
    clean_fit_rate:
        Fraction of untouched examples predicted as their (correct) label.
    num_mislabelled, num_clean:
        Population sizes behind the rates.
    """

    noisy_label_fit_rate: float
    true_label_recovery_rate: float
    clean_fit_rate: float
    num_mislabelled: int
    num_clean: int

    @property
    def resisted_noise(self) -> bool:
        """True when the model recovers more truth than it memorizes noise."""
        return self.true_label_recovery_rate > self.noisy_label_fit_rate

    def __str__(self) -> str:
        return (
            f"memorized {self.noisy_label_fit_rate:.1%} of noise, recovered "
            f"{self.true_label_recovery_rate:.1%} of true labels, fit "
            f"{self.clean_fit_rate:.1%} of clean data"
        )


def measure_memorization(
    fitted: FittedModel,
    faulty_train: ArrayDataset,
    original_train: ArrayDataset,
    report: FaultReport,
) -> MemorizationReport:
    """Quantify noise memorization of a model trained on ``faulty_train``.

    Parameters
    ----------
    fitted:
        The trained (possibly protected) model.
    faulty_train:
        The training data after injection (observed labels).
    original_train:
        The training data before injection (true labels).  Must be the same
        size as ``faulty_train`` — i.e. the injection was mislabelling only.
    report:
        The injector's audit record identifying which indices were flipped.
    """
    if len(faulty_train) != len(original_train):
        raise ValueError(
            "memorization analysis requires size-preserving faults "
            f"(got {len(original_train)} -> {len(faulty_train)} examples)"
        )
    predictions = fitted.predict(faulty_train.images)

    flipped = report.mislabelled_indices
    clean_mask = np.ones(len(faulty_train), dtype=bool)
    clean_mask[flipped] = False

    if len(flipped):
        noisy_fit = float(
            (predictions[flipped] == faulty_train.labels[flipped]).mean()
        )
        recovery = float(
            (predictions[flipped] == original_train.labels[flipped]).mean()
        )
    else:
        noisy_fit = 0.0
        recovery = 0.0
    clean_fit = (
        float((predictions[clean_mask] == faulty_train.labels[clean_mask]).mean())
        if clean_mask.any()
        else 0.0
    )
    return MemorizationReport(
        noisy_label_fit_rate=noisy_fit,
        true_label_recovery_rate=recovery,
        clean_fit_rate=clean_fit,
        num_mislabelled=int(len(flipped)),
        num_clean=int(clean_mask.sum()),
    )
