"""Command-line interface: regenerate any paper table/figure from a shell.

Usage::

    repro-study table1
    repro-study motivating [--rate 0.1]
    repro-study table4 [--models resnet50,convnet] [--datasets gtsrb]
    repro-study fig3 [--models convnet,vgg16] [--rates 0.1,0.5]
    repro-study fig4 [--rates 0.1,0.5]
    repro-study overhead [--dataset gtsrb] [--model convnet]
    repro-study combined [--rate 0.3]
    repro-study panel --dataset gtsrb --model convnet --fault mislabelling
    repro-study study [--jobs 4] [--checkpoint out/study.jsonl] [--resume] [--out results.json]
    repro-study study --trace out/trace.jsonl --progress ...
    repro-study study --cluster 0.0.0.0:9700 [--ddp 2] ...
    repro-study worker HOST:9700
    repro-study trace out/trace.jsonl [--strict] [--export-chrome out.json]
    repro-study profile [--model vgg11 --batch 4 --steps 30]
    repro-study serve [--model convnet --dataset gtsrb] [--state model.npz] [--port 8777]
    repro-study hardware-faults [--hw-rates 1e-4,1e-3] [--jobs 2] [--out BENCH_hardware_faults.json]

Scale comes from ``--scale`` or the ``REPRO_SCALE`` environment variable
(default ``smoke``).  Each command prints the paper-shaped text rendering to
stdout; diagnostics go to stderr through the ``repro`` logger hierarchy
(``--verbose`` for debug detail, ``--quiet`` for warnings only).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .log import get_logger, setup_cli_logging
from .telemetry import (
    MetricsRegistry,
    ProgressReporter,
    TraceError,
    export_chrome_trace,
    read_trace,
    render_trace_summary,
    repair_trace,
    set_metrics,
    summarize_trace,
)
from .experiments import (
    CheckpointError,
    ClusterExecutor,
    ExperimentRunner,
    ParallelExecutor,
    RetryPolicy,
    StudyCheckpoint,
    ad_panel,
    combined_fault_analysis,
    fig3_panels,
    fig4_panels,
    golden_accuracy_table,
    motivating_example,
    overhead_table,
    render_combined_verdicts,
    render_motivating_example,
    render_overheads,
    render_panel,
    render_panels,
    render_table4,
    plan_study,
    run_resilient_study,
    run_worker,
    save_results,
)
from .experiments.hardware_study import (
    hardware_campaign_payload,
    hardware_fault_study,
    render_hardware_table,
)
from .experiments.config import ExperimentConfig, resolve_scale
from .faults import FaultType
from .mitigation import technique_names
from .nn.allreduce import set_ddp
from .nn.functional import KERNEL_MODES, set_kernel_mode
from .nn.serialization import StateFileError
from .serve import (
    REPLICA_BACKENDS,
    SHED_POLICIES,
    BatchSettings,
    FleetSettings,
    ModelKey,
    ModelRegistry,
    ServingEngine,
    ServingFleet,
    serve_forever,
)
from .survey import render_table1, select_representatives
from .telemetry import FileTelemetry

__all__ = ["main", "build_parser"]

logger = get_logger("cli")


def _csv(value: str) -> tuple[str, ...]:
    return tuple(item.strip() for item in value.split(",") if item.strip())


def _csv_floats(value: str) -> tuple[float, ...]:
    return tuple(float(item) for item in _csv(value))


def _parse_address(value: str) -> tuple[str, int]:
    """Split ``HOST:PORT`` (the port is the piece after the last colon)."""
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {value!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"invalid port in {value!r}") from None


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``repro-study``."""
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description="Regenerate tables/figures of 'The Fault in Our Data Stars' (DSN 2022).",
    )
    parser.add_argument(
        "--scale",
        choices=("smoke", "small", "paper"),
        default=None,
        help="experiment scale (default: REPRO_SCALE env var or 'smoke')",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "-v", "--verbose", action="store_true",
        help="debug-level diagnostics on stderr (repro logger hierarchy)",
    )
    verbosity.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress informational diagnostics (warnings and errors only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table I: survey-based technique selection")

    motivating = sub.add_parser("motivating", help="§II/§III-D: Pneumonia + ResNet50 example")
    motivating.add_argument("--rate", type=float, default=0.1)
    motivating.add_argument("--model", default="resnet50")

    table4 = sub.add_parser("table4", help="Table IV: golden accuracies")
    table4.add_argument("--models", type=_csv, default=("resnet50", "convnet"))
    table4.add_argument("--datasets", type=_csv, default=("cifar10", "gtsrb", "pneumonia"))

    fig3 = sub.add_parser("fig3", help="Fig. 3: GTSRB mislabelling + removal panels")
    fig3.add_argument("--models", type=_csv, default=("convnet", "vgg16"))
    fig3.add_argument("--rates", type=_csv_floats, default=(0.1, 0.3, 0.5))

    fig4 = sub.add_parser("fig4", help="Fig. 4: cross-dataset panels")
    fig4.add_argument("--rates", type=_csv_floats, default=(0.1, 0.3, 0.5))

    overhead = sub.add_parser("overhead", help="§IV-E: runtime overheads")
    overhead.add_argument("--dataset", default="gtsrb")
    overhead.add_argument("--model", default="convnet")

    combined = sub.add_parser("combined", help="§IV-C: combined fault types")
    combined.add_argument("--rate", type=float, default=0.3)
    combined.add_argument("--dataset", default="gtsrb")
    combined.add_argument("--model", default="convnet")

    panel = sub.add_parser("panel", help="one custom AD panel")
    panel.add_argument("--dataset", required=True)
    panel.add_argument("--model", required=True)
    panel.add_argument(
        "--fault", required=True, choices=[f.value for f in FaultType]
    )
    panel.add_argument("--rates", type=_csv_floats, default=(0.1, 0.3, 0.5))

    study = sub.add_parser(
        "study", help="full study grid, fault-tolerant (checkpoint/resume, retries)"
    )
    study.add_argument("--models", type=_csv, default=("convnet", "vgg16", "resnet18"))
    study.add_argument("--datasets", type=_csv, default=("cifar10", "gtsrb", "pneumonia"))
    study.add_argument(
        "--faults",
        type=_csv,
        default=tuple(f.value for f in FaultType),
        help="comma-separated fault types",
    )
    study.add_argument("--rates", type=_csv_floats, default=(0.1, 0.3, 0.5))
    study.add_argument("--techniques", type=_csv, default=None)
    study.add_argument(
        "--checkpoint",
        default=None,
        help="JSONL journal path; completed cells are recorded here as the sweep runs",
    )
    study.add_argument(
        "--resume",
        action="store_true",
        help="continue an existing checkpoint journal (replays completed cells)",
    )
    study.add_argument(
        "--max-attempts",
        type=int,
        default=2,
        help="per-cell attempts before a cell is recorded as failed (default 2)",
    )
    study.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (default 1 = serial; results "
        "are identical either way, modulo wall-clock timings)",
    )
    study.add_argument("--out", default=None, help="write a JSON results archive here")
    study.add_argument(
        "--trace",
        default=None,
        help="write a structured JSONL telemetry trace here (span timers, "
        "retry/cache/divergence events; summarize with 'repro-study trace')",
    )
    study.add_argument(
        "--progress",
        action="store_true",
        help="live progress reporter (done/total, ETA, retries, per-worker "
        "activity) instead of one line per completed cell",
    )
    study.add_argument(
        "--kernels",
        choices=KERNEL_MODES,
        default=None,
        help="nn kernel mode: fast (default), compiled (record/plan/replay "
        "static training steps, bitwise-identical), reference, or legacy",
    )
    study.add_argument(
        "--cluster",
        default=None,
        metavar="HOST:PORT",
        help="run the sweep through a multi-host cluster coordinator bound to "
        "this address; start workers with 'repro-study worker HOST:PORT' "
        "(results are identical to serial and --jobs runs)",
    )
    study.add_argument(
        "--lease-timeout",
        type=float,
        default=60.0,
        help="seconds without a heartbeat before a cluster worker's cell is "
        "re-dispatched to another worker (default 60)",
    )
    study.add_argument(
        "--ddp",
        type=int,
        default=None,
        metavar="N",
        help="data-parallel replicas per training run: shard each batch "
        "across N local processes with a deterministic gradient allreduce "
        "(bitwise-identical to single-process training)",
    )

    worker = sub.add_parser(
        "worker",
        help="join a cluster sweep as a worker (connects to a 'study "
        "--cluster' coordinator, executes leased cells until shutdown)",
    )
    worker.add_argument(
        "address", metavar="HOST:PORT", help="coordinator address to connect to"
    )
    worker.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        help="seconds between keep-alive heartbeats (default: a quarter of "
        "the coordinator's lease timeout)",
    )

    trace = sub.add_parser(
        "trace", help="summarize a study telemetry trace (JSONL) file"
    )
    trace.add_argument("file", help="trace file written by 'study --trace'")
    trace.add_argument(
        "--top", type=int, default=5, help="slowest cells to list (default 5)"
    )
    trace.add_argument(
        "--strict", action="store_true",
        help="reject truncated/corrupt traces instead of summarizing the "
        "readable prefix with a warning (the pre-PR-8 behavior)",
    )
    trace.add_argument(
        "--export-chrome", default=None, metavar="OUT.json",
        help="also export the trace in Chrome trace-event format "
        "(open in https://ui.perfetto.dev or chrome://tracing)",
    )

    profile = sub.add_parser(
        "profile",
        help="per-op timing of one compiled training step (record, plan, "
        "replay with the profiler armed)",
    )
    profile.add_argument("--model", default="vgg11", help="registry architecture (default vgg11)")
    profile.add_argument(
        "--width", type=int, default=2,
        help="base channel count (default 2, the bench geometry; 0 = registry default)",
    )
    profile.add_argument("--batch", type=int, default=4, help="batch size (default 4)")
    profile.add_argument(
        "--steps", type=int, default=30, help="profiled replay steps (default 30)"
    )
    profile.add_argument(
        "--warmup", type=int, default=3,
        help="unprofiled warm-up replays to fault in persistent buffers (default 3)",
    )
    profile.add_argument(
        "--image-shape", type=_csv, default=("3", "32", "32"),
        help="input C,H,W (default 3,32,32)",
    )
    profile.add_argument(
        "--classes", type=int, default=10, help="output classes (default 10)"
    )
    profile.add_argument(
        "--top", type=int, default=0, help="limit the op table to the slowest N rows"
    )
    profile.add_argument(
        "--out", default=None, help="also write the per-op table as JSON here"
    )

    serve = sub.add_parser(
        "serve", help="serve a trained model over micro-batched HTTP inference"
    )
    serve.add_argument("--model", default="convnet")
    serve.add_argument("--dataset", default="gtsrb")
    serve.add_argument("--technique", default="baseline")
    serve.add_argument(
        "--fault", default="none",
        help="fault label of the cell to serve, e.g. 'mislabelling@30%%' (default none)",
    )
    serve.add_argument(
        "--state", default=None,
        help="load weights from a save_model .npz archive instead of re-fitting "
        "the cell at the active scale",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8777)
    serve.add_argument(
        "--max-batch-size", type=int, default=8,
        help="largest micro-batch one dispatch coalesces (default 8)",
    )
    serve.add_argument(
        "--max-latency-ms", type=float, default=2.0,
        help="longest a request waits for its batch to fill (default 2.0)",
    )
    serve.add_argument(
        "--serve-workers", type=int, default=2,
        help="inference worker threads (default 2)",
    )
    serve.add_argument(
        "--trace", default=None,
        help="write serve/serve_batch telemetry spans to this JSONL file",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="seconds one /predict request may wait on the engine before the "
        "server answers 503 instead of hanging (default 30; 0 = unbounded)",
    )
    serve.add_argument(
        "--kernels",
        choices=KERNEL_MODES,
        default=None,
        help="nn kernel mode for re-fitting and inference (compiled only "
        "affects training; inference always runs eagerly)",
    )
    serve.add_argument(
        "--replicas", type=int, default=1,
        help="serving replicas; >= 2 runs a fleet with shared-memory weights, "
        "admission control, and health-checked respawn (default 1: one engine)",
    )
    serve.add_argument(
        "--replica-backend", choices=REPLICA_BACKENDS, default="auto",
        help="fleet replica backend: forked processes, in-process threads, or "
        "auto (processes where fork exists; default auto)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=256,
        help="per-model admission-queue bound before requests are shed with "
        "429 + Retry-After (fleet mode; default 256)",
    )
    serve.add_argument(
        "--shed-policy", choices=SHED_POLICIES, default="reject",
        help="full-queue policy: reject the arrival, or evict the lowest-"
        "priority queued request when the arrival outranks it (default reject)",
    )
    serve.add_argument(
        "--client-rate", type=float, default=None,
        help="per-client fairness: sustained requests/s per client id "
        "(default: unlimited)",
    )
    serve.add_argument(
        "--client-burst", type=float, default=None,
        help="per-client token-bucket burst (default: max(1, --client-rate))",
    )
    serve.add_argument(
        "--replica-deadline", type=float, default=30.0,
        help="seconds a replica may sit on its oldest dispatched request "
        "before the health monitor evicts and respawns it (default 30)",
    )

    hw = sub.add_parser(
        "hardware-faults",
        help="cross-axis campaign: hardware faults at inference time vs "
        "data-fault mitigations (SDC rates, accuracy degradation)",
    )
    hw.add_argument("--models", type=_csv, default=("convnet",))
    hw.add_argument("--datasets", type=_csv, default=("gtsrb",))
    hw.add_argument(
        "--techniques", type=_csv, default=("baseline", "label_smoothing"),
        help="mitigation techniques to cross against hardware faults",
    )
    hw.add_argument(
        "--data-faults", type=_csv, default=("none", "mislabelling@30%"),
        help="training-data fault labels (comma-separated; 'none' allowed)",
    )
    hw.add_argument(
        "--hw-types", type=_csv, default=("bit_flip",),
        help="hardware fault types: bit_flip, stuck_at_0, stuck_at_1, random_value",
    )
    hw.add_argument(
        "--targets", type=_csv, default=("activation",),
        help="fault targets: activation (kernel outputs) and/or weight",
    )
    hw.add_argument("--hw-rates", type=_csv_floats, default=(1e-4, 1e-3))
    hw.add_argument(
        "--trials", type=int, default=3,
        help="injected inference passes per unit (default 3)",
    )
    hw.add_argument(
        "--bit", type=int, default=None,
        help="restrict bit-positioned faults to one bit (0..31; default random)",
    )
    hw.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default 1 = serial; results identical either way)",
    )
    hw.add_argument(
        "--checkpoint", default=None,
        help="JSONL journal path; completed units are recorded as the campaign runs",
    )
    hw.add_argument(
        "--resume", action="store_true",
        help="continue an existing campaign checkpoint (replays completed units)",
    )
    hw.add_argument("--out", default=None, help="write BENCH_hardware_faults-style JSON here")
    hw.add_argument(
        "--trace", default=None,
        help="write hw_campaign/hw_unit/hw_trial telemetry spans to this JSONL file",
    )

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    setup_cli_logging(verbose=args.verbose, quiet=args.quiet)

    if args.command == "table1":  # needs no runner
        print(render_table1())
        print()
        for result in select_representatives().values():
            print(f"  {result}")
        return 0

    if args.command == "trace":  # needs no runner either
        return _run_trace_command(args)

    if args.command == "profile":  # synthetic data, no runner
        return _run_profile_command(args)

    if args.command == "serve":  # owns its own model loading / re-fitting
        return _run_serve_command(args)

    if args.command == "hardware-faults":  # owns its own campaign machinery
        return _run_hardware_faults_command(args)

    if args.command == "worker":  # cluster worker: no runner of its own
        return _run_worker_command(args)

    runner = ExperimentRunner(args.scale)
    logger.info("[scale=%s, repeats=%d]", runner.scale.name, runner.scale.repeats)

    if args.command == "motivating":
        result = motivating_example(runner, model=args.model, rate=args.rate)
        print(render_motivating_example(result))
    elif args.command == "table4":
        table = golden_accuracy_table(
            runner, models=args.models, datasets=args.datasets
        )
        print(render_table4(table, args.models, args.datasets, technique_names()))
    elif args.command == "fig3":
        panels = fig3_panels(runner, models=args.models, rates=args.rates)
        print(render_panels(panels, "Fig 3: GTSRB"))
    elif args.command == "fig4":
        panels = fig4_panels(runner, rates=args.rates)
        print(render_panels(panels, "Fig 4: datasets"))
    elif args.command == "overhead":
        print(render_overheads(overhead_table(runner, dataset=args.dataset, model=args.model)))
    elif args.command == "combined":
        verdicts = combined_fault_analysis(
            runner, dataset=args.dataset, model=args.model, rate=args.rate
        )
        print(render_combined_verdicts(verdicts))
    elif args.command == "panel":
        panel = ad_panel(
            runner, args.dataset, args.model, FaultType(args.fault), rates=args.rates
        )
        print(render_panel(panel))
    elif args.command == "study":
        return _run_study_command(runner, args)
    return 0


def _run_study_command(runner: ExperimentRunner, args: argparse.Namespace) -> int:
    """The fault-tolerant ``study`` subcommand (checkpoint/resume/retries)."""
    if args.kernels is not None:
        set_kernel_mode(args.kernels)
        logger.info("[kernels=%s]", args.kernels)
    checkpoint = None
    if args.checkpoint is not None:
        try:
            checkpoint = StudyCheckpoint(
                args.checkpoint,
                fingerprint=runner._scale_fingerprint(),
                resume=args.resume,
            )
        except CheckpointError as exc:
            logger.error("error: %s", exc)
            return 2
        if len(checkpoint):
            logger.info("[resuming: %d cells already journaled]", len(checkpoint))
    elif args.resume:
        logger.error("error: --resume requires --checkpoint")
        return 2

    if args.jobs < 1:
        logger.error("error: --jobs must be >= 1")
        return 2
    if args.ddp is not None:
        if args.ddp < 1:
            logger.error("error: --ddp must be >= 1")
            return 2
        set_ddp(args.ddp)
        logger.info("[ddp: %d replicas per training run]", args.ddp)
    executor = None
    if args.cluster is not None:
        if args.jobs > 1:
            logger.error("error: --cluster and --jobs are mutually exclusive")
            return 2
        try:
            host, port = _parse_address(args.cluster)
        except ValueError as exc:
            logger.error("error: %s", exc)
            return 2
        executor = ClusterExecutor(
            host=host, port=port, lease_timeout=args.lease_timeout
        )
        logger.info(
            "[cluster: coordinator at %s:%d — start workers with "
            "'repro-study worker %s:%d']",
            *executor.address, *executor.address,
        )
    elif args.jobs > 1:
        executor = ParallelExecutor(jobs=args.jobs)
        logger.info("[parallel: %d worker processes]", args.jobs)
    if args.trace:
        logger.info("[tracing to %s]", args.trace)
        # Live metrics ride along with tracing: per-unit snapshots funnel to
        # the collector and the final registry lands in the trace as a
        # metrics_snapshot event (rendered by 'repro-study trace').
        set_metrics(MetricsRegistry())

    # With --progress the live reporter owns the stderr status line;
    # otherwise keep the historical one-line-per-cell diagnostics.
    reporter = None
    progress = lambda result: logger.info("  %s", result)  # noqa: E731
    on_failure = lambda failure: logger.info("  FAILED %s", failure.describe())  # noqa: E731
    if args.progress:
        total = len(plan_study(
            models=args.models,
            datasets=args.datasets,
            fault_types=tuple(FaultType(f) for f in args.faults),
            rates=args.rates,
            techniques=list(args.techniques) if args.techniques else None,
            scale=runner.scale,
        ))
        reporter = ProgressReporter(total)
        progress = None
        on_failure = None

    report = run_resilient_study(
        runner,
        models=args.models,
        datasets=args.datasets,
        fault_types=tuple(FaultType(f) for f in args.faults),
        rates=args.rates,
        techniques=list(args.techniques) if args.techniques else None,
        checkpoint=checkpoint,
        retry=RetryPolicy(max_attempts=args.max_attempts),
        executor=executor,
        progress=progress,
        on_failure=on_failure,
        trace=args.trace,
        on_outcome=reporter,
    )
    if reporter is not None:
        reporter.finish()
    print(report.summary())
    if args.out is not None:
        save_results(report.results, args.out)
        logger.info("[archived %d results to %s]", len(report.results), args.out)
    return 0 if report.ok else 1


def _run_worker_command(args: argparse.Namespace) -> int:
    """The ``worker`` subcommand: one disposable cluster worker process."""
    try:
        host, port = _parse_address(args.address)
    except ValueError as exc:
        logger.error("error: %s", exc)
        return 2
    logger.info("[worker: connecting to coordinator at %s:%d]", host, port)
    try:
        executed = run_worker(
            host, port, heartbeat_interval=args.heartbeat_interval
        )
    except ConnectionError as exc:
        logger.error("error: cannot reach coordinator at %s:%d: %s", host, port, exc)
        return 2
    logger.info("[worker: executed %d cell(s), coordinator closed]", executed)
    return 0


def _run_hardware_faults_command(args: argparse.Namespace) -> int:
    """The ``hardware-faults`` subcommand: the cross-axis SDC campaign."""
    import json

    if args.jobs < 1:
        logger.error("error: --jobs must be >= 1")
        return 2
    if args.resume and args.checkpoint is None:
        logger.error("error: --resume requires --checkpoint")
        return 2
    scale = resolve_scale(args.scale)
    logger.info("[scale=%s, trials=%d]", scale.name, args.trials)
    if args.jobs > 1:
        logger.info("[parallel: %d worker processes]", args.jobs)
    if args.trace:
        logger.info("[tracing to %s]", args.trace)

    checkpoint = args.checkpoint
    if checkpoint is not None and not args.resume:
        # Mirror the study subcommand's contract: refuse to silently resume.
        import os

        if os.path.exists(checkpoint) and os.path.getsize(checkpoint) > 0:
            logger.error(
                "error: checkpoint %s already exists; pass --resume to continue it",
                checkpoint,
            )
            return 2

    try:
        results = hardware_fault_study(
            models=args.models,
            datasets=args.datasets,
            techniques=args.techniques,
            data_faults=args.data_faults,
            hw_types=args.hw_types,
            targets=args.targets,
            hw_rates=args.hw_rates,
            trials=args.trials,
            bit=args.bit,
            scale=scale,
            jobs=args.jobs,
            checkpoint=checkpoint,
            trace=args.trace,
            progress=lambda result: logger.info(
                "  %s: sdc %.3f", result.key, result.sdc_rate.mean
            ),
        )
    except (KeyError, ValueError, CheckpointError) as exc:
        logger.error("error: %s", exc)
        return 2
    print(render_hardware_table(results))
    if args.out is not None:
        payload = hardware_campaign_payload(results, scale_name=scale.name)
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        logger.info("[archived %d campaign units to %s]", len(results), args.out)
    return 0


def _run_serve_command(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: registry + micro-batch engine + HTTP endpoint."""
    if args.kernels is not None:
        set_kernel_mode(args.kernels)
        logger.info("[kernels=%s]", args.kernels)
    try:
        settings = BatchSettings(
            max_batch_size=args.max_batch_size,
            max_latency_ms=args.max_latency_ms,
            workers=args.serve_workers,
        )
    except ValueError as exc:
        logger.error("error: %s", exc)
        return 2
    key = ModelKey(
        model=args.model, dataset=args.dataset,
        technique=args.technique, fault_label=args.fault,
    )
    registry = ModelRegistry()
    if args.state is not None:
        try:
            registry.load_state_file(args.state, key, scale=args.scale)
        except (StateFileError, KeyError, ValueError) as exc:
            logger.error("error: %s", exc)
            return 2
        logger.info("[loaded %s from %s]", key.id, args.state)
    else:
        scale = resolve_scale(args.scale)
        config = ExperimentConfig(
            dataset=args.dataset, model=args.model, technique=args.technique,
            fault_label=args.fault, repeats=1, scale=scale.name,
        )
        logger.info("[no --state: re-fitting %s at scale %s]", key.id, scale.name)
        try:
            servable = registry.refit_cell(config)
        except (KeyError, ValueError) as exc:
            logger.error("error: %s", exc)
            return 2
        logger.info(
            "[trained in %ss]", servable.metadata.get("training_s", "?")
        )

    telemetry = None
    if args.trace:
        telemetry = FileTelemetry(args.trace)
        logger.info("[tracing to %s]", args.trace)
    # Serving always runs with live metrics enabled: the /metrics endpoint
    # scrapes the process-global registry, which the backend adopts.
    set_metrics(MetricsRegistry())
    if args.replicas >= 2:
        try:
            fleet_settings = FleetSettings(
                replicas=args.replicas,
                backend=args.replica_backend,
                max_queue=args.max_queue,
                shed_policy=args.shed_policy,
                client_rate=args.client_rate,
                client_burst=args.client_burst,
                replica_deadline_s=args.replica_deadline,
                batch=settings,
            )
        except ValueError as exc:
            logger.error("error: %s", exc)
            return 2
        backend = ServingFleet(registry, fleet_settings, telemetry=telemetry).start()
        logger.info(
            "[fleet: %d %s replicas, max-queue %d, shed-policy %s]",
            args.replicas, backend.settings.resolved_backend(),
            args.max_queue, args.shed_policy,
        )
    else:
        backend = ServingEngine(registry, settings, telemetry=telemetry).start()
    try:
        logger.info(
            "[serving %d model(s) at http://%s:%d — POST /predict, POST /shutdown]",
            len(registry), args.host, args.port,
        )
        serve_forever(
            backend, host=args.host, port=args.port, verbose=args.verbose,
            request_timeout_s=args.request_timeout if args.request_timeout > 0 else None,
        )
    finally:
        backend.close()
        if telemetry is not None:
            telemetry.close()
    return 0


def _run_trace_command(args: argparse.Namespace) -> int:
    """The ``trace`` subcommand: summarize (and optionally export) a trace.

    Default mode is tolerant: a truncated or corrupt trace (killed sweep)
    is repaired and its readable prefix summarized, with the repairs noted
    on stderr — exit 0.  ``--strict`` restores the old validating behavior
    (any damage beyond a torn final line is a hard error, exit 2).
    """
    try:
        summary = summarize_trace(args.file, top=args.top, strict=args.strict)
    except FileNotFoundError:
        logger.error("error: no such trace file: %s", args.file)
        return 2
    except TraceError as exc:
        logger.error("error: %s", exc)
        if not args.strict:  # corrupt beyond repair (shouldn't happen)
            logger.error("(the trace is damaged beyond tolerant repair)")
        return 2
    for warning in summary.warnings:
        logger.warning("trace repair: %s", warning)
    print(render_trace_summary(summary))
    if args.export_chrome is not None:
        events = read_trace(args.file, strict=args.strict)
        if not args.strict:
            events, _ = repair_trace(events)
        stats = export_chrome_trace(events, args.export_chrome)
        logger.info(
            "[exported %d chrome events (%d spans, %d track(s)) to %s]",
            stats["events"], stats["spans"], stats["tids"], args.export_chrome,
        )
    return 0


def _run_profile_command(args: argparse.Namespace) -> int:
    """The ``profile`` subcommand: per-op timing of one compiled step."""
    from .nn.profiler import profile_model_step, render_profile_report

    try:
        image_shape = tuple(int(d) for d in args.image_shape)
        if len(image_shape) != 3:
            raise ValueError(f"--image-shape needs C,H,W; got {args.image_shape}")
        report = profile_model_step(
            model=args.model,
            image_shape=image_shape,
            num_classes=args.classes,
            width=args.width or None,
            batch=args.batch,
            steps=args.steps,
            warmup=args.warmup,
        )
    except (KeyError, ValueError) as exc:
        logger.error("error: %s", exc)
        return 2
    print(render_profile_report(report, top=args.top))
    if args.out is not None:
        import json

        payload = {
            "model": report.model,
            "batch": report.batch,
            "steps": report.steps,
            "wall_s": report.wall_s,
            "op_total_s": report.op_total_s,
            "coverage": report.coverage,
            "ops": [
                {
                    "op": row.op,
                    "entries": row.entries,
                    "calls": row.calls,
                    "fwd_s": row.fwd_s,
                    "bwd_s": row.bwd_s,
                }
                for row in report.profile.rows()
            ],
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        logger.info("[profile written to %s]", args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
