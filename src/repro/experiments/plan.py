"""Study planning — pure, picklable descriptions of grid work.

The experiments layer is an explicit **plan → schedule → execute → collect**
pipeline.  This module is the *plan* stage: :func:`plan_study` expands a grid
(models × datasets × fault types × rates × techniques) into a list of
:class:`WorkUnit`\\ s, each a frozen dataclass fully describing one grid cell
— configuration, scale, and derived seeds — with **no reference to runner
state**.  A unit can be pickled into a worker process and executed there with
results bitwise-identical to the serial path, because everything that affects
a cell's outcome (fingerprint, per-repetition seeds, fault spec) derives from
the unit's own fields via pure functions.

Execution lives in :mod:`repro.experiments.executors`; this module depends
only on leaf modules (``faults.spec``, ``mitigation.registry``, ``config``)
so every other experiments layer can import it freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..faults.spec import FaultSpec, FaultType, single_fault
from ..mitigation.registry import technique_names, validate_techniques
from .config import ScaleSettings, derive_repetition_seed, resolve_scale, scale_fingerprint

__all__ = ["WorkUnit", "plan_study", "iter_grid", "techniques_for"]


def techniques_for(fault_type: FaultType | None, techniques: "list[str] | None") -> list[str]:
    """Default technique list for one fault type; label correction is skipped
    for fault types it cannot influence (paper §IV-C runs LC only for
    mislabelling)."""
    names = techniques or technique_names()
    if fault_type is not None and fault_type is not FaultType.MISLABELLING:
        names = [n for n in names if n != "label_correction"]
    return names


def iter_grid(
    models: tuple[str, ...],
    datasets: tuple[str, ...],
    fault_types: tuple[FaultType, ...],
    rates: tuple[float, ...],
    techniques: "list[str] | None" = None,
) -> Iterator[tuple[str, str, str, FaultType, float]]:
    """Yield grid cells as ``(dataset, model, technique, fault_type, rate)``
    tuples in the canonical sweep order.

    The single source of the sweep order: :func:`plan_study`,
    :func:`repro.experiments.study.study_grid`, and therefore every driver
    walk the identical sequence, so plans, journals, and result lists line up
    cell-for-cell.
    """
    for dataset in datasets:
        for model in models:
            for fault_type in fault_types:
                for technique in techniques_for(fault_type, techniques):
                    for rate in rates:
                        yield dataset, model, technique, fault_type, rate


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable grid cell: config + scale + seed/retry knobs.

    Frozen, hashable, and picklable — the unit of work handed to an
    :class:`~repro.experiments.executors.Executor`.  All derived quantities
    (journal key, fingerprint, per-repetition seeds, fault spec) are pure
    functions of the fields, so a worker process reconstructs the exact
    serial-path behaviour from the unit alone.
    """

    dataset: str
    model: str
    technique: str
    #: ``None`` means clean data (e.g. Table IV golden-accuracy cells).
    fault_type: FaultType | None
    rate: float
    scale: ScaleSettings
    #: ``None`` defers to ``scale.repeats`` (the canonical study setting).
    repeats: "int | None" = None
    #: Sorted key/value pairs — a dict is unhashable, so kwargs live as a tuple.
    technique_kwargs: tuple[tuple[str, object], ...] = ()
    clean_fraction: float = 0.1

    @property
    def fault(self) -> "FaultSpec | None":
        """The fault spec this unit injects (``None`` for clean cells)."""
        if self.fault_type is None:
            return None
        return single_fault(self.fault_type, self.rate)

    @property
    def fault_label(self) -> str:
        fault = self.fault
        return fault.label if fault is not None else "none"

    @property
    def effective_repeats(self) -> int:
        return self.repeats if self.repeats is not None else self.scale.repeats

    @property
    def key(self) -> str:
        """Stable journal key — identical to
        :func:`repro.experiments.resilience.cell_key` for default repeats, so
        plans resume journals written by the pre-plan serial driver."""
        return (
            f"{self.dataset}|{self.model}|{self.technique}|{self.fault_label}"
            f"|x{self.effective_repeats}|{self.scale.name}"
        )

    @property
    def fingerprint(self) -> str:
        """Everything that determines this cell's outcome, as one string."""
        return f"{scale_fingerprint(self.scale)}|{self.key}"

    def repetition_seed(self, repetition: int) -> int:
        """The seed repetition ``repetition`` of this cell trains under.

        Derived from the unit's own fields (never from in-process RNG state),
        so serial and worker-process execution seed identically.
        """
        return derive_repetition_seed(self.scale.seed, self.dataset, self.model, repetition)

    def describe(self) -> str:
        return (
            f"{self.dataset}/{self.model}/{self.technique}/{self.fault_label}"
            f" x{self.effective_repeats} ({self.scale.name})"
        )


def plan_study(
    models: tuple[str, ...] = ("convnet", "vgg16", "resnet18"),
    datasets: tuple[str, ...] = ("cifar10", "gtsrb", "pneumonia"),
    fault_types: tuple[FaultType, ...] = (
        FaultType.MISLABELLING,
        FaultType.REPETITION,
        FaultType.REMOVAL,
    ),
    rates: tuple[float, ...] = (0.1, 0.3, 0.5),
    techniques: "list[str] | None" = None,
    scale: "ScaleSettings | str | None" = None,
    technique_kwargs: "dict | None" = None,
    clean_fraction: float = 0.1,
) -> list[WorkUnit]:
    """Expand a study grid into an ordered list of :class:`WorkUnit`\\ s.

    Technique names are validated here — a typo fails at plan time, before
    any process is spawned or model trained.  ``scale`` accepts a
    :class:`~repro.experiments.config.ScaleSettings`, a scale name, or
    ``None`` (resolve from ``REPRO_SCALE``); duck-typed scale objects (e.g.
    test stubs exposing ``name``/``repeats``/``seed``) pass through as-is.
    """
    if scale is None or isinstance(scale, str):
        scale = resolve_scale(scale)
    if techniques is not None:
        validate_techniques(techniques)
    kwargs = tuple(sorted((technique_kwargs or {}).items()))
    return [
        WorkUnit(
            dataset=dataset,
            model=model,
            technique=technique,
            fault_type=fault_type,
            rate=rate,
            scale=scale,
            technique_kwargs=kwargs,
            clean_fraction=clean_fraction,
        )
        for dataset, model, technique, fault_type, rate in iter_grid(
            models, datasets, fault_types, rates, techniques
        )
    ]
