"""Result archiving: save/load experiment results as JSON.

The paper's artifact releases "all our experimental results"; this module
provides the equivalent for the reproduction — a stable JSON representation
of :class:`~repro.experiments.runner.ExperimentResult` collections so study
runs can be archived, diffed, and re-rendered without retraining.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..metrics.overhead import RuntimeCost
from ..metrics.reliability import ReliabilityResult
from .config import ExperimentConfig
from .runner import ExperimentResult

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "results_equivalent",
    "save_results",
    "append_results",
    "load_results",
]

_FORMAT_VERSION = 1


def result_to_dict(result: ExperimentResult, include_costs: bool = True) -> dict:
    """A JSON-serialisable representation of one experiment result.

    ``include_costs=False`` drops the wall-clock runtime records — the only
    non-deterministic part of a result — leaving exactly the payload that is
    guaranteed identical between serial and parallel execution of the same
    cell (see :func:`results_equivalent`).
    """
    payload = {
        "config": {
            "dataset": result.config.dataset,
            "model": result.config.model,
            "technique": result.config.technique,
            "fault_label": result.config.fault_label,
            "repeats": result.config.repeats,
            "scale": result.config.scale,
        },
        "repetitions": [
            {
                "golden_accuracy": r.golden_accuracy,
                "faulty_accuracy": r.faulty_accuracy,
                "accuracy_delta": r.accuracy_delta,
                "reverse_accuracy_delta": r.reverse_accuracy_delta,
                "num_test": r.num_test,
            }
            for r in result.repetitions
        ],
    }
    if include_costs:
        payload["costs"] = [
            {"training_s": c.training_s, "inference_s": c.inference_s} for c in result.costs
        ]
    return payload


def result_from_dict(payload: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict` output."""
    config = ExperimentConfig(**payload["config"])
    result = ExperimentResult(config=config)
    result.repetitions = [ReliabilityResult(**rep) for rep in payload["repetitions"]]
    result.costs = [RuntimeCost(**cost) for cost in payload.get("costs", [])]
    return result


def results_equivalent(
    a: list[ExperimentResult],
    b: list[ExperimentResult],
    include_costs: bool = False,
) -> bool:
    """True when two result collections carry identical payloads, in order.

    By default wall-clock costs are excluded: two runs of the same plan —
    serial or parallel, fresh or resumed — must satisfy this; only their
    timings may differ.
    """
    if len(a) != len(b):
        return False
    return all(
        result_to_dict(x, include_costs=include_costs)
        == result_to_dict(y, include_costs=include_costs)
        for x, y in zip(a, b)
    )


def save_results(results: list[ExperimentResult], path: str | os.PathLike) -> None:
    """Write a list of results to a JSON archive (atomically).

    The payload lands in a ``*.tmp`` sibling first and is renamed into
    place, so a crash mid-write can never truncate an existing archive.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": "repro-results",
        "version": _FORMAT_VERSION,
        "results": [result_to_dict(r) for r in results],
    }
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w") as fh:
            fh.write(json.dumps(payload, indent=2))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def append_results(
    results: list[ExperimentResult] | ExperimentResult, path: str | os.PathLike
) -> None:
    """Append results to an archive, creating it if needed.

    Incremental archiving for long sweeps: call after each completed cell
    (or batch of cells) and the archive on disk always holds every result
    so far — each append rewrites the file atomically, so a crash between
    cells loses nothing already archived.
    """
    if isinstance(results, ExperimentResult):
        results = [results]
    path = Path(path)
    existing = load_results(path) if path.exists() and path.stat().st_size > 0 else []
    save_results(existing + list(results), path)


def load_results(path: str | os.PathLike) -> list[ExperimentResult]:
    """Read a JSON archive written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-results":
        raise ValueError(f"{path} is not a repro results archive")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported archive version {payload.get('version')} (expected {_FORMAT_VERSION})"
        )
    return [result_from_dict(entry) for entry in payload["results"]]
