"""Fault-tolerant study execution: checkpoint/resume, retries, degradation.

The paper's full grid was a 33-GPU-day sweep; a reproduction of a paper about
*mitigating faults in training* should itself tolerate faults in its own
training pipeline.  This module wraps the grid drivers in three layers:

1. :class:`StudyCheckpoint` — an append-only JSONL journal of every completed
   cell (config + serialized result) with atomic write-then-``os.replace``
   semantics.  An interrupted sweep resumes exactly where it stopped:
   journaled cells replay from disk, never retrain.
2. :class:`RetryPolicy` / :func:`run_cell_with_retry` — per-cell retries with
   a reseeded RNG per attempt, an exponential-backoff hook, and a learning
   rate that is halved after a :class:`~repro.nn.DivergenceError`.
3. Graceful degradation — a cell that keeps failing becomes a
   :class:`CellFailure` (carrying its exception chain) and the sweep
   continues; failures are summarized at the end instead of aborting the grid.

Entry points: :func:`run_resilient_study` (returns a :class:`StudyReport`)
and ``full_study(..., checkpoint=..., retry=...)`` which delegates here.
"""

from __future__ import annotations

import json
import os
import time
import traceback
import typing
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..faults.spec import FaultType
from ..log import get_logger
from ..nn.trainer import DivergenceError
from ..telemetry import get_telemetry
from .persistence import result_from_dict, result_to_dict
from .runner import ExperimentResult, ExperimentRunner

logger = get_logger("experiments.resilience")

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "CellFailure",
    "CellOutcome",
    "CheckpointError",
    "CheckpointLockError",
    "RetryPolicy",
    "StudyCheckpoint",
    "StudyReport",
    "cell_key",
    "run_cell_with_retry",
    "run_resilient_study",
]


class CheckpointError(RuntimeError):
    """A checkpoint journal cannot be used (wrong format or wrong run)."""


class CheckpointLockError(CheckpointError):
    """Another process holds this checkpoint journal open for writing.

    Two concurrent writers would silently interleave JSONL records, so
    :class:`StudyCheckpoint` takes an advisory lock on open and raises this
    typed error instead.  (Parallel sweeps don't hit it: worker processes
    never touch the journal — the collector in the parent process is the
    single writer.)
    """


def cell_key(runner: ExperimentRunner, dataset: str, model: str, technique: str,
             fault_label: str) -> str:
    """Stable journal key for one grid cell.

    Includes the repetition count and scale name so a journal written at one
    scale is never silently replayed into a sweep at another.
    """
    scale = runner.scale
    return f"{dataset}|{model}|{technique}|{fault_label}|x{scale.repeats}|{scale.name}"


# ----------------------------------------------------------------------
# Failure records
# ----------------------------------------------------------------------

@dataclass
class CellFailure:
    """A grid cell that exhausted its retries.

    ``chain`` holds one entry per attempt — ``repr`` of the raised exception
    — and ``last_traceback`` the formatted traceback of the final attempt,
    so post-mortems need no re-run.
    """

    key: str
    dataset: str
    model: str
    technique: str
    fault_label: str
    attempts: int
    error_type: str
    message: str
    chain: list[str] = field(default_factory=list)
    last_traceback: str = ""

    @classmethod
    def from_errors(
        cls,
        key: str,
        dataset: str,
        model: str,
        technique: str,
        fault_label: str,
        errors: list[BaseException],
    ) -> "CellFailure":
        last = errors[-1]
        return cls(
            key=key,
            dataset=dataset,
            model=model,
            technique=technique,
            fault_label=fault_label,
            attempts=len(errors),
            error_type=type(last).__name__,
            message=str(last),
            chain=[repr(e) for e in errors],
            last_traceback="".join(
                traceback.format_exception(type(last), last, last.__traceback__)
            ),
        )

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "dataset": self.dataset,
            "model": self.model,
            "technique": self.technique,
            "fault_label": self.fault_label,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
            "chain": self.chain,
            "last_traceback": self.last_traceback,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CellFailure":
        return cls(**payload)

    def describe(self) -> str:
        return (
            f"{self.dataset}/{self.model}/{self.technique}/{self.fault_label}: "
            f"{self.error_type} after {self.attempts} attempt(s) — {self.message}"
        )


@dataclass
class CellOutcome:
    """What happened to one cell: a result, or a failure, never both.

    When tracing is on, ``events`` carries the cell's recorded telemetry
    batch (plain picklable dicts) back from wherever it executed — worker
    process or in-process — to the parent collector, which is the single
    writer of the merged trace.  ``pid`` is the executing process, feeding
    the live reporter's per-worker activity line.
    """

    result: ExperimentResult | None = None
    failure: CellFailure | None = None
    attempts: int = 1
    from_checkpoint: bool = False
    events: list = field(default_factory=list)
    #: Per-unit live-metrics snapshot (picklable), funneled home the same
    #: way as ``events`` and merged into the collector's registry.
    metrics: "dict | None" = None
    pid: "int | None" = None
    #: Hostname of the executing machine — with ``pid``, the ``(host, pid)``
    #: pair identifies a worker uniquely across a multi-host cluster sweep.
    host: "str | None" = None

    @property
    def ok(self) -> bool:
        return self.result is not None


# ----------------------------------------------------------------------
# The checkpoint journal
# ----------------------------------------------------------------------

class StudyCheckpoint:
    """Append-only JSONL journal of study progress, written atomically.

    Each line is one JSON record: a header (format/version/fingerprint),
    a completed cell (``{"kind": "cell", "key": ..., "result": ...}``), or
    a failed cell (``{"kind": "failure", ...}``).  Every append rewrites
    the journal to a ``*.tmp`` sibling and ``os.replace``\\ s it into place,
    so a kill at any instant leaves either the previous journal or the new
    one — never a torn file.  Unparseable lines (e.g. from a journal written
    by a non-atomic writer) are counted in :attr:`corrupt_lines` and skipped.

    A journal opened with a ``fingerprint`` refuses to resume a journal
    recorded under a different fingerprint (different scale/seed/geometry),
    because replaying those cells would silently mix incompatible runs.

    Opening also takes an advisory lock on a ``*.lock`` sibling (where the
    platform supports ``flock``): a second *process* opening the same journal
    gets a :class:`CheckpointLockError` instead of interleaving records.
    Re-opening within the owning process (reload, resume-in-place) is allowed;
    :meth:`close` — or process exit — releases the lock.  Instances also work
    as context managers.

    ``encode``/``decode`` form the result codec: by default the
    :class:`~repro.experiments.runner.ExperimentResult` (de)serializers, but
    any journal whose payloads round-trip through JSON dicts can reuse the
    machinery — the hardware-fault campaigns
    (:mod:`repro.faults.hardware.campaign`) journal their own result type
    through the same atomic-rewrite/lock/fingerprint path.
    """

    FORMAT = "repro-study-checkpoint"
    VERSION = 1

    #: Advisory-lock file descriptors held by THIS process, keyed by resolved
    #: journal path.  Lets the owning process re-open its own journal while
    #: still conflicting with every other process via ``flock``.
    _PROCESS_LOCKS: typing.ClassVar[dict] = {}

    def __init__(
        self,
        path: str | os.PathLike,
        fingerprint: str | None = None,
        resume: bool = True,
        encode: "Callable[[object], dict]" = result_to_dict,
        decode: "Callable[[dict], object]" = result_from_dict,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._encode = encode
        self._decode = decode
        self.completed: dict[str, ExperimentResult] = {}
        self.failures: dict[str, CellFailure] = {}
        self.corrupt_lines = 0
        self._lines: list[str] = []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._owns_lock = False
        self._acquire_lock()
        try:
            if self.path.exists() and self.path.stat().st_size > 0:
                if not resume:
                    raise CheckpointError(
                        f"checkpoint {self.path} already exists; pass resume=True "
                        "(CLI: --resume) to continue it, or remove the file"
                    )
                self._load()
            else:
                header = {
                    "kind": "header",
                    "format": self.FORMAT,
                    "version": self.VERSION,
                    "fingerprint": fingerprint,
                }
                self._lines.append(json.dumps(header))
                self._flush()
        except BaseException:
            self.close()
            raise

    # -- locking -------------------------------------------------------
    @property
    def _lock_key(self) -> str:
        return str(self.path.resolve())

    @property
    def lock_path(self) -> Path:
        """The advisory-lock sibling file (left in place after close)."""
        return self.path.with_name(self.path.name + ".lock")

    def _acquire_lock(self) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX: no enforcement
            return
        if self._lock_key in self._PROCESS_LOCKS:
            return  # this process already owns the journal; reuse its lock
        fd = os.open(self.lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            raise CheckpointLockError(
                f"checkpoint {self.path} is locked by another process; "
                "concurrent writers would interleave journal records "
                "(close the other sweep, or point this one at its own journal)"
            ) from None
        self._PROCESS_LOCKS[self._lock_key] = fd
        self._owns_lock = True

    def close(self) -> None:
        """Release the advisory lock (no-op if this instance never took it)."""
        if not self._owns_lock:
            return
        self._owns_lock = False
        fd = self._PROCESS_LOCKS.pop(self._lock_key, None)
        if fd is not None and fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def __enter__(self) -> "StudyCheckpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- loading -------------------------------------------------------
    def _load(self) -> None:
        saw_header = False
        for raw in self.path.read_text().splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
                kind = record["kind"]
            except (json.JSONDecodeError, TypeError, KeyError):
                self.corrupt_lines += 1
                continue
            if kind == "header":
                self._check_header(record)
                saw_header = True
            elif kind == "cell":
                try:
                    result = self._decode(record["result"])
                except (KeyError, TypeError):
                    self.corrupt_lines += 1
                    continue
                key = record.get("key") or ""
                self.completed[key] = result
                self.failures.pop(key, None)
            elif kind == "failure":
                try:
                    failure = CellFailure.from_dict(record["failure"])
                except (KeyError, TypeError):
                    self.corrupt_lines += 1
                    continue
                if failure.key not in self.completed:
                    self.failures[failure.key] = failure
            else:
                self.corrupt_lines += 1
                continue
            self._lines.append(raw)
        if not saw_header:
            raise CheckpointError(f"{self.path} is not a study checkpoint journal")

    def _check_header(self, record: dict) -> None:
        if record.get("format") != self.FORMAT:
            raise CheckpointError(f"{self.path} is not a study checkpoint journal")
        if record.get("version") != self.VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {record.get('version')} "
                f"(expected {self.VERSION})"
            )
        recorded = record.get("fingerprint")
        if self.fingerprint and recorded and recorded != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {self.path} was recorded under a different scale "
                f"fingerprint; refusing to mix runs "
                f"(journal: {recorded!r}, current: {self.fingerprint!r})"
            )

    # -- recording -----------------------------------------------------
    def record_success(self, key: str, result: ExperimentResult) -> None:
        entry = {"kind": "cell", "key": key, "result": self._encode(result)}
        self._lines.append(json.dumps(entry))
        self.completed[key] = result
        self.failures.pop(key, None)
        self._flush()

    def record_failure(self, failure: CellFailure) -> None:
        entry = {"kind": "failure", "failure": failure.to_dict()}
        self._lines.append(json.dumps(entry))
        if failure.key not in self.completed:
            self.failures[failure.key] = failure
        self._flush()

    def _flush(self) -> None:
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            with open(tmp, "w") as fh:
                fh.write("\n".join(self._lines) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        finally:
            tmp.unlink(missing_ok=True)

    def __contains__(self, key: str) -> bool:
        return key in self.completed

    def __len__(self) -> int:
        return len(self.completed)


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------

@dataclass
class RetryPolicy:
    """How a failing cell is retried before it degrades to a failure.

    Each attempt after the first runs with a reseeded RNG (``reseed``), and
    after a :class:`~repro.nn.DivergenceError` the learning rate is further
    multiplied by ``lr_decay_on_divergence`` — the standard rescue for an
    exploded loss.  ``backoff_s``/``backoff_factor`` feed the ``sleep`` hook
    (exponential backoff; default 0 means no waiting — useful for transient
    resource errors, pointless for deterministic ones).  ``max_backoff_s``
    caps the exponential growth and ``jitter`` spreads delays by a fraction
    in ``[-jitter, +jitter]`` — derived deterministically (CRC32 of
    ``jitter_seed`` and the attempt), so retry storms across cells
    decorrelate while every run stays reproducible.
    """

    max_attempts: int = 2
    reseed: bool = True
    lr_decay_on_divergence: float = 0.5
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    max_backoff_s: float | None = None
    jitter: float = 0.0
    jitter_seed: int = 0
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 < self.lr_decay_on_divergence <= 1.0:
            raise ValueError("lr_decay_on_divergence must be in (0, 1]")
        if self.max_backoff_s is not None and self.max_backoff_s < 0.0:
            raise ValueError("max_backoff_s must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_for(self, attempt: int) -> float:
        """Seconds to wait after ``attempt`` (1-based) fails.

        Exponential in the attempt, then jittered, then capped — the cap is
        applied last so ``max_backoff_s`` is a hard upper bound even at full
        positive jitter.
        """
        delay = self.backoff_s * self.backoff_factor ** (attempt - 1)
        if self.jitter > 0.0 and delay > 0.0:
            unit = zlib.crc32(f"{self.jitter_seed}|{attempt}".encode()) / 0xFFFFFFFF
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        if self.max_backoff_s is not None:
            delay = min(delay, self.max_backoff_s)
        return delay


def run_cell_with_retry(
    runner: ExperimentRunner,
    dataset: str,
    model: str,
    technique: str,
    fault,
    policy: RetryPolicy | None = None,
    key: str | None = None,
    repeats: int | None = None,
    technique_kwargs: dict | None = None,
    clean_fraction: float = 0.1,
) -> CellOutcome:
    """Run one cell under the retry policy; never raises (except interrupts).

    Returns a :class:`CellOutcome` holding either the result or, after
    ``policy.max_attempts`` failures, a :class:`CellFailure` with the full
    exception chain.  ``KeyboardInterrupt``/``SystemExit`` pass through so
    Ctrl-C still stops the sweep (the checkpoint makes that safe).
    ``repeats``/``technique_kwargs``/``clean_fraction`` pass through to
    :meth:`~repro.experiments.runner.ExperimentRunner.run` so a
    :class:`~repro.experiments.plan.WorkUnit` executes identically here and
    in a worker process.
    """
    policy = policy or RetryPolicy()
    tel = get_telemetry()
    fault_label = fault.label if fault is not None else "none"
    key = key or cell_key(runner, dataset, model, technique, fault_label)
    errors: list[BaseException] = []
    lr_scale = 1.0
    for attempt in range(1, policy.max_attempts + 1):
        seed_offset = attempt - 1 if policy.reseed else 0
        with tel.span("attempt", attempt=attempt, key=key) as span:
            try:
                result = runner.run(
                    dataset, model, technique, fault,
                    repeats=repeats, technique_kwargs=technique_kwargs,
                    clean_fraction=clean_fraction,
                    lr_scale=lr_scale, seed_offset=seed_offset,
                )
                return CellOutcome(result=result, attempts=attempt)
            except (KeyboardInterrupt, SystemExit):
                raise
            except DivergenceError as exc:
                errors.append(exc)
                lr_scale *= policy.lr_decay_on_divergence
                tel.event(
                    "divergence", key=key, attempt=attempt,
                    epoch=exc.epoch, batch=exc.batch, loss=repr(exc.loss),
                )
                span.set(outcome="error", error=type(exc).__name__)
                logger.debug(
                    "cell %s diverged on attempt %d (epoch %d); lr scaled to %g",
                    key, attempt, exc.epoch, lr_scale,
                )
            except Exception as exc:
                errors.append(exc)
                span.set(outcome="error", error=type(exc).__name__)
                logger.debug("cell %s failed attempt %d: %r", key, attempt, exc)
        if attempt < policy.max_attempts:
            tel.counter("retry", key=key, attempt=attempt)
            delay = policy.backoff_for(attempt)
            if delay > 0:
                policy.sleep(delay)
    tel.counter("cell_failure", key=key, attempts=len(errors))
    failure = CellFailure.from_errors(key, dataset, model, technique, fault_label, errors)
    logger.warning("cell %s exhausted %d attempt(s): %s", key, failure.attempts, failure.message)
    return CellOutcome(failure=failure, attempts=len(errors))


# ----------------------------------------------------------------------
# The resilient study driver
# ----------------------------------------------------------------------

@dataclass
class StudyReport:
    """Outcome of a resilient sweep: results, failures, and replay counts."""

    results: list[ExperimentResult] = field(default_factory=list)
    failures: list[CellFailure] = field(default_factory=list)
    replayed: int = 0
    executed: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"study: {len(self.results)} cells ok "
            f"({self.replayed} replayed from checkpoint, {self.executed} executed), "
            f"{len(self.failures)} failed"
        ]
        for failure in self.failures:
            lines.append(f"  FAILED {failure.describe()}")
        return "\n".join(lines)


def run_resilient_study(
    runner: ExperimentRunner,
    models: tuple[str, ...] = ("convnet", "vgg16", "resnet18"),
    datasets: tuple[str, ...] = ("cifar10", "gtsrb", "pneumonia"),
    fault_types: tuple[FaultType, ...] = (
        FaultType.MISLABELLING,
        FaultType.REPETITION,
        FaultType.REMOVAL,
    ),
    rates: tuple[float, ...] = (0.1, 0.3, 0.5),
    techniques: list[str] | None = None,
    checkpoint: "StudyCheckpoint | str | os.PathLike | None" = None,
    retry: RetryPolicy | None = None,
    progress: "Callable[[ExperimentResult], None] | None" = None,
    on_failure: "Callable[[CellFailure], None] | None" = None,
    executor: "object | None" = None,
    trace: "object | None" = None,
    on_outcome: "Callable | None" = None,
) -> StudyReport:
    """Run the full study grid fault-tolerantly.

    Journaled cells (when ``checkpoint`` is given and its journal already
    holds them) are replayed without retraining; fresh cells run under
    ``retry`` (default: two attempts, reseeded, learning rate halved on
    divergence); cells that exhaust their retries are recorded and skipped
    rather than aborting the sweep.

    ``executor`` schedules the fresh cells: ``None`` (the default) runs them
    in-process on ``runner`` in grid order; a
    :class:`~repro.experiments.executors.ParallelExecutor` fans them out
    across worker processes with identical per-cell results.  This function
    is now a thin wrapper over the plan/executor pipeline
    (:func:`~repro.experiments.plan.plan_study` +
    :func:`~repro.experiments.executors.run_study_plan`).

    ``trace`` (a path or :class:`~repro.telemetry.Telemetry`) records a
    merged JSONL study trace; ``on_outcome`` observes every
    ``(index, unit, outcome)`` in completion order — see
    :func:`~repro.experiments.executors.run_study_plan` for both.
    """
    from .executors import SerialExecutor, run_study_plan  # late: executors imports us
    from .plan import plan_study

    plan = plan_study(
        models=models,
        datasets=datasets,
        fault_types=fault_types,
        rates=rates,
        techniques=techniques,
        scale=runner.scale,
    )
    if executor is None:
        executor = SerialExecutor(runner=runner)

    ckpt = checkpoint
    if ckpt is not None and not isinstance(ckpt, StudyCheckpoint):
        ckpt = StudyCheckpoint(ckpt, fingerprint=runner._scale_fingerprint())

    cache_dir = (
        str(runner.cell_cache.directory) if getattr(runner, "cell_cache", None) else None
    )
    return run_study_plan(
        plan,
        executor=executor,
        checkpoint=ckpt,
        retry=retry or RetryPolicy(),
        progress=progress,
        on_failure=on_failure,
        cache_dir=cache_dir,
        trace=trace,
        on_outcome=on_outcome,
    )
