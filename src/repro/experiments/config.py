"""Experiment configuration and scaling knobs.

The paper's full grid (7 models × 3 datasets × 6 technique columns × 3 fault
types × 3 rates × 20 repetitions) cost 33 GPU-days; this reproduction runs
the same *grid shape* at laptop scale.  Three named scales are provided, and
environment variables override individual knobs:

- ``REPRO_SCALE``   — ``smoke`` (default), ``small``, or ``paper``
- ``REPRO_REPEATS`` — repetitions per configuration
- ``REPRO_EPOCHS``  — training epochs
- ``REPRO_SEED``    — base experiment seed
"""

from __future__ import annotations

import os
import typing
import zlib
from dataclasses import dataclass, field, replace

from ..mitigation.base import TrainingBudget

__all__ = [
    "ScaleSettings",
    "SCALES",
    "resolve_scale",
    "ExperimentConfig",
    "scale_fingerprint",
    "derive_repetition_seed",
]


@dataclass(frozen=True)
class ScaleSettings:
    """Dataset sizes, loop geometry, and repetition count for one scale."""

    name: str
    #: per-dataset (train_size, test_size)
    dataset_sizes: dict[str, tuple[int, int]] = field(hash=False)
    image_size: int = 16
    epochs: int = 18
    batch_size: int = 32
    learning_rate: float = 3e-3
    optimizer: str = "adam"
    repeats: int = 1
    seed: int = 0

    #: Per-dataset batch-size overrides.  The tiny Pneumonia dataset needs a
    #: smaller batch so deep models see enough optimisation steps per epoch.
    DATASET_BATCH_SIZES: typing.ClassVar[dict[str, int]] = {"pneumonia": 8}

    def budget(self, dataset: str | None = None) -> TrainingBudget:
        """The shared training budget at this scale.

        Pass the dataset name to apply its batch-size override.
        """
        batch_size = self.batch_size
        if dataset is not None:
            batch_size = min(batch_size, self.DATASET_BATCH_SIZES.get(dataset, batch_size))
        return TrainingBudget(
            epochs=self.epochs,
            batch_size=batch_size,
            learning_rate=self.learning_rate,
            optimizer=self.optimizer,
        )

    def sizes_for(self, dataset: str) -> tuple[int, int]:
        try:
            return self.dataset_sizes[dataset]
        except KeyError:
            raise KeyError(
                f"scale {self.name!r} has no sizes for dataset {dataset!r}"
            ) from None


SCALES: dict[str, ScaleSettings] = {
    # CI-friendly: single-digit seconds per configuration.
    "smoke": ScaleSettings(
        name="smoke",
        dataset_sizes={"cifar10": (240, 120), "gtsrb": (430, 172), "pneumonia": (60, 40)},
        epochs=18,
        batch_size=32,
        repeats=1,
    ),
    # Minutes per configuration; trends are visible above run-to-run noise.
    "small": ScaleSettings(
        name="small",
        dataset_sizes={"cifar10": (1000, 300), "gtsrb": (1075, 430), "pneumonia": (110, 44)},
        epochs=24,
        batch_size=32,
        repeats=3,
    ),
    # The paper's grid shape (still far below the 33-GPU-day original).
    "paper": ScaleSettings(
        name="paper",
        dataset_sizes={"cifar10": (4000, 1000), "gtsrb": (4300, 1290), "pneumonia": (430, 120)},
        epochs=30,
        batch_size=32,
        repeats=20,
    ),
}


def resolve_scale(name: str | None = None) -> ScaleSettings:
    """Pick a scale by name/env and apply the env-variable overrides."""
    scale_name = name or os.environ.get("REPRO_SCALE", "smoke")
    try:
        scale = SCALES[scale_name]
    except KeyError:
        raise KeyError(f"unknown scale {scale_name!r}; choices: {sorted(SCALES)}") from None

    overrides: dict[str, object] = {}
    if "REPRO_REPEATS" in os.environ:
        overrides["repeats"] = int(os.environ["REPRO_REPEATS"])
    if "REPRO_EPOCHS" in os.environ:
        overrides["epochs"] = int(os.environ["REPRO_EPOCHS"])
    if "REPRO_SEED" in os.environ:
        overrides["seed"] = int(os.environ["REPRO_SEED"])
    return replace(scale, **overrides) if overrides else scale


def scale_fingerprint(scale: ScaleSettings) -> str:
    """A string identifying everything about a scale that affects a cell's
    outcome.

    A pure function of the scale (no runner state), so the planner
    (:class:`~repro.experiments.plan.WorkUnit`), the in-process runner, and
    parallel worker processes all derive the identical fingerprint — it keys
    disk-cache entries and guards checkpoint journals against cross-scale
    replay.
    """
    sizes = sorted(scale.dataset_sizes.items())
    return (
        f"{scale.name}|{scale.seed}|{scale.epochs}|"
        f"{scale.batch_size}|{scale.learning_rate}|"
        f"{scale.optimizer}|{scale.image_size}|{sizes}"
    )


def derive_repetition_seed(scale_seed: int, dataset: str, model: str, repetition: int) -> int:
    """The stable per-repetition seed for one (dataset, model, repetition).

    Uses CRC32 rather than ``hash()`` so seeds are identical across processes
    (Python string hashing is salted per process); a cell trained in a worker
    process therefore yields bitwise-identical results to the serial path.
    """
    key = f"{dataset}|{model}|{repetition}|{scale_seed}".encode()
    return zlib.crc32(key) & 0x7FFFFFFF


@dataclass(frozen=True)
class ExperimentConfig:
    """One cell of the study grid (paper Fig. 2 workflow)."""

    dataset: str
    model: str
    technique: str
    fault_label: str  # e.g. "mislabelling@30%" or "none"
    repeats: int
    scale: str

    def describe(self) -> str:
        return (
            f"{self.dataset}/{self.model}/{self.technique}/{self.fault_label}"
            f" x{self.repeats} ({self.scale})"
        )
