"""The experiment runner — the paper's Fig. 2 measurement workflow.

For each configuration the runner:

1. builds (or reuses) the dataset pair at the active scale;
2. trains (or reuses) the *golden model* — the baseline architecture trained
   on fault-free data — and records its test predictions;
3. injects the fault spec into a copy of the training data (reserving the
   label-correction clean subset from injection when applicable);
4. fits the mitigation technique on the faulty data (the *faulty model*);
5. computes the accuracy delta (AD) of faulty vs golden predictions.

Repetitions re-run steps 2–5 with derived seeds; results aggregate into
means with 95 % confidence intervals, matching the paper's error bars.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..data.dataset import ArrayDataset, stratified_indices
from ..data.registry import load_dataset
from ..faults.injector import inject
from ..faults.spec import CombinedFaultSpec, FaultSpec
from ..metrics.overhead import RuntimeCost
from ..metrics.reliability import ReliabilityResult, compare_models
from ..metrics.stats import MeanWithCI, mean_confidence_interval
from ..mitigation.base import FittedModel, TrainingBudget
from ..mitigation.registry import build_technique
from ..telemetry import NULL, NULL_METRICS, get_telemetry, metrics_scope, telemetry_scope
from .cache import CellCache
from .config import (
    ExperimentConfig,
    ScaleSettings,
    derive_repetition_seed,
    resolve_scale,
    scale_fingerprint,
)

__all__ = ["ExperimentResult", "ExperimentRunner", "prepare_faulty_train"]


def prepare_faulty_train(
    train: ArrayDataset,
    fault: FaultSpec | CombinedFaultSpec | None,
    technique_name: str,
    clean_fraction: float,
    injection_rng: np.random.Generator,
) -> ArrayDataset:
    """Inject ``fault`` into a copy of ``train`` for one technique fit.

    Label correction reserves a stratified clean subset from injection (paper
    §III-B2) and records it in the dataset metadata.  This is a pure function
    of its arguments — the runner's Fig. 2 step 3 — shared with the serving
    registry's re-fit path so a model re-fitted from an archived cell sees
    byte-for-byte the same faulty training set as the original study run.
    """
    if fault is None:
        return train
    if technique_name == "label_correction":
        clean = stratified_indices(
            train.labels, clean_fraction, train.num_classes, injection_rng
        )
        faulty, report = inject(train, fault, rng=injection_rng, protected_indices=clean)
        faulty.metadata["clean_indices"] = report.protected_indices_after
        return faulty
    faulty, _ = inject(train, fault, rng=injection_rng)
    return faulty


@dataclass
class ExperimentResult:
    """Aggregated outcome of one grid cell across repetitions."""

    config: ExperimentConfig
    repetitions: list[ReliabilityResult] = field(default_factory=list)
    costs: list[RuntimeCost] = field(default_factory=list)

    @property
    def accuracy_delta(self) -> MeanWithCI:
        """Mean AD with 95 % CI — the paper's headline metric."""
        return mean_confidence_interval([r.accuracy_delta for r in self.repetitions])

    @property
    def golden_accuracy(self) -> MeanWithCI:
        return mean_confidence_interval([r.golden_accuracy for r in self.repetitions])

    @property
    def faulty_accuracy(self) -> MeanWithCI:
        return mean_confidence_interval([r.faulty_accuracy for r in self.repetitions])

    @property
    def mean_training_s(self) -> float:
        return float(np.mean([c.training_s for c in self.costs])) if self.costs else 0.0

    @property
    def mean_inference_s(self) -> float:
        return float(np.mean([c.inference_s for c in self.costs])) if self.costs else 0.0

    def ad_values(self) -> list[float]:
        """Raw per-repetition AD values (for statistical comparisons)."""
        return [r.accuracy_delta for r in self.repetitions]

    def __str__(self) -> str:
        return f"{self.config.describe()}: AD={self.accuracy_delta}"


class ExperimentRunner:
    """Runs grid cells with dataset and golden-model caching.

    The golden model for a ``(dataset, model, repetition)`` triple is shared
    by every technique and fault configuration, exactly as in the paper
    (one golden model per architecture per dataset).
    """

    def __init__(
        self,
        scale: ScaleSettings | str | None = None,
        cache_dir: "str | None" = None,
    ) -> None:
        self.scale = scale if isinstance(scale, ScaleSettings) else resolve_scale(
            scale if isinstance(scale, str) else None
        )
        cache_dir = cache_dir if cache_dir is not None else os.environ.get("REPRO_CACHE_DIR")
        self.cell_cache = CellCache(cache_dir) if cache_dir else None
        self._datasets: dict[str, tuple[ArrayDataset, ArrayDataset]] = {}
        self._golden_predictions: dict[tuple[str, str, int], np.ndarray] = {}
        self._golden_costs: dict[tuple[str, str, int], RuntimeCost] = {}
        # The paper trains ONE ensemble per dataset (its five members are
        # fixed), then reports its AD against each architecture's golden
        # model.  Cache ensemble predictions per (dataset, fault, repetition)
        # so per-model panels reuse them instead of retraining five networks.
        self._ensemble_predictions: dict[tuple[str, str, int], tuple[np.ndarray, RuntimeCost]] = {}

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------
    def dataset(self, name: str) -> tuple[ArrayDataset, ArrayDataset]:
        """(train, test) at the active scale, cached."""
        if name not in self._datasets:
            train_size, test_size = self.scale.sizes_for(name)
            self._datasets[name] = load_dataset(
                name,
                train_size=train_size,
                test_size=test_size,
                image_size=self.scale.image_size,
                seed=self.scale.seed,
            )
        return self._datasets[name]

    def budget(self, dataset: str | None = None) -> TrainingBudget:
        return self.scale.budget(dataset)

    def _scale_fingerprint(self) -> str:
        """A string identifying everything that affects a cell's outcome.

        Delegates to the pure :func:`~repro.experiments.config.scale_fingerprint`
        so planner, runner, and worker processes agree byte-for-byte.
        """
        return scale_fingerprint(self.scale)

    def _repetition_seed(self, dataset: str, model: str, repetition: int) -> int:
        """A stable derived seed for one (dataset, model, repetition).

        Delegates to :func:`~repro.experiments.config.derive_repetition_seed`
        — a pure function of (scale seed, cell identity), never of in-process
        state, so a cell trained in a worker process seeds identically to the
        serial path.
        """
        return derive_repetition_seed(self.scale.seed, dataset, model, repetition)

    def golden_predictions(self, dataset: str, model: str, repetition: int) -> np.ndarray:
        """Test predictions of the golden (fault-free baseline) model, cached.

        Telemetry: a ``golden_fit`` span times an actual training run, and
        disk lookups emit ``golden_cache_hit``/``golden_cache_miss`` counters.
        Both are *schedule-dependent* (the in-memory memo means whether a
        unit trains the golden model depends on what ran before it in the
        same process), so they are named apart from the per-cell events and
        the golden fit's internals are suppressed — cross-schedule trace
        comparisons stay meaningful (see
        :data:`repro.telemetry.trace.SCHEDULE_DEPENDENT_SPANS`).
        """
        key = (dataset, model, repetition)
        if key in self._golden_predictions:
            return self._golden_predictions[key]

        tel = get_telemetry()
        disk_key = f"golden|{self._scale_fingerprint()}|{dataset}|{model}|{repetition}"
        if self.cell_cache is not None:
            hit = self.cell_cache.get(disk_key)
            if hit is not None:
                tel.counter("golden_cache_hit", dataset=dataset, model=model)
                self._golden_predictions[key], self._golden_costs[key] = hit
                return self._golden_predictions[key]
            tel.counter("golden_cache_miss", dataset=dataset, model=model)

        train, test = self.dataset(dataset)
        seed = self._repetition_seed(dataset, model, repetition)
        technique = build_technique("baseline")
        with tel.span("golden_fit", dataset=dataset, model=model, repetition=repetition):
            # Suppress schedule-dependent internals: telemetry spans *and*
            # live metrics (whether a unit trains the golden model depends on
            # memo state, so counting its steps would break serial == --jobs N
            # metrics equivalence).
            with telemetry_scope(NULL), metrics_scope(NULL_METRICS):
                fitted = technique.fit(
                    train, model, self.budget(dataset), np.random.default_rng(seed)
                )
                self._golden_predictions[key] = fitted.predict(test.images)
        self._golden_costs[key] = fitted.cost
        if self.cell_cache is not None:
            self.cell_cache.put(disk_key, self._golden_predictions[key], fitted.cost)
        return self._golden_predictions[key]

    # ------------------------------------------------------------------
    # The Fig. 2 workflow
    # ------------------------------------------------------------------
    def run(
        self,
        dataset: str,
        model: str,
        technique: str,
        fault: FaultSpec | CombinedFaultSpec | None,
        repeats: int | None = None,
        technique_kwargs: dict | None = None,
        clean_fraction: float = 0.1,
        lr_scale: float = 1.0,
        seed_offset: int = 0,
    ) -> ExperimentResult:
        """Run one grid cell; returns the aggregated :class:`ExperimentResult`.

        ``fault=None`` measures the technique on clean data (paper Table IV:
        golden accuracies per technique).

        ``lr_scale`` and ``seed_offset`` are retry knobs used by
        :mod:`repro.experiments.resilience`: a retry after a
        :class:`~repro.nn.DivergenceError` re-runs the faulty fit with a
        scaled learning rate and/or a derived fresh seed.  Non-default
        values get their own disk-cache keys so retried cells never shadow
        the canonical ones.
        """
        repeats = repeats or self.scale.repeats
        fault_label = fault.label if fault is not None else "none"
        config = ExperimentConfig(
            dataset=dataset,
            model=model,
            technique=technique,
            fault_label=fault_label,
            repeats=repeats,
            scale=self.scale.name,
        )
        result = ExperimentResult(config=config)
        train, test = self.dataset(dataset)

        tel = get_telemetry()
        for repetition in range(repeats):
            with tel.span(
                "repetition", repetition=repetition,
                dataset=dataset, model=model, technique=technique,
            ):
                golden_pred = self.golden_predictions(dataset, model, repetition)
                faulty_pred, cost = self._faulty_predictions(
                    dataset, model, technique, fault, fault_label, repetition,
                    technique_kwargs, clean_fraction, lr_scale, seed_offset,
                )
                result.repetitions.append(
                    compare_models(golden_pred, faulty_pred, test.labels)
                )
                result.costs.append(cost)
        return result

    def _faulty_predictions(
        self,
        dataset: str,
        model: str,
        technique: str,
        fault: FaultSpec | CombinedFaultSpec | None,
        fault_label: str,
        repetition: int,
        technique_kwargs: dict | None,
        clean_fraction: float,
        lr_scale: float = 1.0,
        seed_offset: int = 0,
    ) -> tuple[np.ndarray, RuntimeCost]:
        """Fit one technique and predict the test set (ensemble fits cached).

        Telemetry: ``cache_hit``/``cache_miss`` counters per disk lookup, and
        ``fault_injection`` / ``faulty_fit`` / ``inference`` spans around the
        three phases of a fresh cell.  These are deterministic per cell (one
        disk lookup and one fit per repetition, regardless of scheduling), so
        serial and parallel traces tally identically — unlike the golden /
        ensemble memo paths, which are process-local and excluded.
        """
        tel = get_telemetry()
        train, test = self.dataset(dataset)
        is_retry = lr_scale != 1.0 or seed_offset != 0
        # Ensembles ignore the per-panel architecture, so seed and cache them
        # under a model-independent key (canonical runs only — retries with
        # altered seeds/learning rates must not poison the shared memo).
        is_cacheable_ensemble = (
            technique == "ensemble" and not technique_kwargs and not is_retry
        )
        seed_model = "ensemble" if technique == "ensemble" and not technique_kwargs else model
        cache_key = (dataset, fault_label, repetition)
        if is_cacheable_ensemble and cache_key in self._ensemble_predictions:
            return self._ensemble_predictions[cache_key]

        disk_key = (
            f"cell|{self._scale_fingerprint()}|{dataset}|{seed_model}|{technique}|"
            f"{sorted((technique_kwargs or {}).items())}|{fault_label}|"
            f"{clean_fraction}|{repetition}"
        )
        if is_retry:
            disk_key += f"|lr{lr_scale}|seed+{seed_offset}"
        if self.cell_cache is not None:
            hit = self.cell_cache.get(disk_key)
            if hit is not None:
                tel.counter("cache_hit", dataset=dataset, technique=technique)
                if is_cacheable_ensemble:
                    self._ensemble_predictions[cache_key] = hit
                return hit
            tel.counter("cache_miss", dataset=dataset, technique=technique)

        seed = self._repetition_seed(dataset, seed_model, repetition)
        if seed_offset:
            # Derive a fresh-but-deterministic seed per retry attempt.
            seed = (seed + seed_offset * 0x9E3779B1) & 0x7FFFFFFF
        injection_rng = np.random.default_rng(seed + 0x5EED)
        with tel.span("fault_injection", fault=fault_label, dataset=dataset):
            faulty_train = prepare_faulty_train(
                train, fault, technique, clean_fraction, injection_rng
            )
        budget = self.budget(dataset)
        if lr_scale != 1.0:
            budget = replace(budget, learning_rate=budget.learning_rate * lr_scale)
        tech = build_technique(technique, **(technique_kwargs or {}))
        with tel.span(
            "faulty_fit", dataset=dataset, model=model, technique=technique,
            fault=fault_label, repetition=repetition,
        ):
            fitted: FittedModel = tech.fit(
                faulty_train, model, budget, np.random.default_rng(seed + 1)
            )
        with tel.span("inference", dataset=dataset, model=model, technique=technique):
            start = time.perf_counter()
            faulty_pred = fitted.predict(test.images)
            inference_s = time.perf_counter() - start
        cost = RuntimeCost(training_s=fitted.cost.training_s, inference_s=inference_s)
        if is_cacheable_ensemble:
            self._ensemble_predictions[cache_key] = (faulty_pred, cost)
        if self.cell_cache is not None:
            self.cell_cache.put(disk_key, faulty_pred, cost)
        return faulty_pred, cost
